"""Bottleneck analysis of a finished simulation run.

After a measurement, every :class:`repro.sim.resources.Resource` in the
system (CPU cores, NICs, disks, validation threads, store threads, read
paths, latches) carries utilization statistics.  This module walks a
system object, collects them, and reports the saturated resources — the
"why is this system this fast" answer that the paper derives manually in
Section 5 (Fabric: serial validation; etcd: leader egress; Quorum: the
EVM thread; TiDB: hot-key latches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..sim.resources import Resource

__all__ = ["ResourceUsage", "BottleneckReport", "analyze_system"]


@dataclass(frozen=True)
class ResourceUsage:
    """Utilization of one named resource over the run."""

    name: str
    utilization: float
    total_requests: int
    capacity: int

    def __str__(self) -> str:
        bar = "#" * int(self.utilization * 20)
        return (f"{self.name:40s} {self.utilization:6.1%} |{bar:<20}| "
                f"({self.total_requests} reqs, cap {self.capacity})")


@dataclass
class BottleneckReport:
    """Sorted utilization of every resource in a system."""

    usages: list[ResourceUsage]
    elapsed: float

    @property
    def bottleneck(self) -> ResourceUsage:
        if not self.usages:
            raise ValueError("no resources observed")
        return self.usages[0]

    def saturated(self, threshold: float = 0.8) -> list[ResourceUsage]:
        return [u for u in self.usages if u.utilization >= threshold]

    def render(self, top: int = 10) -> str:
        lines = [f"bottleneck report over {self.elapsed:.2f} simulated s:"]
        lines.extend(str(u) for u in self.usages[:top])
        return "\n".join(lines)


def _named_resources(system) -> Iterable[tuple[str, Resource]]:
    """Discover the resources a system model owns."""
    seen: set[int] = set()

    def emit(name, resource):
        if isinstance(resource, Resource) and id(resource) not in seen:
            seen.add(id(resource))
            yield name, resource

    for node in getattr(system, "nodes", []):
        yield from emit(f"node:{node.name}:cpu", node.cpu)
        yield from emit(f"node:{node.name}:nic", node.nic_out)
        yield from emit(f"node:{node.name}:disk", node.disk)
    client = getattr(system, "client_node", None)
    if client is not None:
        yield from emit("client:nic", client.nic_out)
    # system-specific serial pipelines
    for attr, label in (
            ("evm_threads", "evm"),
            ("commit_threads", "commit"),
            ("log_threads", "paxos-log"),
            ("_read_paths", "read-path"),
    ):
        mapping = getattr(system, attr, None)
        if isinstance(mapping, dict):
            for key, resource in mapping.items():
                yield from emit(f"{label}:{key}", resource)
    for peer in getattr(system, "peers", []):
        yield from emit(f"validator:{peer.node.name}",
                        peer.validation_thread)
        yield from emit(f"query-pool:{peer.node.name}", peer.query_pool)
    cluster = getattr(system, "cluster", None)
    if cluster is not None:
        for key, resource in cluster.store_threads.items():
            yield from emit(f"store-thread:{key}", resource)
        for key, resource in cluster.read_paths.items():
            yield from emit(f"kv-read:{key}", resource)
    latches = getattr(system, "_latches", None)
    if isinstance(latches, dict):
        # report only the hottest few latches (there may be thousands)
        hottest = sorted(latches.items(),
                         key=lambda kv: kv[1].busy_time, reverse=True)[:5]
        for key, resource in hottest:
            yield from emit(f"latch:{key}", resource)
    pipelines = getattr(system, "shard_pipelines", None)
    if isinstance(pipelines, list):
        for i, resource in enumerate(pipelines):
            yield from emit(f"shard-pipeline:{i}", resource)


def analyze_system(system, elapsed: float | None = None) -> BottleneckReport:
    """Collect utilization from every resource ``system`` owns.

    ``elapsed`` defaults to the environment's current simulated time.
    """
    env = system.env
    span = elapsed if elapsed is not None else env.now
    usages = [
        ResourceUsage(
            name=name,
            utilization=min(1.0, resource.utilization(span)),
            total_requests=resource.total_requests,
            capacity=resource.capacity,
        )
        for name, resource in _named_resources(system)
        if resource.total_requests > 0
    ]
    usages.sort(key=lambda u: u.utilization, reverse=True)
    return BottleneckReport(usages=usages, elapsed=span)
