"""Serializability checking of committed histories.

Builds the multi-version serialization graph (MVSG) of a committed
execution from the transactions' read/write sets and version stamps, and
checks it for cycles — an independent, after-the-fact verification that
a system's concurrency control actually produced a serializable history
(the correctness side of the paper's Section 3.2 trade-off).

Nodes are committed transactions; edges:

* **wr** (reads-from): Ti wrote version v of x, Tj read v -> Ti -> Tj
* **ww** (version order): Ti wrote version v, Tj wrote v' > v -> Ti -> Tj
* **rw** (anti-dependency): Tj read version v of x, Ti wrote v' > v
  -> Tj -> Ti

Acyclicity of this graph is equivalent to (view) serializability for
histories with a total version order per key — which the versioned
stores in this library guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import networkx as nx

from ..txn.transaction import Transaction, TxnStatus

__all__ = ["HistoryChecker", "SerializabilityReport"]


@dataclass
class SerializabilityReport:
    """Outcome of a history check."""

    serializable: bool
    txn_count: int
    edge_count: int
    cycle: Optional[list[int]] = None
    equivalent_order: Optional[list[int]] = None
    notes: list[str] = field(default_factory=list)


class HistoryChecker:
    """Accumulates committed transactions and verifies serializability."""

    def __init__(self):
        self._txns: list[Transaction] = []

    def observe(self, txn: Transaction) -> None:
        """Record one finished transaction (aborted ones are ignored)."""
        if txn.status is TxnStatus.COMMITTED:
            self._txns.append(txn)

    def observe_all(self, txns: Iterable[Transaction]) -> None:
        for txn in txns:
            self.observe(txn)

    def _build_graph(self) -> tuple[nx.DiGraph, list[str]]:
        graph = nx.DiGraph()
        notes: list[str] = []
        # key -> sorted list of (version, txn_id) writes
        writes: dict[str, list[tuple[int, int]]] = {}
        writer_of: dict[tuple[str, int], int] = {}
        skipped = 0
        for txn in self._txns:
            if txn.write_set and txn.commit_version <= 0:
                skipped += 1
                continue
            graph.add_node(txn.txn_id)
            stamp = txn.commit_version
            for key in txn.write_set:
                writes.setdefault(key, []).append((stamp, txn.txn_id))
                writer_of[(key, stamp)] = txn.txn_id
        if skipped:
            notes.append(f"skipped {skipped} txns without commit stamps")
        for versions in writes.values():
            versions.sort()
        # ww edges along each key's version chain
        for key, versions in writes.items():
            for (v1, t1), (v2, t2) in zip(versions, versions[1:]):
                if t1 != t2:
                    graph.add_edge(t1, t2, kind="ww", key=key)
        # wr and rw edges from read sets
        for txn in self._txns:
            if txn.write_set and txn.commit_version <= 0:
                continue
            for key, seen_version in txn.read_set.items():
                writer = writer_of.get((key, seen_version))
                if writer is not None and writer != txn.txn_id:
                    graph.add_edge(writer, txn.txn_id, kind="wr", key=key)
                for version, later_writer in writes.get(key, ()):
                    if version > seen_version \
                            and later_writer != txn.txn_id:
                        graph.add_edge(txn.txn_id, later_writer,
                                       kind="rw", key=key)
        return graph, notes

    def check(self) -> SerializabilityReport:
        """Verify the observed history; includes a witness order or cycle."""
        graph, notes = self._build_graph()
        try:
            order = list(nx.topological_sort(graph))
            return SerializabilityReport(
                serializable=True,
                txn_count=len(self._txns),
                edge_count=graph.number_of_edges(),
                equivalent_order=order,
                notes=notes,
            )
        except nx.NetworkXUnfeasible:
            cycle = [u for u, _v in nx.find_cycle(graph)]
            return SerializabilityReport(
                serializable=False,
                txn_count=len(self._txns),
                edge_count=graph.number_of_edges(),
                cycle=cycle,
                notes=notes,
            )
