"""Serializability checking of committed histories.

Builds the multi-version serialization graph (MVSG) of a committed
execution from the transactions' read/write sets and version stamps, and
checks it for cycles — an independent, after-the-fact verification that
a system's concurrency control actually produced a serializable history
(the correctness side of the paper's Section 3.2 trade-off).

Nodes are committed transactions; edges:

* **wr** (reads-from): Ti wrote version v of x, Tj read v -> Ti -> Tj
* **ww** (version order): Ti wrote version v, Tj wrote v' > v -> Ti -> Tj
* **rw** (anti-dependency): Tj read version v of x, Ti wrote v' > v
  -> Tj -> Ti

Acyclicity of this graph is equivalent to (view) serializability for
histories with a total version order per key — which the versioned
stores in this library guarantee.

Beyond the yes/no check, :meth:`HistoryChecker.check` enumerates every
minimal (simple) cycle and classifies each into the classic weak-isolation
anomalies, so runs under ``extras["isolation"]`` report *which* hazards a
level admitted, not just that one exists:

* **lost update** — a 2-cycle carrying both an rw and a ww edge: two
  transactions read the same version of an item and both overwrote it.
* **write skew** — two consecutive rw (anti-dependency) edges somewhere
  in the cycle: the SI-only hazard (disjoint writes from a shared
  snapshot).
* **fractured read** — a cycle mixing rw with wr: a reader observed one
  transaction's write but missed another (non-repeatable / fractured
  visibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Optional

import networkx as nx

from ..txn.transaction import Transaction, TxnStatus

__all__ = ["ANOMALY_KINDS", "HistoryChecker", "SerializabilityReport"]

#: Anomaly classes reported per-cycle (plus a catch-all).
ANOMALY_KINDS = ("lost_update", "write_skew", "fractured_read", "other")

# Cycle enumeration bounds: anomalies manifest as short cycles (2-3 for
# the canonical hazards); the bound keeps simple_cycles polynomial on the
# dense graphs a contended run produces.
_CYCLE_LENGTH_BOUND = 6
_CYCLE_LIMIT = 10_000


def zero_anomalies() -> dict[str, int]:
    return {kind: 0 for kind in ANOMALY_KINDS}


@dataclass
class SerializabilityReport:
    """Outcome of a history check."""

    serializable: bool
    txn_count: int
    edge_count: int
    cycle: Optional[list[int]] = None
    equivalent_order: Optional[list[int]] = None
    notes: list[str] = field(default_factory=list)
    #: Every minimal cycle found (``cycle`` is the first, kept for
    #: callers that only want a witness).
    cycles: list[list[int]] = field(default_factory=list)
    #: Cycle count per anomaly class; all-zero when serializable.
    anomalies: dict[str, int] = field(default_factory=zero_anomalies)

    @property
    def anomaly_count(self) -> int:
        return sum(self.anomalies.values())


class HistoryChecker:
    """Accumulates committed transactions and verifies serializability."""

    def __init__(self):
        self._txns: list[Transaction] = []

    def observe(self, txn: Transaction) -> None:
        """Record one finished transaction (aborted ones are ignored)."""
        if txn.status is TxnStatus.COMMITTED:
            self._txns.append(txn)

    def observe_all(self, txns: Iterable[Transaction]) -> None:
        for txn in txns:
            self.observe(txn)

    @staticmethod
    def _write_stamp(txn: Transaction, key: str) -> int:
        """Version installed for ``key`` — per-key stamp when the system
        applied writes at distinct versions (tikv's per-raft-apply
        stamps), else the transaction-wide commit version."""
        per_key = txn.write_versions
        if per_key:
            return per_key.get(key, txn.commit_version)
        return txn.commit_version

    def _build_graph(self) -> tuple[nx.DiGraph, list[str]]:
        graph = nx.DiGraph()
        notes: list[str] = []
        # key -> sorted list of (version, txn_id) writes
        writes: dict[str, list[tuple[int, int]]] = {}
        writer_of: dict[tuple[str, int], int] = {}
        skipped = 0
        for txn in self._txns:
            if txn.write_set and txn.commit_version <= 0 \
                    and not txn.write_versions:
                skipped += 1
                continue
            graph.add_node(txn.txn_id)
            for key in txn.write_set:
                stamp = self._write_stamp(txn, key)
                writes.setdefault(key, []).append((stamp, txn.txn_id))
                writer_of[(key, stamp)] = txn.txn_id
        if skipped:
            notes.append(f"skipped {skipped} txns without commit stamps")
        for versions in writes.values():
            versions.sort()

        def add_edge(t1, t2, kind, key):
            data = graph.get_edge_data(t1, t2)
            if data is None:
                # ``kind`` keeps the first-discovered dependency for
                # existing callers; ``kinds`` accumulates every parallel
                # dependency between the pair for anomaly classification.
                graph.add_edge(t1, t2, kind=kind, kinds={kind}, key=key)
            else:
                data["kinds"].add(kind)

        # ww edges along each key's version chain
        for key, versions in writes.items():
            for (v1, t1), (v2, t2) in zip(versions, versions[1:]):
                if t1 != t2:
                    add_edge(t1, t2, "ww", key)
        # wr and rw edges from read sets
        for txn in self._txns:
            if txn.write_set and txn.commit_version <= 0 \
                    and not txn.write_versions:
                continue
            for key, seen_version in txn.read_set.items():
                writer = writer_of.get((key, seen_version))
                if writer is not None and writer != txn.txn_id:
                    add_edge(writer, txn.txn_id, "wr", key)
                for version, later_writer in writes.get(key, ()):
                    if version > seen_version \
                            and later_writer != txn.txn_id:
                        add_edge(txn.txn_id, later_writer, "rw", key)
        return graph, notes

    @staticmethod
    def _classify_cycle(graph: nx.DiGraph, cycle: list[int]) -> str:
        """Label one minimal MVSG cycle with its anomaly class."""
        kindsets = [graph.edges[u, v]["kinds"]
                    for u, v in zip(cycle, cycle[1:] + cycle[:1])]
        has_rw = ["rw" in ks for ks in kindsets]
        if len(cycle) == 2 and any(has_rw) \
                and any("ww" in ks for ks in kindsets):
            return "lost_update"
        n = len(kindsets)
        if any(has_rw[i] and has_rw[(i + 1) % n] for i in range(n)):
            return "write_skew"
        if any(has_rw) and any("wr" in ks for ks in kindsets):
            return "fractured_read"
        return "other"

    def check(self) -> SerializabilityReport:
        """Verify the observed history; includes a witness order or cycle.

        Non-serializable histories report *every* minimal cycle (up to a
        length bound — the canonical anomalies are 2-3 cycles — and an
        enumeration cap, noted when hit) with per-anomaly counts, so a
        run under weakened isolation quantifies exactly what it admitted.
        """
        graph, notes = self._build_graph()
        try:
            order = list(nx.topological_sort(graph))
            return SerializabilityReport(
                serializable=True,
                txn_count=len(self._txns),
                edge_count=graph.number_of_edges(),
                equivalent_order=order,
                notes=notes,
            )
        except nx.NetworkXUnfeasible:
            cycles = [list(c) for c in islice(
                nx.simple_cycles(graph, length_bound=_CYCLE_LENGTH_BOUND),
                _CYCLE_LIMIT)]
            if len(cycles) == _CYCLE_LIMIT:
                notes.append(
                    f"cycle enumeration capped at {_CYCLE_LIMIT}; "
                    "anomaly counts are a lower bound")
            if not cycles:
                # Every cycle is longer than the bound; fall back to one
                # witness so the report still carries a concrete cycle.
                cycles = [[u for u, _v in nx.find_cycle(graph)]]
                notes.append(
                    f"no cycle within length {_CYCLE_LENGTH_BOUND}; "
                    "reporting one unbounded witness")
            anomalies = zero_anomalies()
            for cyc in cycles:
                anomalies[self._classify_cycle(graph, cyc)] += 1
            return SerializabilityReport(
                serializable=False,
                txn_count=len(self._txns),
                edge_count=graph.number_of_edges(),
                cycle=cycles[0],
                cycles=cycles,
                anomalies=anomalies,
                notes=notes,
            )
