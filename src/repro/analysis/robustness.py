"""Template robustness certification against weakened isolation levels.

Decides *statically* — from a workload's transaction templates, before
any run — whether executing it under read committed or snapshot
isolation can ever produce a non-serializable history, à la Fekete et
al.'s dangerous structures and Vandevoort et al.'s "Robustness against
Read Committed for Transaction Templates" (PAPERS.md).  A workload
certified **robust** at a level gets that level's throughput for free:
every execution is still serializable, so the `isolation_ablation`
experiment can label each (workload, level) cell as safe gain vs
anomalies admitted.

Model
-----
A :class:`TxnTemplate` abstracts a transaction program as read/write
sets of ``(keyspace, param)`` atoms: ``keyspace`` partitions the
database (e.g. SmallBank's checking vs savings rows — keys from
different keyspaces never alias), ``param`` names the template
parameter owning the key (keys bound to the same param are the same
key; keys bound to different params *may* alias).  Edges of the static
conflict graph come from unifying one template's read atom with
another's write atom in the same keyspace.

An rw conflict edge T1 -> T2 is **vulnerable** iff the two instances
can both commit while running concurrently.  Under snapshot isolation
that excludes pairs whose conflict unification forces a write-write
overlap — first-committer/first-updater-wins aborts one of an
overlapping concurrent pair, closing the race.  Under read committed
there is no first-committer-wins, so *every* rw edge is vulnerable.
Following Fekete's characterization:

* robust against **snapshot isolation** iff no cycle in the conflict
  graph carries two *consecutive* SI-vulnerable rw edges (the dangerous
  structure behind write skew and the read-only-transaction anomaly);
* robust against **read committed** iff no cycle carries any rw edge
  at all — conservative (sound, may over-reject) but exact for the
  update-heavy templates simulated here, where every classic RC
  counterexample is a lost-update loop.

Both tests run on the template graph itself (nodes are templates, not
instances); reachability over conflict edges subsumes cycles through
any number of instances of the same template.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import networkx as nx

__all__ = ["TxnTemplate", "RobustnessReport", "certify",
           "smallbank_templates", "ycsb_templates"]

Atom = tuple[str, str]  # (keyspace, param)


@dataclass(frozen=True)
class TxnTemplate:
    """One transaction program, abstracted to read/write atom sets."""

    name: str
    reads: tuple[Atom, ...] = ()
    writes: tuple[Atom, ...] = ()

    def all_reads(self) -> tuple[Atom, ...]:
        """Read atoms including the read half of read-modify-writes."""
        return self.reads


@dataclass
class RobustnessReport:
    """Verdict of one certification run."""

    level: str                       # "read_committed" | "snapshot"
    robust: bool
    templates: tuple[str, ...]
    #: (T1, T2, keyspace) rw edges that can occur between concurrent
    #: instances — the raw material of every counterexample.
    vulnerable_edges: list[tuple[str, str, str]] = field(default_factory=list)
    #: Template names along a witness cycle when not robust.
    counterexample: Optional[list[str]] = None
    #: Anomaly class the witness cycle predicts a run would admit.
    predicted_anomaly: Optional[str] = None

    def __str__(self) -> str:
        verdict = "robust" if self.robust else "NOT robust"
        detail = "" if self.robust else \
            f" (witness {' -> '.join(self.counterexample or [])}: " \
            f"{self.predicted_anomaly})"
        return f"{{{', '.join(self.templates)}}} is {verdict} " \
               f"against {self.level}{detail}"


def _conflict_edges(templates: list[TxnTemplate]):
    """Enumerate template-level conflict edges.

    Yields ``(t1, t2, kind, keyspace, si_vulnerable)`` for every
    ordered template pair (self-pairs included: two instances of one
    template) whose atom sets can alias.  ``si_vulnerable`` is only
    meaningful for rw edges; under read committed every rw edge is
    vulnerable regardless.
    """
    for t1 in templates:
        for t2 in templates:
            # rw: a read of t1 unified with a write of t2
            for (ks_r, p_r) in t1.all_reads():
                for (ks_w, p_w) in t2.writes:
                    if ks_r != ks_w:
                        continue
                    # Unifying the conflict atoms binds t1's p_r to
                    # t2's p_w; under SI the edge is vulnerable unless
                    # that binding already forces a write-write
                    # overlap, which first-committer-wins turns into
                    # an abort.
                    ww_forced = any(
                        (ks1, p_r) in t1.writes and (ks1, p_w) in t2.writes
                        for ks1 in {ks for ks, _ in t1.writes})
                    yield (t1.name, t2.name, "rw", ks_r, not ww_forced)
            # ww / wr: any same-keyspace alias is a possible conflict
            for (ks1, _p1) in t1.writes:
                if any(ks1 == ks2 for ks2, _p2 in t2.writes):
                    yield (t1.name, t2.name, "ww", ks1, False)
                if any(ks1 == ks2 for ks2, _p2 in t2.all_reads()):
                    yield (t1.name, t2.name, "wr", ks1, False)


def _predict_anomaly(level: str, cycle: list[str]) -> str:
    if level == "snapshot":
        return "write_skew"
    # RC witnesses over one or two distinct templates are update loops.
    return "lost_update" if len(set(cycle)) <= 2 else "fractured_read"


def certify(templates: Iterable[TxnTemplate], level: str) -> RobustnessReport:
    """Certify a template set against one isolation level.

    ``level`` is ``"read_committed"`` or ``"snapshot"``
    (``"serializable"`` is trivially robust and accepted for symmetry).
    """
    templates = list(templates)
    names = tuple(t.name for t in templates)
    if level == "serializable":
        return RobustnessReport(level=level, robust=True, templates=names)
    if level not in ("read_committed", "snapshot"):
        raise ValueError(f"unknown isolation level {level!r}")

    graph = nx.DiGraph()
    graph.add_nodes_from(names)
    vulnerable: set[tuple[str, str, str]] = set()
    for t1, t2, kind, keyspace, si_vuln in _conflict_edges(templates):
        graph.add_edge(t1, t2)
        if kind == "rw" and (level == "read_committed" or si_vuln):
            vulnerable.add((t1, t2, keyspace))
    vuln_pairs = {(a, b) for a, b, _ks in vulnerable}

    def witness(path_from: str, path_to: str, prefix: list[str]) \
            -> Optional[list[str]]:
        """Close ``prefix`` into a cycle via a path back to its head."""
        if path_from == path_to:
            return prefix
        if nx.has_path(graph, path_from, path_to):
            middle = nx.shortest_path(graph, path_from, path_to)
            return prefix + middle[1:]
        return None

    counterexample = None
    if level == "read_committed":
        # Not robust iff some cycle contains a vulnerable rw edge.
        for (a, b) in sorted(vuln_pairs):
            counterexample = witness(b, a, [a, b])
            if counterexample:
                break
    else:  # snapshot
        # Fekete dangerous structure: consecutive vulnerable rw edges
        # a -> b -> c on some cycle (c may equal a).
        for (a, b) in sorted(vuln_pairs):
            for (b2, c) in sorted(vuln_pairs):
                if b2 != b:
                    continue
                counterexample = witness(c, a, [a, b, c])
                if counterexample:
                    break
            if counterexample:
                break

    robust = counterexample is None
    return RobustnessReport(
        level=level, robust=robust, templates=names,
        vulnerable_edges=sorted(vulnerable),
        counterexample=counterexample,
        predicted_anomaly=None if robust
        else _predict_anomaly(level, counterexample))


# ---------------------------------------------------------------------------
# Template builders for the workloads this library ships
# ---------------------------------------------------------------------------

def smallbank_templates(query_proportion: float = 0.0,
                        procedures: Optional[Iterable[str]] = None) \
        -> list[TxnTemplate]:
    """SmallBank procedure templates (see ``workloads/smallbank.py``).

    Keyspaces: ``c`` (checking rows) and ``s`` (savings rows); params
    name the customer arguments.  ``query_proportion > 0`` adds the
    read-only Balance template — the ingredient of the classic
    read-only-transaction anomaly under SI.
    """
    catalog = {
        "transact_savings": TxnTemplate(
            "transact_savings", reads=(("s", "u"),), writes=(("s", "u"),)),
        "deposit_checking": TxnTemplate(
            "deposit_checking", reads=(("c", "u"),), writes=(("c", "u"),)),
        "send_payment": TxnTemplate(
            "send_payment",
            reads=(("c", "a"), ("c", "b")), writes=(("c", "a"), ("c", "b"))),
        "write_check": TxnTemplate(
            "write_check",
            reads=(("c", "u"), ("s", "u")), writes=(("c", "u"),)),
        "amalgamate": TxnTemplate(
            "amalgamate",
            reads=(("s", "a"), ("c", "a"), ("c", "b")),
            writes=(("s", "a"), ("c", "a"), ("c", "b"))),
    }
    names = list(procedures) if procedures is not None else list(catalog)
    templates = [catalog[name] for name in names]
    if query_proportion > 0:
        templates.append(TxnTemplate(
            "balance", reads=(("c", "u"), ("s", "u"))))
    return templates


def ycsb_templates(mode: str = "update") -> list[TxnTemplate]:
    """YCSB templates: blind writes (``update``), read-modify-writes
    (``rmw``), or pure reads (``query``)."""
    if mode == "update":
        return [TxnTemplate("ycsb_update", writes=(("k", "k"),))]
    if mode == "rmw":
        return [TxnTemplate("ycsb_rmw",
                            reads=(("k", "k"),), writes=(("k", "k"),))]
    if mode == "query":
        return [TxnTemplate("ycsb_query", reads=(("k", "k"),))]
    raise ValueError(f"unknown ycsb mode {mode!r}")
