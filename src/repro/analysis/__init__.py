"""Post-run analysis: bottleneck reports, serializability/anomaly
checking, and template robustness certification."""

from .bottlenecks import BottleneckReport, ResourceUsage, analyze_system
from .robustness import RobustnessReport, TxnTemplate, certify, \
    smallbank_templates, ycsb_templates
from .serializability import ANOMALY_KINDS, HistoryChecker, \
    SerializabilityReport

__all__ = [
    "ANOMALY_KINDS",
    "BottleneckReport",
    "HistoryChecker",
    "ResourceUsage",
    "RobustnessReport",
    "SerializabilityReport",
    "TxnTemplate",
    "analyze_system",
    "certify",
    "smallbank_templates",
    "ycsb_templates",
]
