"""Post-run analysis: bottleneck reports and serializability checking."""

from .bottlenecks import BottleneckReport, ResourceUsage, analyze_system
from .serializability import HistoryChecker, SerializabilityReport

__all__ = [
    "BottleneckReport",
    "HistoryChecker",
    "ResourceUsage",
    "SerializabilityReport",
    "analyze_system",
]
