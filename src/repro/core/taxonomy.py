"""The paper's taxonomy (Section 3, Tables 1 and 2) as a typed vocabulary.

Four design dimensions — replication, concurrency, storage, sharding —
each with the security-oriented (blockchain) and performance-oriented
(database) choices.  ``SystemProfile`` describes one system's position in
the design space; ``TABLE2`` reproduces the paper's Table 2 for all
twenty systems it catalogues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "ReplicationModel",
    "ReplicationApproach",
    "FailureModelChoice",
    "ConcurrencyModel",
    "LedgerAbstraction",
    "IndexKind",
    "ShardingSupport",
    "Category",
    "SystemProfile",
    "TABLE2",
    "profile",
]


class ReplicationModel(Enum):
    """What is replicated (Section 3.1.1)."""

    TRANSACTION = "txn-based"        # ordered log of whole transactions
    STORAGE = "storage-based"        # ordered log of read/write operations


class ReplicationApproach(Enum):
    """How replicas are kept consistent (Section 3.1.2)."""

    CONSENSUS = "consensus"          # Paxos/Raft/PBFT state-machine repl.
    SHARED_LOG = "shared log"        # Kafka/Corfu-style external log
    PRIMARY_BACKUP = "primary-backup"


class FailureModelChoice(Enum):
    """Tolerated failures (Section 3.1.3)."""

    CFT = "crash"
    BFT = "byzantine"
    BOTH = "cft-or-bft"              # configurable (Quorum, FISCO BCOS)


class ConcurrencyModel(Enum):
    """Transaction execution concurrency (Section 3.2)."""

    SERIAL = "serial"
    CONCURRENT = "concurrent"
    # Fabric-style: concurrent (speculative) execution, serial commit
    CONCURRENT_EXECUTION_SERIAL_COMMIT = "concurrent-exec-serial-commit"


class LedgerAbstraction(Enum):
    """Storage model (Section 3.3.1)."""

    NONE = "no ledger"
    APPEND_ONLY = "append-only ledger"


class IndexKind(Enum):
    """State organization / index (Section 3.3.2)."""

    LSM = "lsm tree"
    BTREE = "b-tree"
    SKIP_LIST = "skip list"
    LSM_MPT = "lsm + merkle patricia trie"
    LSM_MBT = "lsm + merkle bucket tree"
    BTREE_MERKLE = "b-tree + merkle tree"


class ShardingSupport(Enum):
    """Sharding & cross-shard atomicity (Section 3.4)."""

    NONE = "none"
    TWO_PC = "2pc"
    TWO_PC_BFT = "2pc-bft"


class Category(Enum):
    PERMISSIONLESS_BLOCKCHAIN = "permissionless blockchain"
    PERMISSIONED_BLOCKCHAIN = "permissioned blockchain"
    NEWSQL = "newsql database"
    NOSQL = "nosql database"
    OUT_OF_BLOCKCHAIN_DB = "out-of-the-blockchain database"
    OUT_OF_DB_BLOCKCHAIN = "out-of-the-database blockchain"


@dataclass(frozen=True)
class SystemProfile:
    """One system's design choices across the four dimensions (Table 2)."""

    name: str
    category: Category
    replication_model: ReplicationModel
    replication_approach: ReplicationApproach
    failure_model: FailureModelChoice
    consensus: str
    concurrency: ConcurrencyModel
    ledger: LedgerAbstraction
    index: IndexKind
    sharding: ShardingSupport
    benchmarked: bool = False
    notes: str = ""

    @property
    def is_blockchain_like(self) -> bool:
        return self.ledger is LedgerAbstraction.APPEND_ONLY \
            or self.category in (Category.PERMISSIONLESS_BLOCKCHAIN,
                                 Category.PERMISSIONED_BLOCKCHAIN,
                                 Category.OUT_OF_DB_BLOCKCHAIN)

    def security_oriented_choices(self) -> list[str]:
        """The red-marked (security) choices of Table 2."""
        out = []
        if self.replication_model is ReplicationModel.TRANSACTION:
            out.append("transaction-based replication")
        if self.failure_model in (FailureModelChoice.BFT,
                                  FailureModelChoice.BOTH):
            out.append("byzantine fault tolerance")
        if self.concurrency in (
                ConcurrencyModel.SERIAL,
                ConcurrencyModel.CONCURRENT_EXECUTION_SERIAL_COMMIT):
            out.append("serial(ized) commit")
        if self.ledger is LedgerAbstraction.APPEND_ONLY:
            out.append("append-only ledger")
        if self.index in (IndexKind.LSM_MPT, IndexKind.LSM_MBT,
                          IndexKind.BTREE_MERKLE):
            out.append("authenticated index")
        if self.sharding is ShardingSupport.TWO_PC_BFT:
            out.append("bft 2pc")
        return out

    def performance_oriented_choices(self) -> list[str]:
        """The blue-marked (performance) choices of Table 2."""
        out = []
        if self.replication_model is ReplicationModel.STORAGE:
            out.append("storage-based replication")
        if self.failure_model is FailureModelChoice.CFT:
            out.append("crash fault tolerance")
        if self.replication_approach is ReplicationApproach.SHARED_LOG:
            out.append("shared log")
        if self.concurrency is ConcurrencyModel.CONCURRENT:
            out.append("concurrent execution")
        if self.index in (IndexKind.LSM, IndexKind.BTREE,
                          IndexKind.SKIP_LIST):
            out.append("plain index")
        if self.sharding is ShardingSupport.TWO_PC:
            out.append("trusted 2pc")
        return out


def _p(name, category, rmodel, rapproach, fmodel, consensus, conc, ledger,
       index, sharding, benchmarked=False, notes="") -> SystemProfile:
    return SystemProfile(name, category, rmodel, rapproach, fmodel,
                         consensus, conc, ledger, index, sharding,
                         benchmarked, notes)


_C = Category
_RM = ReplicationModel
_RA = ReplicationApproach
_FM = FailureModelChoice
_CM = ConcurrencyModel
_LA = LedgerAbstraction
_IK = IndexKind
_SS = ShardingSupport

TABLE2: dict[str, SystemProfile] = {p.name: p for p in [
    # --- permissionless blockchains ---
    _p("ethereum", _C.PERMISSIONLESS_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.CONSENSUS, _FM.BFT, "PoW", _CM.SERIAL, _LA.APPEND_ONLY,
       _IK.LSM_MPT, _SS.NONE),
    _p("eth2", _C.PERMISSIONLESS_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.CONSENSUS, _FM.BFT, "PoS+Casper", _CM.SERIAL, _LA.APPEND_ONLY,
       _IK.LSM_MPT, _SS.TWO_PC_BFT, notes="serial within each shard"),
    # --- permissioned blockchains ---
    _p("quorum", _C.PERMISSIONED_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.CONSENSUS, _FM.BOTH, "Raft/IBFT", _CM.SERIAL, _LA.APPEND_ONLY,
       _IK.LSM_MPT, _SS.NONE, benchmarked=True, notes="v2.2"),
    _p("fabric", _C.PERMISSIONED_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.SHARED_LOG, _FM.CFT, "Raft orderers",
       _CM.CONCURRENT_EXECUTION_SERIAL_COMMIT, _LA.APPEND_ONLY, _IK.LSM,
       _SS.NONE, benchmarked=True, notes="v2.2"),
    _p("fabric-v0.6", _C.PERMISSIONED_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.CONSENSUS, _FM.BFT, "PBFT", _CM.SERIAL, _LA.APPEND_ONLY,
       _IK.LSM_MBT, _SS.NONE),
    _p("eos", _C.PERMISSIONED_BLOCKCHAIN, _RM.TRANSACTION, _RA.CONSENSUS,
       _FM.BFT, "DPoS", _CM.SERIAL, _LA.APPEND_ONLY, _IK.BTREE, _SS.NONE),
    _p("fisco-bcos", _C.PERMISSIONED_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.CONSENSUS, _FM.BOTH, "Raft/PBFT", _CM.SERIAL, _LA.APPEND_ONLY,
       _IK.LSM_MPT, _SS.NONE),
    # --- NewSQL databases ---
    _p("tidb", _C.NEWSQL, _RM.STORAGE, _RA.CONSENSUS, _FM.CFT, "Raft",
       _CM.CONCURRENT, _LA.NONE, _IK.LSM, _SS.TWO_PC, benchmarked=True,
       notes="v4.0"),
    _p("cockroachdb", _C.NEWSQL, _RM.STORAGE, _RA.CONSENSUS, _FM.CFT,
       "Raft", _CM.CONCURRENT, _LA.NONE, _IK.LSM, _SS.TWO_PC),
    _p("spanner", _C.NEWSQL, _RM.STORAGE, _RA.CONSENSUS, _FM.CFT, "Paxos",
       _CM.CONCURRENT, _LA.NONE, _IK.LSM, _SS.TWO_PC),
    _p("h-store", _C.NEWSQL, _RM.STORAGE, _RA.PRIMARY_BACKUP, _FM.CFT,
       "primary-backup", _CM.CONCURRENT, _LA.NONE, _IK.BTREE, _SS.TWO_PC),
    # --- NoSQL databases ---
    _p("etcd", _C.NOSQL, _RM.STORAGE, _RA.CONSENSUS, _FM.CFT, "Raft",
       _CM.SERIAL, _LA.NONE, _IK.BTREE, _SS.NONE, benchmarked=True,
       notes="v3.3"),
    _p("cassandra", _C.NOSQL, _RM.STORAGE, _RA.PRIMARY_BACKUP, _FM.CFT,
       "client-coordinated", _CM.CONCURRENT, _LA.NONE, _IK.LSM, _SS.TWO_PC),
    _p("dynamodb", _C.NOSQL, _RM.STORAGE, _RA.PRIMARY_BACKUP, _FM.CFT,
       "primary-backup", _CM.CONCURRENT, _LA.NONE, _IK.BTREE, _SS.TWO_PC),
    # --- out-of-the-blockchain databases ---
    _p("blockchaindb", _C.OUT_OF_BLOCKCHAIN_DB, _RM.STORAGE, _RA.CONSENSUS,
       _FM.BFT, "PoW", _CM.SERIAL, _LA.APPEND_ONLY, _IK.LSM_MPT,
       _SS.TWO_PC, notes="serial within each shard"),
    _p("veritas", _C.OUT_OF_BLOCKCHAIN_DB, _RM.STORAGE, _RA.SHARED_LOG,
       _FM.CFT, "Kafka", _CM.CONCURRENT_EXECUTION_SERIAL_COMMIT,
       _LA.APPEND_ONLY, _IK.SKIP_LIST, _SS.NONE),
    _p("falcondb", _C.OUT_OF_BLOCKCHAIN_DB, _RM.STORAGE, _RA.CONSENSUS,
       _FM.BFT, "Tendermint", _CM.CONCURRENT_EXECUTION_SERIAL_COMMIT,
       _LA.APPEND_ONLY, _IK.BTREE_MERKLE, _SS.NONE,
       notes="IntegriDB authentication"),
    # --- out-of-the-database blockchains ---
    _p("brd", _C.OUT_OF_DB_BLOCKCHAIN, _RM.TRANSACTION, _RA.SHARED_LOG,
       _FM.BOTH, "Kafka+BFT-SMaRt", _CM.CONCURRENT, _LA.APPEND_ONLY,
       _IK.BTREE, _SS.NONE, notes="PostgreSQL stored procedures"),
    _p("chainifydb", _C.OUT_OF_DB_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.SHARED_LOG, _FM.CFT, "Kafka", _CM.CONCURRENT, _LA.APPEND_ONLY,
       _IK.BTREE, _SS.NONE, notes="heterogeneous relational backends"),
    _p("bigchaindb", _C.OUT_OF_DB_BLOCKCHAIN, _RM.TRANSACTION,
       _RA.CONSENSUS, _FM.BFT, "Tendermint", _CM.CONCURRENT,
       _LA.APPEND_ONLY, _IK.BTREE, _SS.NONE, notes="MongoDB backend"),
]}


def profile(name: str) -> SystemProfile:
    """Look up a Table 2 profile by (case-insensitive) name."""
    key = name.lower()
    if key not in TABLE2:
        raise KeyError(f"unknown system {name!r}; "
                       f"known: {sorted(TABLE2)}")
    return TABLE2[key]
