"""The paper's primary contribution: taxonomy, forecast, system builder."""

from .builder import DEDICATED_MODELS, build_system
from .forecast import (BAND_RANGES, Forecast, REPORTED_THROUGHPUT,
                       ThroughputBand, forecast, in_band,
                       ordering_consistent, rank)
from .taxonomy import (Category, ConcurrencyModel, FailureModelChoice,
                       IndexKind, LedgerAbstraction, ReplicationApproach,
                       ReplicationModel, ShardingSupport, SystemProfile,
                       TABLE2, profile)

__all__ = [
    "BAND_RANGES",
    "Category",
    "ConcurrencyModel",
    "DEDICATED_MODELS",
    "FailureModelChoice",
    "Forecast",
    "IndexKind",
    "LedgerAbstraction",
    "REPORTED_THROUGHPUT",
    "ReplicationApproach",
    "ReplicationModel",
    "ShardingSupport",
    "SystemProfile",
    "TABLE2",
    "ThroughputBand",
    "build_system",
    "forecast",
    "in_band",
    "ordering_consistent",
    "profile",
    "rank",
]
