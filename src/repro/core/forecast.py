"""The hybrid-system performance forecast framework (Section 5.6, Fig. 15).

The paper's back-of-the-envelope model predicts a hybrid's *throughput
band* from two design factors:

1. the **replication model** — transaction-based replication exposes less
   concurrency than storage-based (Section 5.2.1), and
2. the **failure model / replication approach** — CFT beats BFT
   (O(N) vs O(N^2) messages), a shared log beats consensus, and PoW is in
   a class of its own.

Systems score points for performance-oriented choices; the score maps to
a band (LOW / MEDIUM / HIGH) whose absolute ranges are anchored to the
paper's own measurements (Quorum ~245 tps, Fabric ~1.3k, TiDB ~5.2k,
etcd ~17k under the default YCSB update workload).

``REPORTED_THROUGHPUT`` records the numbers the source papers report
(approximate; see notes) — the validation in Section 5.6 is that the
forecast ordering matches the reported ordering, e.g. Veritas (29k) over
ChainifyDB (6.1k).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .taxonomy import (FailureModelChoice, ReplicationApproach,
                       ReplicationModel, SystemProfile, TABLE2)

__all__ = ["ThroughputBand", "Forecast", "forecast", "rank",
           "REPORTED_THROUGHPUT", "ordering_consistent"]


class ThroughputBand(Enum):
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


#: Throughput ranges (tps) anchoring each band, from our Fig. 4 world.
BAND_RANGES: dict[ThroughputBand, tuple[float, float]] = {
    ThroughputBand.LOW: (10.0, 1_200.0),
    ThroughputBand.MEDIUM: (1_200.0, 10_000.0),
    ThroughputBand.HIGH: (10_000.0, 300_000.0),
}

#: Throughputs reported by the respective papers (tps, approximate).
#: Veritas and ChainifyDB figures are quoted in Section 5.6 of the paper;
#: the others come from the cited systems' own evaluations and are
#: order-of-magnitude placements, which is all Fig. 15 encodes.
REPORTED_THROUGHPUT: dict[str, float] = {
    "veritas": 29_000.0,      # Section 5.6 (vs Chainify)
    "chainifydb": 6_100.0,    # Section 5.6
    "brd": 2_700.0,           # Nathan et al., PVLDB'19 (~2.7k, 3 nodes)
    "falcondb": 1_900.0,      # Peng et al., SIGMOD'20 (small cluster)
    "bigchaindb": 1_000.0,    # BigchainDB 2.0 whitepaper (Tendermint-bound)
    "blockchaindb": 150.0,    # El-Hindi et al., PVLDB'19 (PoW-bound)
}


@dataclass(frozen=True)
class Forecast:
    """A predicted placement in the Fig. 15 grid."""

    system: str
    band: ThroughputBand
    score: float
    tps_range: tuple[float, float]
    factors: tuple[str, ...]

    def explain(self) -> str:
        lo, hi = self.tps_range
        factors = ", ".join(self.factors) if self.factors else "none"
        return (f"{self.system}: {self.band.value.upper()} "
                f"(~{lo:,.0f}-{hi:,.0f} tps) — performance factors: "
                f"{factors}")


def _score(profile: SystemProfile) -> tuple[float, tuple[str, ...]]:
    score = 0.0
    factors = []
    if profile.replication_model is ReplicationModel.STORAGE:
        score += 1.0
        factors.append("storage-based replication (more concurrency)")
    if profile.failure_model is FailureModelChoice.CFT:
        score += 1.0
        factors.append("CFT consensus (O(N) network cost)")
    elif profile.failure_model is FailureModelChoice.BOTH:
        score += 0.5
        factors.append("configurable CFT/BFT (CFT deployments are faster)")
    if profile.replication_approach is ReplicationApproach.SHARED_LOG:
        score += 0.5
        factors.append("shared log (ordering decoupled from state)")
    if "pow" in profile.consensus.lower():
        score -= 1.0
        factors.append("PoW consensus (throughput ceiling)")
    return score, tuple(factors)


def forecast(profile: SystemProfile) -> Forecast:
    """Predict the Fig. 15 band for one system profile."""
    score, factors = _score(profile)
    if score >= 2.0:
        band = ThroughputBand.HIGH
    elif score >= 1.0:
        band = ThroughputBand.MEDIUM
    else:
        band = ThroughputBand.LOW
    return Forecast(system=profile.name, band=band, score=score,
                    tps_range=BAND_RANGES[band], factors=factors)


def rank(profiles: list[SystemProfile]) -> list[Forecast]:
    """Forecasts sorted from highest to lowest predicted throughput."""
    return sorted((forecast(p) for p in profiles),
                  key=lambda f: f.score, reverse=True)


def ordering_consistent(reported: dict[str, float] = REPORTED_THROUGHPUT,
                        tolerance: float = 0.0) -> bool:
    """Check the framework's key claim: predicted ordering matches the
    reported ordering (ties in score may appear in either order)."""
    names = [n for n in reported if n in TABLE2]
    ranked = rank([TABLE2[n] for n in names])
    for i in range(len(ranked) - 1):
        hi, lo = ranked[i], ranked[i + 1]
        if hi.score == lo.score:
            continue  # same band: no ordering claim
        if reported[hi.system] + tolerance < reported[lo.system]:
            return False
    return True


def in_band(name: str, measured_tps: float) -> bool:
    """Is a measured throughput inside the forecast band for ``name``?"""
    f = forecast(TABLE2[name])
    lo, hi = f.tps_range
    return lo <= measured_tps <= hi
