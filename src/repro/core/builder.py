"""Build a runnable simulated system from a taxonomy position.

The constructive entry point of the fusion framework: pass a Table 2 name
(or a custom :class:`SystemProfile`) and get back a simulated
:class:`repro.systems.base.TransactionalSystem`.  The four systems the
paper benchmarks map to their dedicated high-fidelity models; everything
else is composed by :class:`repro.systems.hybrids.HybridSystem` from the
same substrates.

>>> env = Environment()
>>> system = build_system(env, "etcd")          # dedicated model
>>> system = build_system(env, "veritas")       # composed hybrid
>>> system = build_system(env, custom_profile)  # your own design point

The profile's Table 2 **index** column maps to a runnable storage engine
(:mod:`repro.storage.engine`): hybrids build theirs from the profile
directly, dedicated models default to their historical structure and
honour ``SystemConfig.extras["index"]`` as an override — so the Fig. 12
authenticated-vs-plain storage ablation is one config line on any system:

>>> config = SystemConfig(extras={"index": "lsm+mpt"})
>>> system = build_system(env, "quorum", config)   # quorum over a real MPT
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING, Union

from .taxonomy import IndexKind, SystemProfile, profile as lookup_profile

if TYPE_CHECKING:  # pragma: no cover - annotations only; a module-level
    # import would close the storage.engine -> core.taxonomy ->
    # core.__init__ -> builder -> systems -> storage.engine cycle.
    from ..sim.kernel import Environment
    from ..systems.base import SystemConfig, TransactionalSystem

__all__ = ["build_system", "engine_for_index", "DEDICATED_MODELS",
           "ISOLATION_SYSTEMS"]


def engine_for_index(kind: "IndexKind | str"):
    """Map a Table 2 index choice to a fresh :class:`StorageEngine`.

    Accepts an :class:`IndexKind` or a config alias string such as
    ``"lsm+mpt"``.  (Imported lazily — ``storage.engine`` itself imports
    ``core.taxonomy``.)
    """
    from ..storage.engine import engine_for
    return engine_for(kind)


def _dedicated_models() -> dict:
    # Imported lazily: systems.hybrids itself imports core.taxonomy, so a
    # module-level import here would close an import cycle.
    from ..systems.ahl import AhlSystem
    from ..systems.etcd import EtcdSystem
    from ..systems.fabric import FabricSystem
    from ..systems.quorum import QuorumSystem
    from ..systems.spanner import SpannerSystem
    from ..systems.tidb import TiDBSystem
    from ..systems.tikv import TikvSystem
    return {
        "ahl": AhlSystem,
        "etcd": EtcdSystem,
        "fabric": FabricSystem,
        "quorum": QuorumSystem,
        "spanner": SpannerSystem,
        "tidb": TiDBSystem,
        "tikv": TikvSystem,
    }


class _LazyModels(dict):
    """Mapping of dedicated models, resolved on first access."""

    def _ensure(self):
        if not self:
            self.update(_dedicated_models())

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._ensure()
        return super().get(key, default)

    def __contains__(self, key):
        self._ensure()
        return super().__contains__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()


DEDICATED_MODELS = _LazyModels()

#: Systems with a wired weakened-isolation path (``extras["isolation"]``
#: in {"snapshot", "read_committed"}); "serializable" — every system's
#: default semantics — is accepted anywhere.
ISOLATION_SYSTEMS = frozenset({"etcd", "tikv", "tidb", "quorum"})


def _check_isolation_support(target, config) -> None:
    """Reject unsupported (system, isolation level) combos up front.

    A weakened level on a system without a wired weak path would
    silently run serializable — the same silent-misconfiguration class
    the unknown-extras-key check closes.
    """
    extras = getattr(config, "extras", None) or {}
    if "isolation" not in extras:
        return
    from ..concurrency.si import isolation_level
    level = isolation_level(extras)
    if level == "serializable":
        return
    name = target if isinstance(target, str) else target.name
    if name.lower() not in ISOLATION_SYSTEMS:
        raise ValueError(
            f"isolation={level!r} is not supported on {name!r}; weakened "
            f"isolation is wired into {sorted(ISOLATION_SYSTEMS)} "
            f"(every system supports 'serializable')")


def build_system(env: Environment,
                 target: Union[str, SystemProfile],
                 config: Optional[SystemConfig] = None,
                 **kwargs) -> TransactionalSystem:
    """Instantiate a simulated system for ``target``.

    ``target`` is a Table 2 name or a custom :class:`SystemProfile`.
    ``kwargs`` are forwarded to the concrete model (e.g.
    ``consensus="ibft"`` for Quorum, ``spec={...}`` for hybrids).

    ``SystemConfig.extras["scenario"]`` may carry a
    :class:`repro.chaos.scenario.Scenario`: the returned system then has
    a :class:`repro.chaos.injector.ChaosInjector` armed against it (as
    ``system.chaos``) before any data is loaded, so crash scenarios can
    disable WAL checkpointing ahead of the genesis commit.
    """
    from ..systems.hybrids import HybridSystem
    _check_isolation_support(target, config)
    if isinstance(target, SystemProfile):
        sys_obj = HybridSystem(env, target, config, kwargs.get("spec"))
    else:
        name = target.lower()
        model = DEDICATED_MODELS.get(name)
        if model is not None:
            sys_obj = model(env, config, **kwargs)
        else:
            sys_obj = HybridSystem(env, lookup_profile(name), config,
                                   kwargs.get("spec"))
    scenario = sys_obj.config.extras.get("scenario")
    if scenario is not None:
        from ..chaos.injector import ChaosInjector
        sys_obj.chaos = ChaosInjector.for_system(sys_obj, scenario)
        sys_obj.chaos.arm()
    return sys_obj
