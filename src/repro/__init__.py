"""repro: reproduction of "Blockchains vs. Distributed Databases: Dichotomy
and Fusion" (SIGMOD 2021).

A discrete-event-simulation twin study of blockchains and distributed
databases, plus real storage/authenticated data structures, a
taxonomy-driven system builder, and a benchmark harness regenerating every
table and figure of the paper's evaluation.

Quick tour::

    from repro.core import build_system, forecast, profile   # fusion
    from repro.sim import Environment                        # DES kernel
    from repro.workloads import YcsbWorkload, run_closed_loop
    from repro.analysis import analyze_system, HistoryChecker

See README.md for the architecture map and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
