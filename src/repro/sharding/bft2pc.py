"""BFT-replicated 2PC coordinator (AHL / Eth2 beacon-chain pattern).

Section 3.4.2, blockchain side: the coordinator cannot be trusted under
the Byzantine model, so it is implemented as a state machine replicated
inside a shard running a BFT protocol.  Consensus liveness keeps the
coordinator available (no blocking), at the cost of one BFT consensus
round per 2PC phase — the "considerable overhead" the paper measures in
Figure 14.
"""

from __future__ import annotations

from typing import Optional

from ..consensus.pbft import PbftGroup
from ..sim.kernel import Environment, Event
from .twopc import Decision, Participant, TwoPcStats, Vote

__all__ = ["BftCoordinator"]


class BftCoordinator:
    """2PC where every coordinator step is a BFT consensus decision."""

    def __init__(self, env: Environment, pbft: PbftGroup):
        self.env = env
        self.pbft = pbft
        self.stats = TwoPcStats()
        self.consensus_rounds = 0

    def _replicate(self, record: dict) -> Event:
        """Persist a coordinator-state transition via BFT consensus."""
        self.consensus_rounds += 1
        return self.pbft.propose(record, size=256)

    def run(self, txn_id: int, participants: list[Participant],
            payload: Optional[dict] = None) -> Event:
        done = self.env.event()
        self.env.process(self._protocol(txn_id, participants,
                                        payload or {}, done),
                         name=f"bft2pc:{txn_id}")
        return done

    def _protocol(self, txn_id: int, participants: list[Participant],
                  payload: dict, done: Event):
        self.stats.started += 1
        # Step 1: replicate the BEGIN record so any replica can take over.
        try:
            yield self._replicate({"txn": txn_id, "phase": "begin"})
        except Exception:
            self.stats.blocked += 1
            done.succeed(Decision.BLOCKED)
            return
        # Phase 1: prepare votes from the participant shards.
        vote_events = [p.prepare(txn_id, payload) for p in participants]
        votes = yield self.env.all_of(vote_events)
        decision = (Decision.COMMIT if all(v is Vote.YES for v in votes)
                    else Decision.ABORT)
        # Step 2: the decision itself is a consensus decision — after this
        # point it can never be lost, so participants never block.
        try:
            yield self._replicate({"txn": txn_id, "phase": "decide",
                                   "decision": decision.value})
        except Exception:
            self.stats.blocked += 1
            done.succeed(Decision.BLOCKED)
            return
        acks = [p.finalize(txn_id, decision) for p in participants]
        yield self.env.all_of(acks)
        if decision is Decision.COMMIT:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        done.succeed(decision)
