"""BFT-replicated 2PC coordinator (AHL / Eth2 beacon-chain pattern).

Section 3.4.2, blockchain side: the coordinator cannot be trusted under
the Byzantine model, so it is implemented as a state machine replicated
inside a shard running a BFT protocol.  Consensus liveness keeps the
coordinator available (no blocking), at the cost of one BFT consensus
round per 2PC phase — the "considerable overhead" the paper measures in
Figure 14.
"""

from __future__ import annotations

from typing import Optional

from ..consensus.pbft import PbftGroup
from ..sim.kernel import Countdown, Environment, Event, subscribe
from .twopc import (Decision, Participant, TwoPcStats, Vote,
                    decision_from_votes)

__all__ = ["BftCoordinator"]


class _Bft2PcChain:
    """One BFT-2PC instance as a participant-countdown callback chain.

    BEGIN consensus round -> prepare fan-out -> countdown of votes ->
    DECIDE consensus round (after which the decision can never be lost)
    -> finalize fan-out -> countdown of acks -> decision.  A failed
    consensus round resolves to ``Decision.BLOCKED``, exactly as the
    retained generator protocol did.
    """

    __slots__ = ("coordinator", "txn_id", "participants", "payload", "done",
                 "decision")

    def __init__(self, coordinator: "BftCoordinator", txn_id: int,
                 participants: list[Participant], payload: dict, done: Event):
        self.coordinator = coordinator
        self.txn_id = txn_id
        self.participants = participants
        self.payload = payload
        self.done = done
        self.decision: Optional[Decision] = None

    def start(self) -> None:
        self.coordinator.env._schedule_call(self._begin, None)

    def _block(self) -> None:
        self.coordinator.stats.blocked += 1
        if not self.done._triggered:   # double-completion guard
            self.done.succeed(Decision.BLOCKED)

    def _begin(self, _arg) -> None:
        coordinator = self.coordinator
        coordinator.stats.started += 1
        # Step 1: replicate the BEGIN record so any replica can take over.
        subscribe(
            coordinator._replicate({"txn": self.txn_id, "phase": "begin"}),
            self._began)

    def _began(self, ev: Event) -> None:
        if not ev._ok:
            self._block()
            return
        # Phase 1: prepare votes from the participant shards.
        coordinator = self.coordinator
        join = Countdown(coordinator.env, len(self.participants))
        for p in self.participants:
            join.watch(p.prepare(self.txn_id, self.payload))
        subscribe(join, self._voted)

    def _voted(self, ev: Event) -> None:
        if not ev._ok:
            raise ev._value          # a participant died: surface it
        self.decision = decision_from_votes(ev._value)
        # Step 2: the decision itself is a consensus decision — after this
        # point it can never be lost, so participants never block.
        subscribe(
            self.coordinator._replicate({"txn": self.txn_id,
                                         "phase": "decide",
                                         "decision": self.decision.value}),
            self._decided)

    def _decided(self, ev: Event) -> None:
        if not ev._ok:
            self._block()
            return
        coordinator = self.coordinator
        join = Countdown(coordinator.env, len(self.participants))
        for p in self.participants:
            join.watch(p.finalize(self.txn_id, self.decision))
        subscribe(join, self._acked)

    def _acked(self, ev: Event) -> None:
        if not ev._ok:
            raise ev._value
        coordinator = self.coordinator
        if self.decision is Decision.COMMIT:
            coordinator.stats.committed += 1
        else:
            coordinator.stats.aborted += 1
        if not self.done._triggered:
            self.done.succeed(self.decision)


class BftCoordinator:
    """2PC where every coordinator step is a BFT consensus decision."""

    def __init__(self, env: Environment, pbft: PbftGroup):
        self.env = env
        self.pbft = pbft
        self.stats = TwoPcStats()
        self.consensus_rounds = 0

    def _replicate(self, record: dict) -> Event:
        """Persist a coordinator-state transition via BFT consensus."""
        self.consensus_rounds += 1
        return self.pbft.propose(record, size=256)

    def run(self, txn_id: int, participants: list[Participant],
            payload: Optional[dict] = None) -> Event:
        done = self.env.event()
        _Bft2PcChain(self, txn_id, participants, payload or {}, done).start()
        return done

    def run_gen(self, txn_id: int, participants: list[Participant],
                payload: Optional[dict] = None) -> Event:
        """Generator-form protocol, kept for differential testing."""
        done = self.env.event()
        self.env.process(self._protocol(txn_id, participants,
                                        payload or {}, done),
                         name=f"bft2pc:{txn_id}")
        return done

    def _protocol(self, txn_id: int, participants: list[Participant],
                  payload: dict, done: Event):
        self.stats.started += 1
        # Step 1: replicate the BEGIN record so any replica can take over.
        try:
            yield self._replicate({"txn": txn_id, "phase": "begin"})
        except Exception:
            self.stats.blocked += 1
            done.succeed(Decision.BLOCKED)
            return
        # Phase 1: prepare votes from the participant shards.
        vote_events = [p.prepare(txn_id, payload) for p in participants]
        votes = yield self.env.all_of(vote_events)
        decision = decision_from_votes(votes)
        # Step 2: the decision itself is a consensus decision — after this
        # point it can never be lost, so participants never block.
        try:
            yield self._replicate({"txn": txn_id, "phase": "decide",
                                   "decision": decision.value})
        except Exception:
            self.stats.blocked += 1
            done.succeed(Decision.BLOCKED)
            return
        acks = [p.finalize(txn_id, decision) for p in participants]
        yield self.env.all_of(acks)
        if decision is Decision.COMMIT:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        done.succeed(decision)
