"""Sharding: partitioning, 2PC, BFT 2PC, shard formation."""

from .bft2pc import BftCoordinator
from .formation import (FormationMethod, ReconfigurationSchedule,
                        ShardFormation, min_shard_size,
                        shard_failure_probability)
from .partitioner import (HashPartitioner, HotSplitPartitioner,
                          RangePartitioner, WorkloadAwarePartitioner)
from .twopc import Decision, Participant, TwoPhaseCoordinator, Vote

__all__ = [
    "BftCoordinator",
    "Decision",
    "FormationMethod",
    "HashPartitioner",
    "HotSplitPartitioner",
    "Participant",
    "RangePartitioner",
    "ReconfigurationSchedule",
    "ShardFormation",
    "TwoPhaseCoordinator",
    "Vote",
    "WorkloadAwarePartitioner",
    "min_shard_size",
    "shard_failure_probability",
]
