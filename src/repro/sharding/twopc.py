"""Two-phase commit with a trusted coordinator (the database answer).

Section 3.4.2: cross-shard atomicity in databases uses 2PC driven by a
dedicated, *trusted* coordinator — which may fail and block the
transaction, the weakness BFT 2PC addresses on the blockchain side.

Participants implement ``prepare``/``commit``/``abort`` as simulated
calls returning kernel events; the coordinator sequences the two phases
and reports the decision.  A coordinator crash between phases leaves
participants prepared-and-blocked, which the tests assert explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Protocol

from ..sim.kernel import Environment, Event

__all__ = ["Vote", "Decision", "Participant", "TwoPhaseCoordinator"]


class Vote(Enum):
    YES = "yes"
    NO = "no"


class Decision(Enum):
    COMMIT = "commit"
    ABORT = "abort"
    BLOCKED = "blocked"   # coordinator died mid-protocol


class Participant(Protocol):
    """A shard taking part in a distributed transaction."""

    def prepare(self, txn_id: int, payload: dict) -> Event:
        """Vote event: fires with Vote.YES/NO once the shard is prepared."""

    def finalize(self, txn_id: int, decision: "Decision") -> Event:
        """Apply the coordinator's decision; fires when durable."""


@dataclass
class TwoPcStats:
    started: int = 0
    committed: int = 0
    aborted: int = 0
    blocked: int = 0
    prepared_blocked_participants: list = field(default_factory=list)


class TwoPhaseCoordinator:
    """A trusted (crash-prone) 2PC coordinator."""

    def __init__(self, env: Environment, extra_phase_delay: float = 0.0):
        self.env = env
        self.extra_phase_delay = extra_phase_delay
        self.crashed = False
        self.stats = TwoPcStats()

    def crash(self) -> None:
        """Crash the coordinator; in-flight transactions block."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def run(self, txn_id: int, participants: list[Participant],
            payload: Optional[dict] = None) -> Event:
        """Drive 2PC; the returned event fires with a :class:`Decision`."""
        done = self.env.event()
        self.env.process(self._protocol(txn_id, participants,
                                        payload or {}, done),
                         name=f"2pc:{txn_id}")
        return done

    def _protocol(self, txn_id: int, participants: list[Participant],
                  payload: dict, done: Event):
        self.stats.started += 1
        if self.crashed:
            self.stats.blocked += 1
            done.succeed(Decision.BLOCKED)
            return
        # Phase 1: prepare
        vote_events = [p.prepare(txn_id, payload) for p in participants]
        votes = yield self.env.all_of(vote_events)
        if self.extra_phase_delay:
            yield self.env.timeout(self.extra_phase_delay)
        if self.crashed:
            # Participants voted and hold locks; nobody can decide.
            self.stats.blocked += 1
            self.stats.prepared_blocked_participants.extend(participants)
            done.succeed(Decision.BLOCKED)
            return
        decision = (Decision.COMMIT if all(v is Vote.YES for v in votes)
                    else Decision.ABORT)
        # Phase 2: commit/abort
        acks = [p.finalize(txn_id, decision) for p in participants]
        yield self.env.all_of(acks)
        if decision is Decision.COMMIT:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        done.succeed(decision)
