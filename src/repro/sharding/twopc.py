"""Two-phase commit with a trusted coordinator (the database answer).

Section 3.4.2: cross-shard atomicity in databases uses 2PC driven by a
dedicated, *trusted* coordinator — which may fail and block the
transaction, the weakness BFT 2PC addresses on the blockchain side.

Participants implement ``prepare``/``commit``/``abort`` as simulated
calls returning kernel events; the coordinator sequences the two phases
and reports the decision.  A coordinator crash between phases leaves
participants prepared-and-blocked, which the tests assert explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Protocol

from ..sim.kernel import Countdown, Environment, Event, subscribe

__all__ = ["Vote", "Decision", "Participant", "TwoPhaseCoordinator"]


class Vote(Enum):
    YES = "yes"
    NO = "no"


class Decision(Enum):
    COMMIT = "commit"
    ABORT = "abort"
    BLOCKED = "blocked"   # coordinator died mid-protocol


class Participant(Protocol):
    """A shard taking part in a distributed transaction."""

    def prepare(self, txn_id: int, payload: dict) -> Event:
        """Vote event: fires with Vote.YES/NO once the shard is prepared."""

    def finalize(self, txn_id: int, decision: "Decision") -> Event:
        """Apply the coordinator's decision; fires when durable."""


def decision_from_votes(votes) -> "Decision":
    """Unanimous-consent fold shared by every 2PC coordinator form."""
    return (Decision.COMMIT if all(v is Vote.YES for v in votes)
            else Decision.ABORT)


@dataclass
class TwoPcStats:
    started: int = 0
    committed: int = 0
    aborted: int = 0
    blocked: int = 0
    prepared_blocked_participants: list = field(default_factory=list)


class _TwoPcChain:
    """One 2PC instance as a participant-countdown callback chain.

    Prepare fan-out -> countdown of votes -> (optional inter-phase
    delay) -> crash check -> commit/abort fan-out -> countdown of acks
    -> decision.  No Process per instance and none per participant;
    participant events are joined by :class:`Countdown`, whose
    triggered-guard absorbs late or duplicate branch completions (the
    double-completion race a crash mid-protocol can produce).
    """

    __slots__ = ("coordinator", "txn_id", "participants", "payload", "done",
                 "decision")

    def __init__(self, coordinator: "TwoPhaseCoordinator", txn_id: int,
                 participants: list[Participant], payload: dict, done: Event):
        self.coordinator = coordinator
        self.txn_id = txn_id
        self.participants = participants
        self.payload = payload
        self.done = done
        self.decision: Optional[Decision] = None

    def start(self) -> None:
        self.coordinator.env._schedule_call(self._begin, None)

    def _block(self) -> None:
        self.coordinator.stats.blocked += 1
        if not self.done._triggered:   # double-completion guard
            self.done.succeed(Decision.BLOCKED)

    def _begin(self, _arg) -> None:
        coordinator = self.coordinator
        coordinator.stats.started += 1
        if coordinator.crashed:
            self._block()
            return
        # Phase 1: prepare fan-out, votes joined by the countdown.
        join = Countdown(coordinator.env, len(self.participants))
        for p in self.participants:
            join.watch(p.prepare(self.txn_id, self.payload))
        subscribe(join, self._voted)

    def _voted(self, ev: Event) -> None:
        if not ev._ok:
            raise ev._value          # a participant died: surface it
        coordinator = self.coordinator
        self.decision = decision_from_votes(ev._value)
        if coordinator.extra_phase_delay:
            timer = coordinator.env.timeout(coordinator.extra_phase_delay)
            timer.callbacks.append(self._delayed)
        else:
            self._decide()

    def _delayed(self, _ev: Event) -> None:
        self._decide()

    def _decide(self) -> None:
        coordinator = self.coordinator
        if coordinator.crashed:
            # Participants voted and hold locks; nobody can decide.
            coordinator.stats.prepared_blocked_participants.extend(
                self.participants)
            self._block()
            return
        # Phase 2: commit/abort fan-out, acks joined by the countdown.
        join = Countdown(coordinator.env, len(self.participants))
        for p in self.participants:
            join.watch(p.finalize(self.txn_id, self.decision))
        subscribe(join, self._acked)

    def _acked(self, ev: Event) -> None:
        if not ev._ok:
            raise ev._value
        coordinator = self.coordinator
        if self.decision is Decision.COMMIT:
            coordinator.stats.committed += 1
        else:
            coordinator.stats.aborted += 1
        if not self.done._triggered:
            self.done.succeed(self.decision)


class TwoPhaseCoordinator:
    """A trusted (crash-prone) 2PC coordinator."""

    def __init__(self, env: Environment, extra_phase_delay: float = 0.0):
        self.env = env
        self.extra_phase_delay = extra_phase_delay
        self.crashed = False
        self.stats = TwoPcStats()

    def crash(self) -> None:
        """Crash the coordinator; in-flight transactions block."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def run(self, txn_id: int, participants: list[Participant],
            payload: Optional[dict] = None) -> Event:
        """Drive 2PC; the returned event fires with a :class:`Decision`."""
        done = self.env.event()
        _TwoPcChain(self, txn_id, participants, payload or {}, done).start()
        return done

    def run_gen(self, txn_id: int, participants: list[Participant],
                payload: Optional[dict] = None) -> Event:
        """Generator-form protocol, kept for differential testing."""
        done = self.env.event()
        self.env.process(self._protocol(txn_id, participants,
                                        payload or {}, done),
                         name=f"2pc:{txn_id}")
        return done

    def _protocol(self, txn_id: int, participants: list[Participant],
                  payload: dict, done: Event):
        self.stats.started += 1
        if self.crashed:
            self.stats.blocked += 1
            done.succeed(Decision.BLOCKED)
            return
        # Phase 1: prepare
        vote_events = [p.prepare(txn_id, payload) for p in participants]
        votes = yield self.env.all_of(vote_events)
        if self.extra_phase_delay:
            yield self.env.timeout(self.extra_phase_delay)
        if self.crashed:
            # Participants voted and hold locks; nobody can decide.
            self.stats.blocked += 1
            self.stats.prepared_blocked_participants.extend(participants)
            done.succeed(Decision.BLOCKED)
            return
        decision = decision_from_votes(votes)
        # Phase 2: commit/abort
        acks = [p.finalize(txn_id, decision) for p in participants]
        yield self.env.all_of(acks)
        if decision is Decision.COMMIT:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        done.succeed(decision)
