"""Shard formation and reconfiguration (Section 3.4.1, blockchain side).

Blockchain shard formation must be Sybil-resistant and unbiased: the
assignment uses verifiable randomness seeded by PoW solutions (Elastico),
stake (Eth2), or trusted hardware attestation (AHL).  The shard size must
keep the per-shard Byzantine fraction below the BFT threshold with high
probability — :func:`shard_failure_probability` computes the exact
hypergeometric tail the designer must bound.  Periodic reconfiguration
defends against adaptive adversaries at a throughput cost (Figure 14's
AHL-with-reconfiguration line is ~30% below fixed membership).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = [
    "FormationMethod",
    "ShardFormation",
    "shard_failure_probability",
    "min_shard_size",
    "ReconfigurationSchedule",
]


class FormationMethod(Enum):
    POW_LOTTERY = "pow"          # Elastico: PoW solution selects the shard
    POS_SAMPLING = "pos"         # Eth2: stake-weighted validator sampling
    TEE_ATTESTED = "tee"         # AHL: trusted hardware randomness


def _hypergeom_pmf(k: int, total: int, bad: int, draws: int) -> float:
    return (math.comb(bad, k) * math.comb(total - bad, draws - k)
            / math.comb(total, draws))


def shard_failure_probability(total_nodes: int, byzantine_nodes: int,
                              shard_size: int,
                              tolerance_fraction: float = 1 / 3) -> float:
    """P(a uniformly drawn shard has more Byzantine nodes than it tolerates).

    A shard of size s running BFT tolerates floor((s-1)/3) failures by
    default; sampling without replacement gives the hypergeometric tail.
    """
    if shard_size > total_nodes:
        raise ValueError("shard larger than population")
    threshold = math.floor((shard_size - 1) * tolerance_fraction)
    prob = 0.0
    for k in range(threshold + 1, min(byzantine_nodes, shard_size) + 1):
        prob += _hypergeom_pmf(k, total_nodes, byzantine_nodes, shard_size)
    return prob


def min_shard_size(total_nodes: int, byzantine_nodes: int,
                   target_failure_prob: float = 1e-6) -> int:
    """Smallest shard size whose failure probability is below target."""
    for size in range(4, total_nodes + 1):
        if shard_failure_probability(total_nodes, byzantine_nodes,
                                     size) <= target_failure_prob:
            return size
    return total_nodes


@dataclass
class ShardFormation:
    """A Sybil-resistant, randomness-seeded shard assignment."""

    num_shards: int
    method: FormationMethod = FormationMethod.TEE_ATTESTED
    epoch: int = 0

    def assign(self, node_names: list[str],
               epoch_seed: Optional[bytes] = None) -> dict[int, list[str]]:
        """Assign nodes to shards using epoch randomness.

        The assignment is deterministic in (epoch, seed, node id) — an
        attacker cannot bias their own placement because the seed comes
        from the beacon (PoW chain / randao / TEE), not from the node.
        """
        seed = epoch_seed or self.epoch.to_bytes(8, "big")
        buckets: dict[int, list[str]] = {i: [] for i in range(self.num_shards)}
        ranked = sorted(
            node_names,
            key=lambda n: hashlib.sha256(
                seed + self.method.value.encode() + n.encode()).digest())
        for i, name in enumerate(ranked):
            buckets[i % self.num_shards].append(name)
        return buckets

    def reconfigure(self, node_names: list[str]) -> dict[int, list[str]]:
        """Advance the epoch and re-draw the assignment."""
        self.epoch += 1
        return self.assign(node_names)


@dataclass
class ReconfigurationSchedule:
    """Periodic shard reshuffling with a per-epoch pause.

    During the pause (state migration + re-attestation), shards process
    no transactions; effective throughput is scaled by the duty cycle.
    AHL's reported ~30% loss corresponds to pause/period = 0.3.
    """

    period: float = 30.0
    pause: float = 9.0

    def __post_init__(self):
        if not 0 <= self.pause < self.period:
            raise ValueError("pause must be within [0, period)")

    @property
    def duty_cycle(self) -> float:
        return 1.0 - self.pause / self.period

    def is_paused(self, now: float) -> bool:
        return (now % self.period) >= (self.period - self.pause)

    def effective_throughput(self, raw_tps: float) -> float:
        return raw_tps * self.duty_cycle
