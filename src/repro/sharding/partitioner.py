"""Data partitioning schemes (Section 3.4.1, database side).

Databases form shards to optimize workload performance: hash partitioning
spreads load uniformly, range partitioning preserves locality for scans,
and a workload-aware scheme (Cassandra-style) lets users bias placement by
access frequency.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional, Sequence

__all__ = ["HashPartitioner", "RangePartitioner", "WorkloadAwarePartitioner"]


class HashPartitioner:
    """shard = hash(key) mod num_shards."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}


class RangePartitioner:
    """Contiguous key ranges; ``bounds`` are the right-open split points.

    With bounds [b0, b1] keys < b0 go to shard 0, [b0, b1) to shard 1, and
    >= b1 to shard 2.
    """

    def __init__(self, bounds: Sequence[str]):
        self.bounds = sorted(bounds)
        self.num_shards = len(self.bounds) + 1

    def shard_of(self, key: str) -> int:
        return bisect.bisect_right(self.bounds, key)

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}


class WorkloadAwarePartitioner:
    """Greedy frequency-balancing placement (Cassandra locality hints).

    Given observed key frequencies, assigns the hottest keys first, each
    to the currently least-loaded shard, so expected load is balanced even
    under skew.  Unknown keys fall back to hash placement.
    """

    def __init__(self, num_shards: int,
                 frequencies: Optional[dict[str, float]] = None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._assignment: dict[str, int] = {}
        self._fallback = HashPartitioner(num_shards)
        if frequencies:
            self.rebalance(frequencies)

    def rebalance(self, frequencies: dict[str, float]) -> None:
        loads = [0.0] * self.num_shards
        self._assignment.clear()
        for key, freq in sorted(frequencies.items(),
                                key=lambda kv: -kv[1]):
            target = min(range(self.num_shards), key=lambda s: loads[s])
            self._assignment[key] = target
            loads[target] += freq

    def shard_of(self, key: str) -> int:
        shard = self._assignment.get(key)
        if shard is None:
            return self._fallback.shard_of(key)
        return shard

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}

    def load_balance(self, frequencies: dict[str, float]) -> list[float]:
        """Per-shard expected load under ``frequencies`` (for tests)."""
        loads = [0.0] * self.num_shards
        for key, freq in frequencies.items():
            loads[self.shard_of(key)] += freq
        return loads
