"""Data partitioning schemes (Section 3.4.1, database side).

Databases form shards to optimize workload performance: hash partitioning
spreads load uniformly, range partitioning preserves locality for scans,
and a workload-aware scheme (Cassandra-style) lets users bias placement by
access frequency.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional, Sequence

__all__ = ["HashPartitioner", "HotSplitPartitioner", "RangePartitioner",
           "WorkloadAwarePartitioner"]


class HashPartitioner:
    """shard = hash(key) mod num_shards."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}


class RangePartitioner:
    """Contiguous key ranges; ``bounds`` are the right-open split points.

    With bounds [b0, b1] keys < b0 go to shard 0, [b0, b1) to shard 1, and
    >= b1 to shard 2.
    """

    def __init__(self, bounds: Sequence[str]):
        self.bounds = sorted(bounds)
        self.num_shards = len(self.bounds) + 1

    def shard_of(self, key: str) -> int:
        return bisect.bisect_right(self.bounds, key)

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}


class HotSplitPartitioner:
    """Hash-ring partitioner with load-aware hot-range splitting.

    Keys map to positions on a ``[0, 2**64)`` ring (first 8 bytes of
    sha256, matching :class:`HashPartitioner`'s digest); the ring is cut
    into contiguous ranges, each owned by a shard.  Initially there are
    ``num_shards`` equal ranges, range *i* owned by shard *i*.  Every
    lookup increments a per-range stripe histogram (``STRIPES`` equal
    sub-intervals per range), and :meth:`maybe_split` — called at epoch
    boundaries, when the reconfig pause already has the pipeline drained
    — cuts the hottest range at the stripe boundary that best halves its
    observed load, reassigning the lighter half to the currently coldest
    shard.  Under Zipf skew this peels hot keys off the overloaded shard
    a split at a time instead of letting one worker serialize the run.

    Everything is deterministic given the lookup sequence: ties break by
    lowest range index / lowest shard id, the cut lands on a stripe
    boundary, and histograms reset after each split (stats are
    epoch-scoped), so a seeded run replays byte-identically — including
    under ``parallel=True``, where routing stays hub-side.
    """

    RING = 1 << 64
    STRIPES = 16

    def __init__(self, num_shards: int, split_factor: float = 2.0):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        #: A range only splits when its load is ``split_factor`` times the
        #: mean per-range load (unless forced) — splitting a balanced ring
        #: would just shrink lookahead-free ranges for nothing.
        self.split_factor = split_factor
        step = self.RING // num_shards
        self._starts = [i * step for i in range(num_shards)]
        self._owners = list(range(num_shards))
        self._hist = [[0] * self.STRIPES for _ in range(num_shards)]
        self.splits: list[dict] = []   # audit log, one entry per split

    # -- routing ----------------------------------------------------------

    def _position(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def shard_of(self, key: str) -> int:
        pos = self._position(key)
        r = bisect.bisect_right(self._starts, pos) - 1
        starts = self._starts
        end = starts[r + 1] if r + 1 < len(starts) else self.RING
        width = end - starts[r]
        stripe = min((pos - starts[r]) * self.STRIPES // width,
                     self.STRIPES - 1)
        self._hist[r][stripe] += 1
        return self._owners[r]

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}

    # -- load accounting --------------------------------------------------

    def shard_loads(self) -> list[int]:
        """Accesses per shard since the last split (epoch-scoped)."""
        loads = [0] * self.num_shards
        for r, hist in enumerate(self._hist):
            loads[self._owners[r]] += sum(hist)
        return loads

    def max_share(self) -> float:
        """Hottest shard's fraction of all accesses this epoch."""
        loads = self.shard_loads()
        total = sum(loads)
        return max(loads) / total if total else 0.0

    # -- elastic resharding -----------------------------------------------

    def maybe_split(self, force: bool = False) -> Optional[dict]:
        """Split the hottest range if it carries outsized load.

        Intended to run at a reconfig epoch boundary (in-flight work
        drained by the pause), so re-homing half a range never strands a
        mid-flight transaction.  Returns the audit entry on a split,
        ``None`` when balanced (or ``force=False`` and below threshold).
        """
        totals = [sum(hist) for hist in self._hist]
        grand = sum(totals)
        if grand == 0:
            return None
        hot = max(range(len(totals)), key=lambda r: (totals[r], -r))
        if not force and totals[hot] < self.split_factor * (grand /
                                                           len(totals)):
            return None
        starts = self._starts
        end = starts[hot + 1] if hot + 1 < len(starts) else self.RING
        width = end - starts[hot]
        if width < self.STRIPES:
            return None   # range too narrow to cut on a stripe boundary
        hist = self._hist[hot]
        # Cut after stripe k-1 minimizing |left load - right load|.
        best_k, best_diff = 1, None
        left = 0
        for k in range(1, self.STRIPES):
            left += hist[k - 1]
            diff = abs(2 * left - totals[hot])
            if best_diff is None or diff < best_diff:
                best_k, best_diff = k, diff
        cut = starts[hot] + width * best_k // self.STRIPES
        left_load = sum(hist[:best_k])
        right_load = totals[hot] - left_load
        # The lighter half migrates to the coldest shard; the heavier
        # half keeps its data in place.
        loads = self.shard_loads()
        cold = min(range(self.num_shards), key=lambda s: (loads[s], s))
        max_share_before = max(loads) / grand
        if left_load <= right_load:
            moved, kept = "left", self._owners[hot]
            self._starts.insert(hot + 1, cut)
            self._owners.insert(hot + 1, kept)
            self._owners[hot] = cold
        else:
            moved, kept = "right", self._owners[hot]
            self._starts.insert(hot + 1, cut)
            self._owners.insert(hot + 1, cold)
        entry = {
            "range": hot, "cut": cut, "stripe": best_k,
            "from_shard": kept, "to_shard": cold, "moved_half": moved,
            "left_load": left_load, "right_load": right_load,
            "max_share_before": max_share_before,
        }
        self.splits.append(entry)
        # Epoch-scoped stats: start the next epoch's histograms clean so
        # one hot burst doesn't dominate every later split decision.
        self._hist = [[0] * self.STRIPES for _ in range(len(self._starts))]
        return entry


class WorkloadAwarePartitioner:
    """Greedy frequency-balancing placement (Cassandra locality hints).

    Given observed key frequencies, assigns the hottest keys first, each
    to the currently least-loaded shard, so expected load is balanced even
    under skew.  Unknown keys fall back to hash placement.
    """

    def __init__(self, num_shards: int,
                 frequencies: Optional[dict[str, float]] = None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._assignment: dict[str, int] = {}
        self._fallback = HashPartitioner(num_shards)
        if frequencies:
            self.rebalance(frequencies)

    def rebalance(self, frequencies: dict[str, float]) -> None:
        loads = [0.0] * self.num_shards
        self._assignment.clear()
        for key, freq in sorted(frequencies.items(),
                                key=lambda kv: -kv[1]):
            target = min(range(self.num_shards), key=lambda s: loads[s])
            self._assignment[key] = target
            loads[target] += freq

    def shard_of(self, key: str) -> int:
        shard = self._assignment.get(key)
        if shard is None:
            return self._fallback.shard_of(key)
        return shard

    def shards_of(self, keys: Sequence[str]) -> set[int]:
        return {self.shard_of(k) for k in keys}

    def load_balance(self, frequencies: dict[str, float]) -> list[float]:
        """Per-shard expected load under ``frequencies`` (for tests)."""
        loads = [0.0] * self.num_shards
        for key, freq in frequencies.items():
            loads[self.shard_of(key)] += freq
        return loads
