"""Multiprocess figure-grid sweep: the whole paper in max-point time.

The full grid (Figs 4-15, Tabs 4/5) is embarrassingly parallel across
measurement points: every point is a self-contained seeded simulation.
:func:`run_sweep` enumerates each figure's declarative
:class:`~repro.bench.harness.PointSpec` table, farms the specs across a
spawn-safe ``multiprocessing`` pool (longest-job-first, so wall time
approaches the heaviest single point), verifies every finished point
against the seeded fingerprint registry where a pin exists, and folds
the results through the same per-figure assemblers the serial functions
use — the merged trajectory is byte-identical to a serial run except
for wall-clock fields.

Usage::

    python -m repro.bench --sweep --jobs 8            # full grid
    python -m repro.bench --sweep --list              # point inventory
    python -m repro.bench --sweep fig4 fig14 --scale smoke --jobs 2

Determinism contract: per-point results do not depend on which process
runs them or in what order (``run_spec`` resets the process-global id
counters per point), results are merged by enumeration key rather than
completion order, and :func:`deterministic_view` names exactly the
fields that may differ between two runs (wall clocks and pool shape).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from .fingerprints import expected_for_spec, fingerprint_specs, \
    fingerprints_assemble, verify_point
from .harness import BENCH, PointResult, PointSpec, Scale, run_spec

__all__ = ["enumerate_grid", "run_sweep", "write_sweep_trajectory",
           "deterministic_view", "format_sweep", "SweepMismatch"]

#: Report fields that legitimately differ between two equivalent runs:
#: wall clocks, pool shape, and the file stamp.  Everything else must be
#: byte-identical between a serial and a parallel sweep.
WALL_CLOCK_FIELDS = ("jobs", "total_wall_s", "max_point_wall_s",
                     "points_wall_s", "date")


class SweepMismatch(AssertionError):
    """A swept point disagreed with its seeded fingerprint pin."""


def enumerate_grid(scale: Scale = BENCH,
                   figures: Optional[list[str]] = None,
                   with_fingerprints: bool = True) -> list[PointSpec]:
    """Flatten the requested figures into one spec list, grid order.

    ``figures=None`` means the whole grid.  The seeded fingerprint
    registry rides along as one more figure (``"fingerprints"``) unless
    disabled — it is the sweep's self-check that the simulator in this
    checkout still reproduces the pinned universe.
    """
    from .experiments import POINT_TABLES
    wanted = list(POINT_TABLES) if figures is None else list(figures)
    specs: list[PointSpec] = []
    for fig in wanted:
        if fig == "fingerprints":
            continue
        points_fn, _assemble = POINT_TABLES[fig]
        specs.extend(points_fn(scale))
    if with_fingerprints and (figures is None or "fingerprints" in figures):
        specs.extend(fingerprint_specs())
    return specs


def _assemblers() -> dict:
    from .experiments import POINT_TABLES
    table = {fig: assemble for fig, (_pts, assemble) in POINT_TABLES.items()}
    table["fingerprints"] = fingerprints_assemble
    return table


def _worker_init() -> None:
    """Per-worker warmup: pay the import bill before any timed point."""
    import repro.bench.experiments   # noqa: F401  (pulls systems/workloads)
    import repro.chaos               # noqa: F401
    from repro.sim.kernel import Environment
    Environment().run(until=0.0)     # touch the kernel's hot paths


def _run_indexed(item: tuple) -> tuple:
    idx, spec = item
    print(f"[sweep] start  {spec.label}", file=sys.stderr, flush=True)
    return idx, run_spec(spec)


def _iter_pool(specs: list[PointSpec], jobs: int):
    """Yield ``(idx, PointResult)`` as points finish, longest job first."""
    order = sorted(range(len(specs)), key=lambda i: -specs[i].weight)
    items = [(i, specs[i]) for i in order]
    if jobs <= 1:
        for item in items:
            yield _run_indexed(item)
        return
    # Points that spawn shard-worker processes themselves (no_fork, e.g.
    # parallel=True kernel builds) cannot run inside a daemonic pool
    # worker — the coupler refuses nested pools.  They run in the parent,
    # overlapped with the pool draining the rest.
    pool_items = [item for item in items if not item[1].no_fork]
    parent_items = [item for item in items if item[1].no_fork]
    ctx = mp.get_context("spawn")
    with ctx.Pool(processes=jobs, initializer=_worker_init) as pool:
        pending = pool.imap_unordered(_run_indexed, pool_items, chunksize=1)
        for item in parent_items:
            yield _run_indexed(item)
        yield from pending


def run_sweep(scale: Scale = BENCH, jobs: int = 1,
              figures: Optional[list[str]] = None,
              verify: bool = True,
              with_fingerprints: bool = True,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the figure grid and return the merged trajectory report.

    Points are executed longest-first across ``jobs`` worker processes
    (``jobs <= 1`` runs in-process) and merged by enumeration key, so the
    report is byte-identical for any ``jobs`` except the fields named in
    :data:`WALL_CLOCK_FIELDS`.  With ``verify`` (the default), any point
    whose canonical identity matches a seeded fingerprint pin is checked
    and the first mismatch raises :class:`SweepMismatch` after the sweep
    drains — a fingerprint drift is never reported as a finished sweep.
    """
    tell = progress if progress is not None else (
        lambda line: print(line, file=sys.stderr, flush=True))
    specs = enumerate_grid(scale, figures, with_fingerprints)
    total_weight = sum(s.weight for s in specs) or 1.0
    results: dict[int, PointResult] = {}
    mismatches: list[str] = []
    checked = 0
    start = time.perf_counter()
    done_weight = 0.0
    for idx, result in _iter_pool(specs, jobs):
        spec = specs[idx]
        if result is None:     # worker died; surface as a hard failure
            raise SweepMismatch(f"worker returned no result for {spec.label}")
        results[idx] = result
        done_weight += spec.weight
        if verify and expected_for_spec(spec) is not None:
            checked += 1
            problem = verify_point(spec, result)
            if problem is not None:
                mismatches.append(problem)
                tell(f"[sweep] FINGERPRINT MISMATCH {spec.label}: {problem}")
        elapsed = time.perf_counter() - start
        eta = elapsed / done_weight * (total_weight - done_weight)
        tell(f"[sweep] finish {spec.label} in {result.wall_s:.2f}s "
             f"({len(results)}/{len(specs)}, ETA {eta:.0f}s)")
    wall = time.perf_counter() - start

    assemblers = _assemblers()
    by_figure: dict[str, dict] = {}
    for idx, spec in enumerate(specs):      # enumeration order, not finish
        by_figure.setdefault(spec.figure, {})[spec.key] = results[idx]
    artifacts = {fig: assemblers[fig](res)
                 for fig, res in by_figure.items()}

    report = {
        "kind": "sweep",
        "scale": scale.name,
        "figures": list(by_figure),
        "points": len(specs),
        "verified": checked - len(mismatches),
        "mismatches": list(mismatches),
        "artifacts": artifacts,
        # wall-clock section (excluded from equivalence comparisons)
        "jobs": jobs,
        "total_wall_s": round(wall, 3),
        "max_point_wall_s": round(
            max((r.wall_s for r in results.values()), default=0.0), 3),
        "points_wall_s": {specs[i].label: results[i].wall_s
                          for i in range(len(specs))},
    }
    if mismatches:
        raise SweepMismatch("; ".join(mismatches))
    return report


def deterministic_view(report: dict) -> dict:
    """The report minus every field two equivalent runs may differ on."""
    return {k: v for k, v in report.items() if k not in WALL_CLOCK_FIELDS}


def write_sweep_trajectory(report: dict, out_dir: str = ".") -> Path:
    """Persist ``SWEEP_<YYYY-MM-DD>.json`` (no-clobber, like perf's)."""
    stamp = time.strftime("%Y-%m-%d")
    path = Path(out_dir) / f"SWEEP_{stamp}.json"
    run = 0
    while path.exists():
        run += 1
        path = Path(out_dir) / f"SWEEP_{stamp}.{run}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    report = dict(report)
    report["date"] = stamp
    path.write_text(json.dumps(report, indent=2, default=str) + "\n")
    return path


def format_sweep(report: dict) -> str:
    lines = [f"sweep trajectory ({report['scale']} scale, "
             f"{report['points']} points, {report['jobs']} jobs, "
             f"{report['total_wall_s']}s wall, "
             f"max point {report['max_point_wall_s']}s)"]
    for fig in report["figures"]:
        walls = [w for label, w in report["points_wall_s"].items()
                 if label.split(":")[0] == fig]
        lines.append(f"  {fig:12s} {len(walls):3d} points "
                     f"{sum(walls):8.2f}s")
    if report["mismatches"]:
        lines.append(f"  MISMATCHES: {len(report['mismatches'])}")
    return "\n".join(lines)


def format_inventory(scale: Scale = BENCH,
                     figures: Optional[list[str]] = None,
                     with_fingerprints: bool = True) -> str:
    """The ``--sweep --list`` view: every point, no execution."""
    specs = enumerate_grid(scale, figures, with_fingerprints)
    lines = [f"{len(specs)} points at {scale.name} scale "
             f"(total weight {sum(s.weight for s in specs):.1f})"]
    for spec in specs:
        lines.append(f"  {spec.label:40s} runner={spec.runner:9s} "
                     f"weight={spec.weight:6.2f}")
    return "\n".join(lines)
