"""Paper-style text rendering of experiment results.

Turns the dicts returned by :mod:`repro.bench.experiments` into the same
rows/series the paper prints, side by side with the paper's numbers, for
terminal output and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["format_table", "format_series", "format_experiment",
           "shape_ratio"]


def shape_ratio(measured: dict, paper: dict) -> Optional[float]:
    """Geometric-mean |log ratio| between measured and paper values for
    shared keys — 1.0 means identical shape; lower is better matched."""
    import math
    logs = []
    for key in measured:
        if key in paper and paper[key] and measured[key]:
            logs.append(abs(math.log(measured[key] / paper[key])))
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def format_table(title: str, columns: list, rows: dict[str, dict],
                 unit: str = "tps", width: int = 10) -> str:
    """Render rows of {row_name: {column: value}} as an aligned table."""
    header = f"{'':16s}" + "".join(f"{str(c):>{width}}" for c in columns)
    lines = [title, header, "-" * len(header)]
    for name, cells in rows.items():
        row = f"{name:16s}"
        for column in columns:
            value = cells.get(column)
            if value is None:
                row += f"{'—':>{width}}"
            elif isinstance(value, float):
                row += f"{value:>{width}.0f}" if value >= 10 \
                    else f"{value:>{width}.2f}"
            else:
                row += f"{value:>{width}}"
        lines.append(row)
    lines.append(f"({unit})")
    return "\n".join(lines)


def format_series(title: str, series: dict[str, float],
                  unit: str = "tps") -> str:
    lines = [title]
    for key, value in series.items():
        lines.append(f"  {key:20s} {value:12,.1f} {unit}")
    return "\n".join(lines)


def format_experiment(result: dict) -> str:
    """Best-effort rendering of any experiments.py result dict."""
    exp_id = result.get("id", "experiment")
    parts = [f"=== {exp_id} ==="]
    for key, value in result.items():
        if key in ("id",):
            continue
        if isinstance(value, dict):
            parts.append(f"[{key}]")
            parts.append(_render_nested(value, indent=2))
        else:
            parts.append(f"{key}: {value}")
    return "\n".join(parts)


def _render_nested(data: dict, indent: int = 0) -> str:
    pad = " " * indent
    lines = []
    for key, value in data.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(_render_nested(value, indent + 2))
        elif isinstance(value, float):
            lines.append(f"{pad}{key}: {value:,.2f}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
