"""Benchmark harness: per-figure/table experiment functions and reporting."""

from .experiments import (fig4_peak_throughput, fig5_latency, fig6_smallbank,
                          fig7_cft_vs_bft, fig8_latency_breakdown,
                          fig9_skew, fig10_opcount, fig11_record_size,
                          fig12_storage, fig13_ads_overhead, fig14_sharding,
                          fig15_hybrid_forecast, tab4_scaling,
                          tab5_tidb_matrix)
from .harness import BENCH, PAPER, SMOKE, Scale, run_point, run_smallbank_point
from .report import format_experiment, format_series, format_table, shape_ratio

__all__ = [
    "BENCH",
    "PAPER",
    "SMOKE",
    "Scale",
    "fig10_opcount",
    "fig11_record_size",
    "fig12_storage",
    "fig13_ads_overhead",
    "fig14_sharding",
    "fig15_hybrid_forecast",
    "fig4_peak_throughput",
    "fig5_latency",
    "fig6_smallbank",
    "fig7_cft_vs_bft",
    "fig8_latency_breakdown",
    "fig9_skew",
    "format_experiment",
    "format_series",
    "format_table",
    "run_point",
    "run_smallbank_point",
    "shape_ratio",
    "tab4_scaling",
    "tab5_tidb_matrix",
]
