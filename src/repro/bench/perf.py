"""Wall-clock perf-regression harness.

Microbenchmarks for the hot paths the simulator lives on — kernel event
dispatch, authenticated-state writes, workload sampling, and the full
closed-loop driver — plus a JSON trajectory emitter so every PR leaves a
measured footprint behind.

Usage::

    python -m repro.bench --perf                  # bench scale, writes BENCH_<date>.json
    python -m repro.bench --perf --scale smoke    # CI-sized, seconds
    python -m repro.bench --perf --budget 120     # fail (exit 1) if over budget

Reading ``BENCH_<date>.json``: every entry reports ``wall_s`` (seconds
spent) and a throughput figure (``events_per_s``, ``writes_per_s``,
``draws_per_s``, ``txns_per_s``).  Compare files across commits — the
throughput figures should only go up; ``sim_tps``/``root`` fields are
fingerprints that must stay *identical* for a given seed, catching
accidental semantic drift inside a perf change.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..adt.mbt import MerkleBucketTree
from ..adt.mpt import MerklePatriciaTrie
from ..sim.kernel import Environment
from ..workloads.zipf import ZipfGenerator
from .harness import BENCH, SMOKE, Scale, run_point, run_smallbank_point

__all__ = ["bench_kernel", "bench_mpt", "bench_mbt", "bench_zipf",
           "bench_driver", "bench_fabric", "bench_scale", "bench_db",
           "bench_storage", "bench_chaos", "bench_isolation",
           "bench_openloop", "bench_shards", "run_perf", "write_trajectory"]


def bench_kernel(events: int = 200_000, _timed: bool = True) -> dict:
    """Kernel dispatch rate: timer-driven ping-pong across processes."""
    if _timed:
        # Warm allocator/caches outside the timed region (first-run cold
        # start costs ~30% and would gate PRs on scheduler noise).
        import gc
        bench_kernel(events=min(events, 20_000), _timed=False)
        gc.collect()
    env = Environment()
    counter = {"n": 0}

    def ticker(period: float):
        while counter["n"] < events:
            yield env.timeout(period)
            counter["n"] += 1

    def canceller():
        # exercise the cancellable-timer fast path like the driver does
        while counter["n"] < events:
            timer = env.timeout(60.0)
            yield env.timeout(0.001)
            timer.cancel()
            counter["n"] += 1

    for i in range(8):
        env.process(ticker(0.0001 * (i + 1)))
    env.process(canceller())
    start = time.perf_counter()
    env.run(until=1e9)
    wall = time.perf_counter() - start
    return {"name": "kernel", "events": counter["n"], "wall_s": round(wall, 4),
            "events_per_s": round(counter["n"] / wall)}


def bench_mpt(writes: int = 20_000, block: int = 100) -> dict:
    """MPT write rate: per-write baseline vs batched block commits.

    Uses workload-shaped keys (``user%012d`` — long shared prefixes, like
    every system model stores) and asserts the two paths land on the
    byte-identical root, so the harness doubles as a continuous
    equivalence check.
    """
    import gc
    keys = [b"user%012d" % i for i in range(writes)]
    gc.collect()
    per_write = MerklePatriciaTrie()
    start = time.perf_counter()
    for i, key in enumerate(keys):
        per_write.put(key, b"value-%d" % i)
    wall_per_write = time.perf_counter() - start
    per_write_root = per_write.root
    per_write_hashes = per_write.hashes_computed
    del per_write
    gc.collect()

    batched = MerklePatriciaTrie()
    start = time.perf_counter()
    for i, key in enumerate(keys):
        batched.stage(key, b"value-%d" % i)
        if (i + 1) % block == 0:
            batched.commit()
    batched.commit()
    wall_batched = time.perf_counter() - start

    if per_write_root != batched.root:  # pragma: no cover - regression trap
        raise AssertionError("batched MPT root diverged from per-write root")
    return {
        "name": "mpt", "writes": writes, "block": block,
        "root": batched.root.hex(),
        "wall_s": round(wall_per_write + wall_batched, 4),
        "per_write": {"wall_s": round(wall_per_write, 4),
                      "writes_per_s": round(writes / wall_per_write),
                      "hashes": per_write_hashes},
        "batched": {"wall_s": round(wall_batched, 4),
                    "writes_per_s": round(writes / wall_batched),
                    "hashes": batched.hashes_computed},
        "writes_per_s": round(writes / wall_batched),
        "speedup": round(wall_per_write / wall_batched, 2),
    }


def bench_mbt(writes: int = 50_000, block: int = 100) -> dict:
    """MBT write rate with per-block batched root folds."""
    tree = MerkleBucketTree(num_buckets=1000, fanout=4)
    start = time.perf_counter()
    for i in range(writes):
        tree.stage(b"acct%d" % (i % 10_000), b"balance-%d" % i)
        if (i + 1) % block == 0:
            tree.commit()
    tree.commit()
    wall = time.perf_counter() - start
    return {"name": "mbt", "writes": writes, "block": block,
            "root": tree.root.hex(), "wall_s": round(wall, 4),
            "writes_per_s": round(writes / wall)}


def bench_zipf(draws: int = 500_000, n: int = 100_000,
               theta: float = 0.99) -> dict:
    """Workload sampling rate (alias method + Feistel scramble)."""
    import random
    gen = ZipfGenerator(n, theta=theta, rng=random.Random(42))
    gen.next()  # force table construction outside the timed region
    start = time.perf_counter()
    acc = 0
    for _ in range(draws):
        acc += gen.next()
    wall = time.perf_counter() - start
    return {"name": "zipf", "draws": draws, "n": n, "theta": theta,
            "checksum": acc, "wall_s": round(wall, 4),
            "draws_per_s": round(draws / wall)}


def _bench_point(name: str, system: str, scale: Scale, seed: int,
                 clients=None, extras=None) -> dict:
    """Time one ``run_point`` and report its wall rate + sim fingerprint."""
    start = time.perf_counter()
    result = run_point(system, scale=scale, seed=seed, clients=clients,
                       extras=extras)
    wall = time.perf_counter() - start
    out = {"name": name, "system": system, "scale": scale.name,
           "seed": seed, "wall_s": round(wall, 4),
           "txns_per_s": round(result.measured / wall) if wall else 0,
           "sim_tps": result.tps, "measured": result.measured,
           "mean_latency": result.stats.latency.mean}
    if result.extras.get("wall_hit"):
        out["wall_hit"] = True
    if clients is not None:
        out["clients"] = clients
    if extras is not None:
        out["extras"] = extras
        sys_obj = result.extras.get("system")
        engine = getattr(sys_obj, "engine", None)
        if engine is not None:
            out["index"] = engine.kind.value
            out["hashes_charged"] = getattr(sys_obj, "mpt_hashes_charged",
                                            None)
    return out


def bench_driver(scale: Scale = BENCH, seed: int = 7) -> dict:
    """End-to-end driver rate: the acceptance microbenchmark —
    ``run_point("quorum")`` at the given scale."""
    return _bench_point("driver", "quorum", scale, seed)


def bench_fabric(scale: Scale = BENCH, seed: int = 7) -> dict:
    """Fabric-path driver rate: endorsement fan-out at every peer, the
    Raft-backed ordering service, and the serial validation pipeline —
    the hottest burst-heavy loop after Quorum's EVM."""
    return _bench_point("fabric", "fabric", scale, seed)


def bench_scale(scale: Scale = BENCH, seed: int = 7,
                clients: int = 10_000) -> dict:
    """10k-client closed-loop rate (the ROADMAP scale target).

    Drives the fabric point — the heaviest per-client pipeline — with
    10k clients multiplexed into driver cohort slots.  The BENCH-scale
    wall target is <5 s; compare ``wall_s`` across trajectory files.
    """
    return _bench_point("scale", "fabric", scale, seed, clients=clients)


def bench_db(scale: Scale = BENCH, seed: int = 7) -> list[dict]:
    """DB-side driver rates: the flattened chain paths.

    etcd (single-Raft serial apply — the highest-throughput DB point,
    so the heaviest per-transaction chain churn) and tidb (percolator
    2PC over multi-Raft: per-key latches, a prewrite countdown fan-out,
    and two consensus writes per transaction).  Both used to spawn one
    Process per transaction (tidb: plus one per kv read/write); compare
    ``wall_s`` across trajectory files, ``sim_tps`` must stay identical.
    """
    return [_bench_point("db-etcd", "etcd", scale, seed),
            _bench_point("db-tidb", "tidb", scale, seed)]


def bench_storage(scale: Scale = BENCH, seed: int = 7) -> list[dict]:
    """Fig. 12-style storage ablation on the quorum path.

    The same seeded point with the authenticated LSM+MPT engine vs the
    plain LSM engine — the only difference between the two runs is the
    index-commit charge wired from the engine's *measured*
    ``hashes_computed`` deltas (not calibration constants), so the
    ``sim_tps`` gap is the paper's authenticated-index tax.  Compare
    ``wall_s`` across trajectory files; the sim fingerprints must stay
    identical per seed.
    """
    return [
        _bench_point("storage-mpt", "quorum", scale, seed,
                     extras={"index": "lsm+mpt"}),
        _bench_point("storage-lsm", "quorum", scale, seed,
                     extras={"index": "lsm"}),
    ]


def bench_isolation(scale: Scale = BENCH, seed: int = 7) -> dict:
    """Isolation-spectrum A/B: quorum SmallBank, serializable vs
    read-committed.

    Same seeded point twice, differing only in ``extras["isolation"]``.
    Read-committed drops the first-committer-wins check, so hot-account
    conflicts stop aborting and throughput climbs — the gain is the
    price the serializable path pays for correctness, and the online
    anomaly detector confirms the trade is real: the RC run's history
    must admit lost updates (nonzero ``anomalies``) while the
    serializable run's stays clean.  ``speedup`` (RC sim tps over
    serializable sim tps) is the trajectory figure to track; ``wall_s``
    covers both runs.
    """
    start = time.perf_counter()
    levels: dict[str, dict] = {}
    for level in ("serializable", "read_committed"):
        res = run_smallbank_point("quorum", scale=scale, seed=seed,
                                  num_accounts=200, theta=0.9,
                                  extras={"isolation": level})
        levels[level] = {
            "sim_tps": res.tps,
            "aborted": res.stats.aborted,
            "serializable_history": res.extras["serializable_history"],
            "anomalies": res.extras["anomalies"],
        }
    wall = time.perf_counter() - start
    measured = scale.measure_txns * 2
    ser_tps = levels["serializable"]["sim_tps"]
    return {"name": "isolation", "system": "quorum", "scale": scale.name,
            "seed": seed, "wall_s": round(wall, 4),
            "txns_per_s": round(measured / wall) if wall else 0,
            "sim_tps": ser_tps, "measured": measured,
            "levels": levels,
            "speedup": round(levels["read_committed"]["sim_tps"] / ser_tps, 3)
            if ser_tps else 0.0}


def bench_chaos(seed: int = 11) -> dict:
    """Chaos-harness rate: one seeded fault-schedule run on etcd.

    A fixed storm (minority partition, gray follower, engine-host
    crash-restart with WAL replay) under the full invariant suite.  The
    run length is set by the scenario horizon, not a ``Scale`` — the
    wall cost is the injector timers, the continuous invariant checker,
    and the recovery replay on top of a paced closed loop.  ``digest``
    is the seeded fingerprint: it covers the injection log, the measured
    floats, and the invariant verdicts, so any drift in fault semantics
    shows up here even when throughput doesn't move.
    """
    from ..chaos import (CrashRestart, GrayNode, Partition, Scenario,
                         run_chaos_point)
    scenario = Scenario(
        name="bench-etcd-storm",
        steps=(
            Partition(at=1.0, group_a=("etcd1",),
                      group_b=("etcd0", "etcd2", "etcd3", "etcd4"),
                      until=2.5),
            GrayNode(at=3.0, node="etcd2", extra_delay=0.002,
                     drop_rate=0.05, until=4.0),
            CrashRestart(at=4.5, node="etcd0", restart_at=5.5),
        ),
        settle=2.5)
    start = time.perf_counter()
    result = run_chaos_point("etcd", scenario, seed=seed,
                             extras={"wal": True})
    wall = time.perf_counter() - start
    if not result.ok:  # pragma: no cover - regression trap
        raise AssertionError(f"chaos invariants violated: {result.violations}")
    return {"name": "chaos", "system": "etcd", "seed": seed,
            "scenario": scenario.name, "wall_s": round(wall, 4),
            "txns_per_s": round(result.run.measured / wall) if wall else 0,
            "sim_tps": result.run.tps, "measured": result.run.measured,
            "checks": result.checks, "digest": result.digest()}


def bench_openloop(scale: Scale = BENCH, seed: int = 11,
                   num_users: int = 1_000_000) -> dict:
    """Open-loop driver rate: a million-user arrival stream on etcd.

    A seeded Poisson arrival process at the etcd path's nominal capacity
    feeds ``system.submit`` at its scheduled instants regardless of
    completions — in-flight requests are timing-wheel slots, not client
    coroutines, so the wall cost tracks the arrival count, not the user
    population.  Latency is coordinated-omission-safe (measured from
    *intended* arrival); ``digest`` is the seeded byte-identity
    fingerprint over the measured outcome, and a truncated run carries
    ``wall_hit`` instead of masquerading as a full one.
    """
    from ..core.builder import build_system
    from ..systems.base import SystemConfig
    from ..workloads.openloop import OpenLoopConfig, run_open_loop
    from ..workloads.ycsb import YcsbConfig, YcsbWorkload

    small = scale.name == "smoke"
    env = Environment()
    sys_obj = build_system(env, "etcd",
                           SystemConfig(num_nodes=5, seed=seed))
    workload = YcsbWorkload(YcsbConfig(record_count=scale.record_count,
                                       record_size=1000, seed=seed + 1))
    sys_obj.load(workload.initial_records())
    cfg = OpenLoopConfig(
        rate=15_000.0, duration=0.6 if small else 2.0,
        warmup=0.2 if small else 0.5, arrival="poisson",
        num_users=num_users, seed=seed, txn_timeout=1.0,
        max_in_flight=256, admit_queue=2048, max_sim_time=30.0)
    start = time.perf_counter()
    result = run_open_loop(env, sys_obj, workload.next_update, cfg)
    wall = time.perf_counter() - start
    out = {"name": "openloop", "system": "etcd", "scale": scale.name,
           "seed": seed, "users": num_users, "wall_s": round(wall, 4),
           "txns_per_s": round(result.offered / wall) if wall else 0,
           "sim_tps": result.goodput, "offered": result.offered,
           "committed": result.committed,
           "p50": result.p50, "p99": result.p99, "p999": result.p999,
           "slo_attainment": result.slo_attainment,
           "dropped": result.dropped,
           "late_admitted": result.late_admitted,
           "digest": result.result_digest()}
    if result.extras.get("wall_hit"):
        out["wall_hit"] = True
    return out


def bench_shards(scale: Scale = BENCH, seed: int = 11, shards: int = 64,
                 repeats: int = 0) -> dict:
    """Parallel-kernel A/B at ``shards`` shards: serial lookahead vs
    ``parallel=True`` on the identical seeded AHL point.

    The two builds are interleaved ``repeats`` times (serial, parallel,
    serial, ...) and ``speedup`` is the ratio of *median* walls, per the
    ROADMAP's A/B methodology — back-to-back pairs cancel box drift.
    Every pair is also a live differential test: the RunResult
    fingerprints must be byte-identical or the bench raises.  The
    workload is uniform rmw with 2 ops/txn so cross-shard 2PC keeps the
    shard pipelines (the part that parallelizes) busy relative to the
    hub.  ``barrier_wait_fraction`` is the share of the parallel run's
    wall spent blocked on worker replies — the number the amortization
    layers (2L stride, idle-worker elision, packed frames, persistent
    pool) exist to shrink.  ``digest`` covers only box-independent
    fields (fingerprints + simulated barrier/message counts), never
    walls or pool geometry, so it is a cross-box determinism gate.
    """
    import hashlib
    import statistics
    small = scale.name == "smoke"
    if repeats <= 0:
        repeats = 1 if small else 3
    kwargs = dict(scale=scale, num_nodes=3 * shards, seed=seed,
                  mode="rmw", ops_per_txn=2, theta=0.0)
    walls = {"serial": [], "parallel": []}
    fps: dict[str, dict] = {}
    kernel_stats: dict = {}
    start = time.perf_counter()
    for _ in range(repeats):
        for arm, sk in (("serial", {"shard_lookahead": True}),
                        ("parallel", {"parallel": True})):
            t0 = time.perf_counter()
            res = run_point("ahl", system_kwargs=sk, **kwargs)
            walls[arm].append(time.perf_counter() - t0)
            fp = {"sim_tps": repr(res.tps), "measured": res.measured,
                  "mean_latency": repr(res.stats.latency.mean),
                  "aborted": res.stats.aborted, "timeouts": res.timeouts,
                  "elapsed": repr(res.elapsed)}
            if arm in fps and fps[arm] != fp:  # pragma: no cover - trap
                raise AssertionError(f"{arm} arm drifted across repeats")
            fps[arm] = fp
            if arm == "parallel":
                kernel_stats = res.extras["parallel_kernel"]
    if fps["serial"] != fps["parallel"]:  # pragma: no cover - trap
        raise AssertionError(
            "parallel RunResult diverged from serial lookahead: "
            f"{fps['serial']} != {fps['parallel']}")
    wall = time.perf_counter() - start
    serial_med = statistics.median(walls["serial"])
    parallel_med = statistics.median(walls["parallel"])
    digest_src = json.dumps(
        {"shards": shards, "seed": seed, "scale": scale.name,
         "fingerprint": fps["serial"],
         "barriers": kernel_stats["barriers"],
         "arrivals": kernel_stats["arrivals"],
         "completions": kernel_stats["completions"]},
        sort_keys=True)
    return {
        "name": "shards", "system": "ahl", "scale": scale.name,
        "seed": seed, "shards": shards, "repeats": repeats,
        "wall_s": round(wall, 4),
        "txns_per_s": round(scale.measure_txns * 2 * repeats / wall)
        if wall else 0,
        "sim_tps": float(fps["serial"]["sim_tps"]),
        "measured": fps["serial"]["measured"],
        "serial_wall_s": round(serial_med, 4),
        "parallel_wall_s": round(parallel_med, 4),
        "speedup": round(serial_med / parallel_med, 3)
        if parallel_med else 0.0,
        "barrier_wait_fraction": round(
            kernel_stats["barrier_wait_s"] / parallel_med, 4)
        if parallel_med else 0.0,
        "byte_identical": fps["serial"] == fps["parallel"],
        "kernel": {k: kernel_stats[k] for k in
                   ("procs", "barriers", "exchanges", "elided",
                    "arrivals", "completions", "bytes_sent",
                    "bytes_recv")},
        "digest": hashlib.sha256(digest_src.encode()).hexdigest(),
    }


#: Perf points that must run in the parent process under ``--jobs``:
#: they start their own worker pool (``parallel=True`` shard workers),
#: which a daemonic pool worker is forbidden to do.
_PARENT_ONLY = frozenset({"bench_shards"})


def _perf_tasks(scale: Scale) -> list[tuple]:
    """The microbenchmark plan as picklable ``(fn_name, kwargs)`` pairs."""
    small = scale.name == "smoke"
    run_scale = SMOKE if small else scale
    return [
        ("bench_kernel", {"events": 50_000 if small else 200_000}),
        ("bench_mpt", {"writes": 5_000 if small else 20_000}),
        ("bench_mbt", {"writes": 10_000 if small else 50_000}),
        ("bench_zipf", {"draws": 100_000 if small else 500_000}),
        ("bench_driver", {"scale": run_scale}),
        ("bench_fabric", {"scale": run_scale}),
        ("bench_scale", {"scale": run_scale}),
        ("bench_db", {"scale": run_scale}),
        ("bench_storage", {"scale": run_scale}),
        ("bench_isolation", {"scale": run_scale}),
        ("bench_openloop", {"scale": run_scale}),
        ("bench_chaos", {}),
        ("bench_shards", {"scale": run_scale}),
    ]


def _run_perf_task(task: tuple):
    name, kwargs = task[0], task[1]
    import repro.bench.perf as perf_mod
    fn = perf_mod.__dict__[name]
    profile_dir = task[2] if len(task) > 2 else None
    if profile_dir is None:
        return fn(**kwargs)
    import cProfile
    import io
    import pstats
    prof = cProfile.Profile()
    out = prof.runcall(fn, **kwargs)
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(25)
    point = name.removeprefix("bench_")
    path = Path(profile_dir) / f"PROF_{point}.txt"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buf.getvalue())
    return out


def run_perf(scale: Scale = BENCH, jobs: int = 1,
             profile_dir: str | None = None) -> dict:
    """Run every microbenchmark, scaled down for smoke runs.

    ``jobs > 1`` farms the benchmarks across a spawn-safe worker pool
    (same machinery as the figure-grid sweep); serial (``jobs=1``, the
    default) remains the budget-gate baseline, since co-scheduled
    workers contend for cores and inflate individual wall numbers.  The
    ``sim_tps``/``root``/``checksum``/``digest`` fingerprints are
    execution-order independent and must match between the two modes.
    Points in :data:`_PARENT_ONLY` (they spawn shard-worker pools of
    their own) always run in the parent, overlapped with the pool.

    ``profile_dir`` wraps every point in :mod:`cProfile` and writes a
    ``PROF_<point>.txt`` top-25-cumulative listing per point — the
    before/after attribution tool for barrier-wait and other hot-path
    work.  Profiled walls carry tracing overhead; don't compare them
    against unprofiled trajectory files.
    """
    tasks = [(name, kwargs, profile_dir)
             for name, kwargs in _perf_tasks(scale)]
    if jobs <= 1:
        outs = [_run_perf_task(t) for t in tasks]
    else:
        import multiprocessing as mp
        pool_idx = [i for i, t in enumerate(tasks)
                    if t[0] not in _PARENT_ONLY]
        parent_idx = [i for i, t in enumerate(tasks)
                      if t[0] in _PARENT_ONLY]
        ctx = mp.get_context("spawn")
        outs = [None] * len(tasks)
        with ctx.Pool(processes=jobs) as pool:
            async_res = pool.map_async(_run_perf_task,
                                       [tasks[i] for i in pool_idx],
                                       chunksize=1)
            for i in parent_idx:
                outs[i] = _run_perf_task(tasks[i])
            for i, out in zip(pool_idx, async_res.get()):
                outs[i] = out
    results: list[dict] = []
    for out in outs:
        results.extend(out if isinstance(out, list) else [out])
    return {
        "scale": scale.name,
        "total_wall_s": round(sum(r["wall_s"] for r in results), 3),
        "benchmarks": {r["name"]: r for r in results},
    }


def write_trajectory(report: dict, out_dir: str = ".") -> Path:
    """Persist a ``BENCH_<YYYY-MM-DD>.json`` trajectory file.

    Never clobbers an existing trajectory (two perf changes landing the
    same day must both leave their footprint): if the dated name is
    taken, a ``.N`` run counter is appended.
    """
    stamp = time.strftime("%Y-%m-%d")
    path = Path(out_dir) / f"BENCH_{stamp}.json"
    run = 0
    while path.exists():
        run += 1
        path = Path(out_dir) / f"BENCH_{stamp}.{run}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    report = dict(report)
    report["date"] = stamp
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_perf(report: dict) -> str:
    lines = [f"perf trajectory ({report['scale']} scale, "
             f"{report['total_wall_s']}s total wall)"]
    for name, r in report["benchmarks"].items():
        rate_key = next(k for k in ("events_per_s", "writes_per_s",
                                    "draws_per_s", "txns_per_s") if k in r)
        line = (f"  {name:8s} {r['wall_s']:>8.3f}s "
                f"{r[rate_key]:>12,d} {rate_key.replace('_per_s', '/s')}")
        if name == "mpt":
            line += (f"   (batched {r['speedup']}x vs per-write, "
                     f"{r['per_write']['hashes']} -> "
                     f"{r['batched']['hashes']} hashes)")
        if "sim_tps" in r:
            line += f"   (sim tps {r['sim_tps']:,.1f})"
        if name == "scale":
            line += f" [{r.get('clients', 0):,d} clients]"
        if name.startswith("storage-"):
            line += f" [{r.get('index', '?')}]"
        if name == "isolation":
            line += f" [rc speedup {r['speedup']}x]"
        if name == "openloop":
            line += (f" [{r['users']:,d} users, "
                     f"p99 {r['p99'] * 1e3:.2f}ms, "
                     f"digest {r['digest'][:12]}]")
        if name == "chaos":
            line += f" [digest {r['digest'][:12]}]"
        if name == "shards":
            line += (f" [{r['shards']} shards, speedup {r['speedup']}x, "
                     f"barrier wait {r['barrier_wait_fraction']:.0%}, "
                     f"digest {r['digest'][:12]}]")
        if r.get("wall_hit"):
            line += " [TRUNCATED: max_sim_time wall hit]"
        lines.append(line)
    return "\n".join(lines)
