"""Experiment harness: one-call runs of (system, workload, cluster) points.

Every figure/table reproduction in :mod:`repro.bench.experiments` is a
sweep over calls to :func:`run_point`.  A ``Scale`` bundles the knobs
that trade fidelity for wall-clock time: tests use ``SMOKE``, the bench
suite uses ``BENCH``, and ``PAPER`` approaches the paper's measurement
sizes (minutes of wall-clock per point).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.builder import build_system
from ..sim.kernel import Environment
from ..systems.base import SystemConfig
from ..workloads.driver import DriverConfig, RunResult, run_closed_loop
from ..workloads.smallbank import SmallbankConfig, SmallbankWorkload
from ..workloads.ycsb import YcsbConfig, YcsbWorkload

__all__ = ["Scale", "SMOKE", "BENCH", "PAPER", "run_point",
           "run_smallbank_point"]

#: Closed-loop client counts that saturate each system model.
DEFAULT_CLIENTS = {
    "etcd": 256, "tikv": 256, "tidb": 256, "quorum": 400, "fabric": 2000,
    "spanner": 256, "ahl": 512,
    "veritas": 256, "chainifydb": 256, "brd": 256, "bigchaindb": 512,
    "falcondb": 256, "blockchaindb": 2048,
}


@dataclass(frozen=True)
class Scale:
    """Measurement size (trading fidelity for wall-clock)."""

    name: str
    record_count: int
    warmup_txns: int
    measure_txns: int
    max_sim_time: float
    repeats: int = 1

    def derive(self, **kw) -> "Scale":
        return replace(self, **kw)


SMOKE = Scale("smoke", record_count=2_000, warmup_txns=50,
              measure_txns=300, max_sim_time=60.0)
BENCH = Scale("bench", record_count=10_000, warmup_txns=300,
              measure_txns=2_000, max_sim_time=180.0)
PAPER = Scale("paper", record_count=100_000, warmup_txns=1_000,
              measure_txns=10_000, max_sim_time=600.0, repeats=3)


def run_point(
    system: str,
    scale: Scale = BENCH,
    num_nodes: int = 5,
    record_size: int = 1000,
    theta: float = 0.0,
    ops_per_txn: int = 1,
    mode: str = "update",
    fix_total_size: bool = False,
    clients: Optional[int] = None,
    seed: int = 0,
    measure_txns: Optional[int] = None,
    system_kwargs: Optional[dict] = None,
    costs=None,
    extras: Optional[dict] = None,
) -> RunResult:
    """Run one YCSB measurement point and return its :class:`RunResult`.

    ``extras`` lands in ``SystemConfig.extras`` — e.g.
    ``extras={"index": "lsm+mpt"}`` swaps the system's storage engine,
    ``extras={"wal": True}`` enables the group-committed WAL.
    """
    env = Environment()
    if costs is not None:
        config = SystemConfig(num_nodes=num_nodes, seed=seed, costs=costs,
                              extras=extras or {})
    else:
        config = SystemConfig(num_nodes=num_nodes, seed=seed,
                              extras=extras or {})
    sys_obj = build_system(env, system, config, **(system_kwargs or {}))
    workload = YcsbWorkload(YcsbConfig(
        record_count=scale.record_count,
        record_size=record_size,
        ops_per_txn=ops_per_txn,
        theta=theta,
        fix_total_size=fix_total_size,
        seed=seed + 1,
    ))
    sys_obj.load(workload.initial_records())
    maker = {"update": workload.next_update,
             "query": workload.next_query,
             "rmw": workload.next_rmw}[mode]
    n_clients = clients if clients is not None \
        else DEFAULT_CLIENTS.get(system, 256)
    driver = DriverConfig(
        clients=n_clients,
        warmup_txns=scale.warmup_txns,
        measure_txns=measure_txns if measure_txns is not None
        else scale.measure_txns,
        max_sim_time=scale.max_sim_time,
        query_mode=(mode == "query"),
    )
    result = run_closed_loop(env, sys_obj, maker, driver)
    result.extras["system"] = sys_obj
    return result


def run_smallbank_point(
    system: str,
    scale: Scale = BENCH,
    num_nodes: int = 5,
    num_accounts: int = 100_000,
    theta: float = 1.0,
    clients: Optional[int] = None,
    seed: int = 0,
    system_kwargs: Optional[dict] = None,
) -> RunResult:
    """Run one Smallbank measurement point (Fig. 6)."""
    env = Environment()
    config = SystemConfig(num_nodes=num_nodes, seed=seed)
    sys_obj = build_system(env, system, config, **(system_kwargs or {}))
    workload = SmallbankWorkload(SmallbankConfig(
        num_accounts=num_accounts, theta=theta, seed=seed + 1))
    sys_obj.load(workload.initial_records())
    n_clients = clients if clients is not None \
        else DEFAULT_CLIENTS.get(system, 256)
    driver = DriverConfig(
        clients=n_clients,
        warmup_txns=scale.warmup_txns,
        measure_txns=scale.measure_txns,
        max_sim_time=scale.max_sim_time,
    )
    result = run_closed_loop(env, sys_obj, workload.next_transaction, driver)
    result.extras["system"] = sys_obj
    return result
