"""Experiment harness: one-call runs of (system, workload, cluster) points.

Every figure/table reproduction in :mod:`repro.bench.experiments` is a
sweep over calls to :func:`run_point`.  A ``Scale`` bundles the knobs
that trade fidelity for wall-clock time: tests use ``SMOKE``, the bench
suite uses ``BENCH``, and ``PAPER`` approaches the paper's measurement
sizes (minutes of wall-clock per point).

The grid is *declarative*: every figure enumerates its measurement
points as picklable :class:`PointSpec` records and folds the finished
:class:`PointResult` values back into its artifact dict, so the same
point tables drive the serial figure functions and the multiprocess
sweep runner in :mod:`repro.bench.sweep` — one enumeration, two
execution engines, byte-identical merged output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.builder import build_system
from ..sim.kernel import Environment
from ..systems.base import SystemConfig
from ..workloads.driver import DriverConfig, RunResult, run_closed_loop, \
    run_closed_loop_windowed
from ..workloads.smallbank import SmallbankConfig, SmallbankWorkload
from ..workloads.ycsb import YcsbConfig, YcsbWorkload

__all__ = ["Scale", "SMOKE", "BENCH", "PAPER", "run_point",
           "run_smallbank_point", "PointSpec", "PointResult", "run_spec"]

#: Closed-loop client counts that saturate each system model.
DEFAULT_CLIENTS = {
    "etcd": 256, "tikv": 256, "tidb": 256, "quorum": 400, "fabric": 2000,
    "spanner": 256, "ahl": 512,
    "veritas": 256, "chainifydb": 256, "brd": 256, "bigchaindb": 512,
    "falcondb": 256, "blockchaindb": 2048,
}


@dataclass(frozen=True)
class Scale:
    """Measurement size (trading fidelity for wall-clock)."""

    name: str
    record_count: int
    warmup_txns: int
    measure_txns: int
    max_sim_time: float
    repeats: int = 1

    def derive(self, **kw) -> "Scale":
        return replace(self, **kw)


SMOKE = Scale("smoke", record_count=2_000, warmup_txns=50,
              measure_txns=300, max_sim_time=60.0)
BENCH = Scale("bench", record_count=10_000, warmup_txns=300,
              measure_txns=2_000, max_sim_time=180.0)
PAPER = Scale("paper", record_count=100_000, warmup_txns=1_000,
              measure_txns=10_000, max_sim_time=600.0, repeats=3)


def _attach_history(result: RunResult, sys_obj) -> None:
    """Fold the run's anomaly report into picklable extras.

    Systems create a history checker iff the config carries an
    ``isolation`` key, so default runs skip this entirely and runs on
    the spectrum report what the chosen level admitted.
    """
    history = getattr(sys_obj, "history", None)
    if history is not None:
        report = history.check()
        result.extras["anomalies"] = dict(report.anomalies)
        result.extras["serializable_history"] = report.serializable


def run_point(
    system: str,
    scale: Scale = BENCH,
    num_nodes: int = 5,
    record_size: int = 1000,
    theta: float = 0.0,
    ops_per_txn: int = 1,
    mode: str = "update",
    fix_total_size: bool = False,
    clients: Optional[int] = None,
    seed: int = 0,
    measure_txns: Optional[int] = None,
    system_kwargs: Optional[dict] = None,
    costs=None,
    extras: Optional[dict] = None,
) -> RunResult:
    """Run one YCSB measurement point and return its :class:`RunResult`.

    ``extras`` lands in ``SystemConfig.extras`` — e.g.
    ``extras={"index": "lsm+mpt"}`` swaps the system's storage engine,
    ``extras={"wal": True}`` enables the group-committed WAL.
    """
    env = Environment()
    if costs is not None:
        config = SystemConfig(num_nodes=num_nodes, seed=seed, costs=costs,
                              extras=extras or {})
    else:
        config = SystemConfig(num_nodes=num_nodes, seed=seed,
                              extras=extras or {})
    sys_obj = build_system(env, system, config, **(system_kwargs or {}))
    workload = YcsbWorkload(YcsbConfig(
        record_count=scale.record_count,
        record_size=record_size,
        ops_per_txn=ops_per_txn,
        theta=theta,
        fix_total_size=fix_total_size,
        seed=seed + 1,
    ))
    sys_obj.load(workload.initial_records())
    maker = {"update": workload.next_update,
             "query": workload.next_query,
             "rmw": workload.next_rmw}[mode]
    n_clients = clients if clients is not None \
        else DEFAULT_CLIENTS.get(system, 256)
    driver = DriverConfig(
        clients=n_clients,
        warmup_txns=scale.warmup_txns,
        measure_txns=measure_txns if measure_txns is not None
        else scale.measure_txns,
        max_sim_time=scale.max_sim_time,
        query_mode=(mode == "query"),
    )
    coupler = getattr(sys_obj, "coupler", None)
    if coupler is not None:
        # Conservative-parallel build (e.g. ahl with parallel=True): the
        # shard pipelines live in worker processes, so the clock must
        # advance in lookahead windows with barriers around each.
        result = run_closed_loop_windowed(env, sys_obj, maker, coupler,
                                          driver)
    else:
        result = run_closed_loop(env, sys_obj, maker, driver)
    result.extras["system"] = sys_obj
    _attach_history(result, sys_obj)
    return result


def run_smallbank_point(
    system: str,
    scale: Scale = BENCH,
    num_nodes: int = 5,
    num_accounts: int = 100_000,
    theta: float = 1.0,
    query_proportion: float = 0.0,
    clients: Optional[int] = None,
    seed: int = 0,
    system_kwargs: Optional[dict] = None,
    extras: Optional[dict] = None,
) -> RunResult:
    """Run one Smallbank measurement point (Fig. 6).

    ``query_proportion`` mixes in read-only Balance transactions — the
    third leg of the classic snapshot-isolation read-only anomaly;
    ``extras`` lands in ``SystemConfig.extras`` (isolation level, engine
    choice, ...).
    """
    env = Environment()
    config = SystemConfig(num_nodes=num_nodes, seed=seed,
                          extras=extras or {})
    sys_obj = build_system(env, system, config, **(system_kwargs or {}))
    workload = SmallbankWorkload(SmallbankConfig(
        num_accounts=num_accounts, theta=theta,
        query_proportion=query_proportion, seed=seed + 1))
    sys_obj.load(workload.initial_records())
    n_clients = clients if clients is not None \
        else DEFAULT_CLIENTS.get(system, 256)
    driver = DriverConfig(
        clients=n_clients,
        warmup_txns=scale.warmup_txns,
        measure_txns=scale.measure_txns,
        max_sim_time=scale.max_sim_time,
    )
    result = run_closed_loop(env, sys_obj, workload.next_transaction, driver)
    result.extras["system"] = sys_obj
    _attach_history(result, sys_obj)
    return result


# ---------------------------------------------------------------------------
# Declarative sweep points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PointSpec:
    """One measurement point of the figure grid, as picklable data.

    A spec is everything a worker process needs to reproduce the exact
    ``run_point`` / ``run_smallbank_point`` / inline-artifact call the
    serial figure function makes: the runner kind, the system, the
    :class:`Scale`, and the keyword arguments (``params``) in canonical
    ``(name, value)`` pair form.  ``figure``/``key`` locate the result in
    the assembled artifact dict; ``weight`` is a relative wall-cost
    estimate used for longest-job-first scheduling.  ``no_fork`` marks a
    point that must run in the sweep's parent process — set for points
    that spawn shard-worker processes themselves (``parallel=True``
    builds), which a daemonic ``--jobs`` pool worker cannot host.
    """

    figure: str
    key: tuple
    runner: str = "ycsb"       # "ycsb" | "smallbank" | "inline" | "chaos"
    system: str = ""
    scale: Optional[Scale] = None
    params: tuple = ()         # ((name, value), ...) runner kwargs
    fn: str = ""               # inline runner: experiments.<fn> to call
    weight: float = 1.0
    no_fork: bool = False      # run in the sweep parent, never a pool worker

    def kwargs(self) -> dict:
        return dict(self.params)

    @property
    def label(self) -> str:
        bits = "/".join(str(k) for k in self.key)
        return f"{self.figure}:{bits}" if bits else self.figure


@dataclass
class PointResult:
    """Picklable outcome of one executed :class:`PointSpec`.

    Carries every field the figure assemblers read (so the live
    ``RunResult`` — whose ``extras['system']`` holds the unpicklable
    simulated cluster — never crosses a process boundary) plus the
    seeded-fingerprint projection used by the sweep verifier.
    """

    figure: str
    key: tuple
    wall_s: float = 0.0
    tps: float = 0.0
    measured: int = 0
    elapsed: float = 0.0
    timeouts: int = 0
    committed: int = 0
    aborted: int = 0
    abort_rate: float = 0.0
    mean_latency: float = 0.0
    abort_reasons: dict = field(default_factory=dict)
    phase_means: dict = field(default_factory=dict)
    payload: dict = field(default_factory=dict)   # inline/chaos output

    @property
    def fingerprint(self) -> dict:
        """The exact projection the seeded fingerprint registry pins."""
        return {"tps": repr(self.tps), "measured": self.measured,
                "latency": repr(self.mean_latency), "aborted": self.aborted}


def _reset_run_counters() -> None:
    """Zero the process-global id counters before a point runs.

    Message and transaction ids are identity-only (no simulation
    semantics), but resetting them per point makes every point's id
    sequence independent of which points ran earlier in the process —
    the property that lets a sweep farm points to workers in any order
    and still merge a trajectory byte-identical to a serial run.
    """
    from ..sim import network
    from ..txn import transaction
    network._msg_counter = itertools.count()
    transaction._txn_counter = itertools.count(1)


def _portable_result(spec: PointSpec, result: RunResult,
                     wall_s: float) -> PointResult:
    payload: dict = {}
    if "anomalies" in result.extras:
        payload["anomalies"] = result.extras["anomalies"]
        payload["serializable_history"] = \
            result.extras["serializable_history"]
    if result.extras.get("wall_hit"):
        # Truncated by the max_sim_time wall: surfaced so an undersized
        # point can't masquerade as a full measurement downstream.
        payload["wall_hit"] = True
    return PointResult(
        figure=spec.figure, key=spec.key, wall_s=round(wall_s, 4),
        tps=result.tps, measured=result.measured, elapsed=result.elapsed,
        timeouts=result.timeouts, committed=result.stats.committed,
        aborted=result.stats.aborted, abort_rate=result.abort_rate,
        mean_latency=result.stats.latency.mean,
        abort_reasons=dict(result.stats.abort_reasons),
        phase_means=result.phase_means(),
        payload=payload)


def run_spec(spec: PointSpec) -> PointResult:
    """Execute one :class:`PointSpec` and return its portable result.

    This is the unit of work a sweep worker runs; the serial figure
    functions call it too, so both engines execute the identical
    harness-call sequence per point.
    """
    import time
    _reset_run_counters()
    start = time.perf_counter()
    if spec.runner == "ycsb":
        result = run_point(spec.system, scale=spec.scale, **spec.kwargs())
        return _portable_result(spec, result, time.perf_counter() - start)
    if spec.runner == "smallbank":
        result = run_smallbank_point(spec.system, scale=spec.scale,
                                     **spec.kwargs())
        return _portable_result(spec, result, time.perf_counter() - start)
    if spec.runner == "inline":
        from . import experiments
        payload = getattr(experiments, spec.fn)(**spec.kwargs())
        return PointResult(figure=spec.figure, key=spec.key,
                           wall_s=round(time.perf_counter() - start, 4),
                           payload=payload)
    if spec.runner == "chaos":
        from .fingerprints import run_chaos_spec
        return run_chaos_spec(spec, start)
    raise ValueError(f"unknown runner {spec.runner!r}")
