"""Seeded fingerprint registry: the repo's byte-identity equivalence gate.

One module owns every pinned expectation:

* :data:`FINGERPRINTS` — 27 seeded ``RunResult`` projections (SMOKE
  scale, exact float reprs) across every consensus substrate, Table 2
  storage engine, and weakened isolation level.  ``tests/integration/test_run_fingerprints.py``
  asserts them one by one; the multiprocess sweep runner
  (:mod:`repro.bench.sweep`) re-checks any point it executes whose
  canonical identity matches an entry.
* :data:`CHAOS_SCENARIOS` / :data:`CHAOS_DIGESTS` — the three seeded
  chaos runs and their pinned :meth:`ChaosResult.digest` values
  (``tests/chaos/test_chaos_fingerprints.py`` checks repeat-determinism;
  the digests pinned here add cross-run byte-identity).
* :func:`fingerprint_specs` — the registry re-expressed as
  :class:`~repro.bench.harness.PointSpec` records, so
  ``python -m repro.bench --sweep`` runs the whole gate as one more
  figure ("fingerprints") of the grid.
* :func:`expected_for_spec` — canonical matching from an arbitrary spec
  back to its pinned expectation, if one exists.

A mismatch means simulation *semantics* drifted — event ordering, batch
boundaries, or timer behaviour — not just wall-clock performance.
"""

from __future__ import annotations

from typing import Optional

from .harness import SMOKE, PointResult, PointSpec

__all__ = ["FINGERPRINTS", "CHAOS_SCENARIOS", "CHAOS_DIGESTS",
           "fingerprint_specs", "expected_for_spec", "run_chaos_spec",
           "verify_point"]

#: (system, run_point overrides) -> exact reprs of the seeded RunResult.
#: Overrides may carry a ``seed`` key (default 11).
FINGERPRINTS = {
    "etcd": (
        dict(),
        {"tps": "14886.968050392341", "measured": 300,
         "latency": "0.003593996233866099", "aborted": 0},
    ),
    "etcd-seed23": (
        dict(seed=23),
        {"tps": "15086.19410627888", "measured": 300,
         "latency": "0.0034337363636792926", "aborted": 0},
    ),
    "tikv": (
        dict(),
        {"tps": "13368.568083358427", "measured": 300,
         "latency": "0.003680662781707489", "aborted": 0},
    ),
    "tikv-seed23": (
        dict(seed=23),
        {"tps": "13228.654035761656", "measured": 300,
         "latency": "0.003683198564910847", "aborted": 0},
    ),
    "quorum": (
        dict(),
        {"tps": "211.07009842368518", "measured": 300,
         "latency": "1.2094360582458945", "aborted": 0},
    ),
    "quorum-ibft": (
        dict(system_kwargs={"consensus": "ibft"}),
        {"tps": "203.58120437878924", "measured": 300,
         "latency": "1.2750026434150334", "aborted": 0},
    ),
    "fabric": (
        dict(),
        {"tps": "1131.4258880742786", "measured": 300,
         "latency": "0.1935465040231532", "aborted": 0},
    ),
    "tidb-skew": (
        dict(theta=0.9, ops_per_txn=2),
        {"tps": "140.44655946251711", "measured": 300,
         "latency": "0.07854862944570291", "aborted": 38},
    ),
    "tidb-skew-seed23": (
        dict(theta=0.9, ops_per_txn=2, seed=23),
        {"tps": "182.64467607020674", "measured": 300,
         "latency": "0.0942598491757825", "aborted": 39},
    ),
    # Spanner: 2 ops/txn so the cross-shard 2PC countdown chain (parallel
    # prepare fan-out -> decision round -> commit fan-out) is exercised,
    # not just the single-shard Paxos write.
    "spanner": (
        dict(num_nodes=6, ops_per_txn=2),
        {"tps": "9407.547763374374", "measured": 300,
         "latency": "0.011013308506666653", "aborted": 0},
    ),
    "spanner-seed23": (
        dict(num_nodes=6, ops_per_txn=2, seed=23),
        {"tps": "9451.093113429522", "measured": 300,
         "latency": "0.010821730319999985", "aborted": 0},
    ),
    "veritas": (
        dict(),
        {"tps": "17238.46382539664", "measured": 300,
         "latency": "0.003157095126561496", "aborted": 0},
    ),
    "bigchaindb": (
        dict(),
        {"tps": "1111.1111111110963", "measured": 300,
         "latency": "0.27375982632021884", "aborted": 0},
    ),
    # Tendermint idle-skip mode (skip_empty_blocks=True) is outcome-
    # changing by design, so it carries its own fingerprint rather than
    # matching the flag-off point above.
    "bigchaindb-idleskip": (
        dict(system_kwargs={"spec": {"skip_empty_blocks": True}}),
        {"tps": "1111.1111111110963", "measured": 300,
         "latency": "0.27394187432021866", "aborted": 0},
    ),
    # ---- storage-engine points (PR 5) ----------------------------------
    # Together with the defaults above, every Table 2 IndexKind carries a
    # seeded fingerprint: LSM (quorum-lsm; also tikv's default engine),
    # BTREE (etcd's default), SKIP_LIST (veritas' profile engine),
    # LSM_MPT (quorum-mpt), LSM_MBT (fabric-mbt), BTREE_MERKLE
    # (falcondb).  The quorum pair is the Fig. 12 ablation: the
    # authenticated MPT point is measurably slower than plain LSM, the
    # gap charged from the engine's measured hashes_computed deltas.
    "quorum-lsm": (
        dict(extras={"index": "lsm"}),
        {"tps": "253.2335638216496", "measured": 300,
         "latency": "1.1846167143957715", "aborted": 0},
    ),
    "quorum-mpt": (
        dict(extras={"index": "lsm+mpt"}),
        {"tps": "248.3648000661745", "measured": 300,
         "latency": "1.2122787892757716", "aborted": 0},
    ),
    "fabric-mbt": (
        dict(extras={"index": "lsm+mbt"}),
        {"tps": "1042.4101946938674", "measured": 300,
         "latency": "0.21218548258315303", "aborted": 0},
    ),
    # FalconDB hybrid: Tendermint backend + B-tree+Merkle overlay engine
    # built straight from its Table 2 profile row.
    "falcondb": (
        dict(),
        {"tps": "2140.6985989574905", "measured": 300,
         "latency": "0.0866140615719453", "aborted": 0},
    ),
    # Group-committed WAL on the DB-side apply path (extras["wal"]).
    "etcd-wal": (
        dict(extras={"wal": True}),
        {"tps": "8264.462809917415", "measured": 300,
         "latency": "0.008071964502307342", "aborted": 0},
    ),
    # ---- isolation-spectrum points (PR 8) ------------------------------
    # Every (system, weakened level) pair on the extras["isolation"] axis
    # carries a seeded pin at the isolation_ablation table's YCSB-rmw
    # parameters, so the in-sweep verifier covers the weak paths too.
    # (isolation="serializable" intentionally has no pin of its own: it
    # must match the default-path pins above byte for byte, which
    # tests/integration/test_isolation.py asserts.)
    "etcd-si": (
        dict(mode="rmw", theta=0.9,
             extras={"isolation": "snapshot"}),
        {"tps": "12040.095468072677", "measured": 300,
         "latency": "0.0034469891348268273", "aborted": 59},
    ),
    "etcd-rc": (
        dict(mode="rmw", theta=0.9,
             extras={"isolation": "read_committed"}),
        {"tps": "14987.67070714441", "measured": 300,
         "latency": "0.0034103279913458295", "aborted": 0},
    ),
    "tikv-si": (
        dict(mode="rmw", theta=0.9,
             extras={"isolation": "snapshot"}),
        {"tps": "13089.889260800555", "measured": 300,
         "latency": "0.003046512534484722", "aborted": 79},
    ),
    "tikv-rc": (
        dict(mode="rmw", theta=0.9,
             extras={"isolation": "read_committed"}),
        {"tps": "13209.891620025905", "measured": 300,
         "latency": "0.003610046163394784", "aborted": 0},
    ),
    "tidb-si": (
        dict(mode="rmw", theta=0.9, ops_per_txn=2,
             extras={"isolation": "snapshot"}),
        {"tps": "116.00953006264842", "measured": 300,
         "latency": "0.10855532476712548", "aborted": 25},
    ),
    "tidb-rc": (
        dict(mode="rmw", theta=0.9, ops_per_txn=2,
             extras={"isolation": "read_committed"}),
        {"tps": "2610.6368714092337", "measured": 300,
         "latency": "0.026763187307412954", "aborted": 0},
    ),
    "quorum-si": (
        dict(mode="rmw", theta=0.9,
             extras={"isolation": "snapshot"}),
        {"tps": "626.6230655081155", "measured": 300,
         "latency": "0.32192393101337247", "aborted": 99},
    ),
    "quorum-rc": (
        dict(mode="rmw", theta=0.9,
             extras={"isolation": "read_committed"}),
        {"tps": "935.2583067285306", "measured": 300,
         "latency": "0.2989892643560763", "aborted": 0},
    ),
}


def _chaos_scenarios() -> dict:
    """The three seeded chaos runs (built lazily; Scenario is heavy)."""
    from ..chaos import (Censor, CrashRestart, GrayNode, LeaderChurn,
                         Partition, Scenario)
    return {
        "etcd-storm": dict(
            system="etcd",
            scenario=Scenario(
                name="etcd-storm",
                steps=(
                    Partition(at=1.0, group_a=("etcd1",),
                              group_b=("etcd0", "etcd2", "etcd3", "etcd4"),
                              until=2.5),
                    GrayNode(at=3.0, node="etcd2", extra_delay=0.002,
                             drop_rate=0.05, until=4.0),
                    CrashRestart(at=4.5, node="etcd0", restart_at=5.5),
                ),
                settle=2.5),
            kwargs=dict(extras={"wal": True})),
        "etcd-churn": dict(
            system="etcd",
            scenario=Scenario(
                name="etcd-churn",
                steps=(LeaderChurn(at=1.0, until=5.0, period=2.0,
                                   downtime=0.5),),
                settle=3.0),
            kwargs=dict(extras={"wal": True})),
        "quorum-censor": dict(
            system="quorum",
            scenario=Scenario(
                name="quorum-censor",
                steps=(Censor(at=1.0, match="", until=4.0),),
                settle=4.0),
            kwargs=dict(system_kwargs={"consensus": "ibft"})),
    }


class _LazyScenarios(dict):
    """Mapping facade that builds the Scenario objects on first access."""

    _filled = False

    def _fill(self):
        if not self._filled:
            self._filled = True
            super().update(_chaos_scenarios())

    def __getitem__(self, key):
        self._fill()
        return super().__getitem__(key)

    def __iter__(self):
        self._fill()
        return super().__iter__()

    def __len__(self):
        self._fill()
        return super().__len__()

    def keys(self):
        self._fill()
        return super().keys()

    def items(self):
        self._fill()
        return super().items()


CHAOS_SCENARIOS = _LazyScenarios()

#: Pinned ChaosResult.digest() per seeded scenario (seed 11).  The chaos
#: test suite checks same-process repeat determinism; these pins extend
#: the gate to byte-identity across processes and PRs.
CHAOS_DIGESTS = {
    "etcd-churn":
        "4f9b9d230d9582bdcadb34adc63fcef0593f9cdfbe1672384123712153bb01f8",
    "etcd-storm":
        "08d0a562eee56e42ab778a768050076f2cde27b5d36b9c5d4d34187a6df21ed5",
    "quorum-censor":
        "4e265097f0e3b8ac3f9f10cf8d17661086ddeb2c21c026aa0cb2069f105b6bc9",
}

#: run_point keyword defaults, for canonicalising a spec's overrides.
_RUN_POINT_DEFAULTS = {
    "num_nodes": 5, "record_size": 1000, "theta": 0.0, "ops_per_txn": 1,
    "mode": "update", "fix_total_size": False, "clients": None,
    "measure_txns": None, "system_kwargs": None, "costs": None,
    "extras": None,
}


def _freeze(value):
    """Recursively hashable form of a kwargs value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _canonical_key(system: str, seed: int, overrides: dict):
    kwargs = dict(_RUN_POINT_DEFAULTS)
    kwargs.update(overrides)
    return (system, seed,
            tuple(sorted((k, _freeze(v)) for k, v in kwargs.items())))


def _registry_by_key() -> dict:
    table = {}
    for point, (overrides, expected) in FINGERPRINTS.items():
        overrides = dict(overrides)
        seed = overrides.pop("seed", 11)
        system = point.split("-")[0]
        table[_canonical_key(system, seed, overrides)] = (point, expected)
    return table


_BY_KEY = None


def expected_for_spec(spec: PointSpec) -> Optional[tuple]:
    """Return ``(name, expectation)`` if a pin covers this spec.

    YCSB specs at SMOKE scale are canonicalised (overrides folded over
    ``run_point`` defaults) and looked up against the 27 seeded
    ``RunResult`` projections; chaos specs resolve by scenario name to a
    pinned digest.  Everything else — other scales, other seeds — has no
    pin and returns ``None``.
    """
    global _BY_KEY
    if spec.runner == "chaos":
        name = dict(spec.params).get("name", "")
        digest = CHAOS_DIGESTS.get(name)
        return (name, {"digest": digest}) if digest else None
    if spec.runner != "ycsb" or spec.scale is None \
            or spec.scale != SMOKE:
        return None
    if _BY_KEY is None:
        _BY_KEY = _registry_by_key()
    overrides = spec.kwargs()
    seed = overrides.pop("seed", 0)
    return _BY_KEY.get(_canonical_key(spec.system, seed, overrides))


def verify_point(spec: PointSpec, result: PointResult) -> Optional[str]:
    """Check a finished point against its pin, if any.

    Returns ``None`` when the point has no pin or matches it, else a
    human-readable mismatch description (the sweep turns any non-None
    into a hard failure).
    """
    pin = expected_for_spec(spec)
    if pin is None:
        return None
    name, expected = pin
    if "digest" in expected:
        observed = result.payload.get("digest")
        if observed != expected["digest"]:
            return (f"chaos digest drifted for {name}: "
                    f"{observed} != {expected['digest']}")
        return None
    if result.fingerprint != expected:
        return (f"seeded RunResult drifted for {name}: "
                f"{result.fingerprint} != {expected}")
    return None


def fingerprint_specs() -> list[PointSpec]:
    """The whole registry as one sweep figure ("fingerprints")."""
    specs = []
    for point in sorted(FINGERPRINTS):
        overrides, _expected = FINGERPRINTS[point]
        overrides = dict(overrides)
        seed = overrides.pop("seed", 11)
        system = point.split("-")[0]
        params = tuple(sorted(overrides.items())) + (("seed", seed),)
        specs.append(PointSpec(
            figure="fingerprints", key=(point,), system=system,
            scale=SMOKE, params=params, weight=0.5))
    for name in sorted(CHAOS_DIGESTS):
        specs.append(PointSpec(
            figure="fingerprints", key=(name,), runner="chaos",
            params=(("name", name), ("seed", 11)), weight=1.5))
    return specs


def fingerprints_assemble(results: dict) -> dict:
    """Fold the registry runs into a pass/fail artifact."""
    observed = {}
    for (point,), res in results.items():
        observed[point] = (res.payload.get("digest")
                           if res.payload else res.fingerprint)
    return {"id": "fingerprints", "observed": observed}


def run_chaos_spec(spec: PointSpec, start: float) -> PointResult:
    """Execute a chaos PointSpec (the ``runner == "chaos"`` arm)."""
    import time

    from ..chaos import run_chaos_point
    params = dict(spec.params)
    entry = CHAOS_SCENARIOS[params["name"]]
    res = run_chaos_point(entry["system"], entry["scenario"],
                          seed=params.get("seed", 11), **entry["kwargs"])
    run = res.run
    return PointResult(
        figure=spec.figure, key=spec.key,
        wall_s=round(time.perf_counter() - start, 4),
        tps=run.tps, measured=run.measured, elapsed=run.elapsed,
        timeouts=run.timeouts, committed=run.stats.committed,
        aborted=run.stats.aborted, abort_rate=run.abort_rate,
        mean_latency=run.stats.latency.mean,
        abort_reasons=dict(run.stats.abort_reasons),
        payload={"digest": res.digest(), "ok": res.ok,
                 "violations": list(res.violations)})
