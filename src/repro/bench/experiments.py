"""One function per paper artifact: Figures 4-15 and Tables 4-5.

Each function runs the sweep behind one figure/table and returns a
structured dict with the measured series plus ``paper`` — the values the
paper reports — so callers (benchmarks, EXPERIMENTS.md generation) can
compare shapes.  Pass ``scale=SMOKE`` for quick runs, ``BENCH`` for the
default benchmark fidelity.

Every figure is split into a declarative half and a fold: ``*_points``
enumerates the figure's measurements as picklable
:class:`~repro.bench.harness.PointSpec` records, and ``*_assemble``
folds the finished :class:`~repro.bench.harness.PointResult` values into
the artifact dict.  The serial functions below run the points in
enumeration order in-process; the multiprocess sweep runner
(:mod:`repro.bench.sweep`) farms the same specs across workers and calls
the same assemblers, so the two paths merge byte-identical artifacts.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

from ..adt.mbt import MerkleBucketTree
from ..adt.mpt import MerklePatriciaTrie
from ..core.forecast import (REPORTED_THROUGHPUT, forecast, rank)
from ..core.taxonomy import TABLE2
from ..txn.ledger import envelope_size
from ..txn.transaction import Transaction
from .harness import BENCH, PointSpec, Scale, run_point, run_smallbank_point, \
    run_spec

__all__ = [
    "fig4_peak_throughput", "fig5_latency", "fig6_smallbank",
    "fig7_cft_vs_bft", "fig8_latency_breakdown", "tab4_scaling",
    "tab5_tidb_matrix", "fig9_skew", "fig10_opcount", "fig11_record_size",
    "fig12_storage", "fig13_ads_overhead", "fig14_sharding",
    "fig14_scaling_sweep", "fig15_hybrid_forecast", "isolation_ablation",
    "openloop_knee", "POINT_TABLES",
]

FOUR_SYSTEMS = ("fabric", "quorum", "tidb", "etcd")
FIVE_SYSTEMS = FOUR_SYSTEMS + ("tikv",)

#: Relative wall cost of one closed-loop point per system (longest-job-
#: first scheduling hint; measured BENCH-scale magnitudes, not a gate).
_SYSTEM_WEIGHT = {
    "fabric": 5.0, "quorum": 2.5, "tidb": 3.5, "etcd": 1.0, "tikv": 1.3,
    "spanner": 1.6, "ahl": 2.5, "veritas": 1.0, "chainifydb": 1.5,
    "brd": 1.5, "bigchaindb": 2.0, "falcondb": 2.0, "blockchaindb": 3.0,
}


def _weight(system: str, scale: Scale, measure_txns: Optional[int] = None,
            ops_per_txn: int = 1, num_nodes: int = 5) -> float:
    txns = measure_txns if measure_txns is not None else scale.measure_txns
    return (_SYSTEM_WEIGHT.get(system, 1.5)
            * (txns / max(1, scale.measure_txns))
            * (0.5 + 0.5 * ops_per_txn)
            * (num_nodes / 5) ** 0.5)


def _run_serial(specs: list[PointSpec]) -> dict:
    """Run specs in enumeration order in-process (the serial engine)."""
    return {spec.key: run_spec(spec) for spec in specs}


# ---------------------------------------------------------------------------
# Figure 4: peak YCSB throughput (update and query), 5 systems, log scale
# ---------------------------------------------------------------------------

_FIG4_PAPER = {
    "update": {"fabric": 1294, "quorum": 245, "tidb": 5159,
               "etcd": 16781, "tikv": 13507},
    "query": {"fabric": 23809, "quorum": 19166, "tidb": 87933,
              "etcd": 282192, "tikv": 94050},
}


def fig4_points(scale: Scale = BENCH,
                systems: tuple = FIVE_SYSTEMS) -> list[PointSpec]:
    specs = []
    for mode in ("update", "query"):
        for system in systems:
            measure = scale.measure_txns * 3 if mode == "query" else None
            specs.append(PointSpec(
                figure="fig4", key=(mode, system), system=system,
                scale=scale,
                params=(("mode", mode), ("measure_txns", measure)),
                weight=_weight(system, scale, measure) * (
                    0.4 if mode == "query" else 1.0)))
    return specs


def fig4_assemble(results: dict) -> dict:
    measured = {"update": {}, "query": {}}
    for (mode, system), res in results.items():
        measured[mode][system] = res.tps
    return {"id": "fig4", "measured": measured, "paper": _FIG4_PAPER}


def fig4_peak_throughput(scale: Scale = BENCH,
                         systems: tuple = FIVE_SYSTEMS) -> dict:
    return fig4_assemble(_run_serial(fig4_points(scale, systems)))


# ---------------------------------------------------------------------------
# Figure 5: unsaturated latency (update and query)
# ---------------------------------------------------------------------------

_FIG5_PAPER_MS = {
    "update": {"fabric": 3500, "quorum": 500, "tidb": 100,
               "etcd": 100, "tikv": 100},
    "query": {"fabric": 9, "quorum": 4, "tidb": 1,
              "etcd": 1, "tikv": 1},
}


def fig5_points(scale: Scale = BENCH,
                systems: tuple = FIVE_SYSTEMS) -> list[PointSpec]:
    specs = []
    for mode in ("update", "query"):
        for system in systems:
            measure = max(100, scale.measure_txns // 10)
            # unsaturated: a handful of closed-loop clients
            specs.append(PointSpec(
                figure="fig5", key=(mode, system), system=system,
                scale=scale,
                params=(("mode", mode), ("clients", 4),
                        ("measure_txns", measure)),
                weight=_weight(system, scale, measure)))
    return specs


def fig5_assemble(results: dict) -> dict:
    measured = {"update": {}, "query": {}}
    for (mode, system), res in results.items():
        measured[mode][system] = res.mean_latency * 1000.0
    return {"id": "fig5", "measured_ms": measured, "paper_ms": _FIG5_PAPER_MS}


def fig5_latency(scale: Scale = BENCH,
                 systems: tuple = FIVE_SYSTEMS) -> dict:
    return fig5_assemble(_run_serial(fig5_points(scale, systems)))


# ---------------------------------------------------------------------------
# Figure 6: Smallbank throughput (skewed, theta=1)
# ---------------------------------------------------------------------------

_FIG6_PAPER = {"fabric": 835, "quorum": 655, "tidb": 1031}


def fig6_points(scale: Scale = BENCH,
                num_accounts: Optional[int] = None) -> list[PointSpec]:
    accounts = num_accounts if num_accounts is not None \
        else max(scale.record_count * 5, 10_000)
    return [PointSpec(figure="fig6", key=(system,), runner="smallbank",
                      system=system, scale=scale,
                      params=(("num_accounts", accounts),),
                      weight=_weight(system, scale))
            for system in ("fabric", "quorum", "tidb")]


def fig6_assemble(results: dict) -> dict:
    measured = {system: res.tps for (system,), res in results.items()}
    return {"id": "fig6", "measured": measured, "paper": _FIG6_PAPER}


def fig6_smallbank(scale: Scale = BENCH,
                   num_accounts: Optional[int] = None) -> dict:
    return fig6_assemble(_run_serial(fig6_points(scale, num_accounts)))


# ---------------------------------------------------------------------------
# Figure 7: Quorum Raft (CFT) vs IBFT (BFT) vs tolerated failures
# ---------------------------------------------------------------------------

def fig7_points(scale: Scale = BENCH,
                failures: tuple = (1, 2, 3, 4, 5, 6),
                seeds: tuple = (0, 1, 2)) -> list[PointSpec]:
    specs = []
    for f in failures:
        for protocol, nodes in (("raft", 2 * f + 1), ("ibft", 3 * f + 1)):
            for seed in seeds:
                measure = max(200, scale.measure_txns // 2)
                specs.append(PointSpec(
                    figure="fig7", key=(protocol, f, seed), system="quorum",
                    scale=scale,
                    params=(("num_nodes", nodes), ("seed", seed),
                            ("measure_txns", measure),
                            ("system_kwargs", {"consensus": protocol})),
                    weight=_weight("quorum", scale, measure,
                                   num_nodes=nodes)))
    return specs


def fig7_assemble(results: dict) -> dict:
    measured: dict = {"raft": {}, "ibft": {}}
    samples: dict = {}
    for (protocol, f, _seed), res in results.items():
        samples.setdefault((protocol, f), []).append(res.tps)
    for (protocol, f), vals in samples.items():
        mean = sum(vals) / len(vals)
        var = sum((s - mean) ** 2 for s in vals) / len(vals)
        measured[protocol][f] = {"mean": mean, "std": var ** 0.5,
                                 "samples": vals}
    return {"id": "fig7", "measured": measured,
            "paper": {"note": "both protocols flat at ~230-380 tps; "
                              "IBFT variance grows with f"}}


def fig7_cft_vs_bft(scale: Scale = BENCH,
                    failures: tuple = (1, 2, 3, 4, 5, 6),
                    seeds: tuple = (0, 1, 2)) -> dict:
    return fig7_assemble(_run_serial(fig7_points(scale, failures, seeds)))


# ---------------------------------------------------------------------------
# Figure 8: latency breakdown (Fabric phases; TiDB query costs)
# ---------------------------------------------------------------------------

def fig8_points(scale: Scale = BENCH) -> list[PointSpec]:
    trickle = max(100, scale.measure_txns // 10)
    return [
        # Fabric update, unsaturated vs saturated
        PointSpec(figure="fig8", key=("unsat",), system="fabric", scale=scale,
                  params=(("clients", 8), ("measure_txns", trickle)),
                  weight=_weight("fabric", scale, trickle)),
        PointSpec(figure="fig8", key=("sat",), system="fabric", scale=scale,
                  weight=_weight("fabric", scale)),
        # Query breakdowns
        PointSpec(figure="fig8", key=("fabric_query",), system="fabric",
                  scale=scale,
                  params=(("mode", "query"), ("clients", 8),
                          ("measure_txns", trickle)),
                  weight=_weight("fabric", scale, trickle)),
        PointSpec(figure="fig8", key=("tidb_query",), system="tidb",
                  scale=scale,
                  params=(("mode", "query"), ("clients", 8),
                          ("measure_txns", trickle)),
                  weight=_weight("tidb", scale, trickle)),
    ]


def fig8_assemble(results: dict) -> dict:
    out = {"id": "fig8", "paper": {
        "fabric_unsaturated_ms": {"execute": 500, "order": 700,
                                  "validate": 700},
        "fabric_query_us": {"authentication": 4294, "simulation": 406,
                            "endorsement": 59},
        "tidb_query_us": {"sql-parse": 16, "sql-compile": 15,
                          "storage-get": 275},
    }}
    out["fabric_unsaturated_ms"] = {
        k: v * 1000 for k, v in results[("unsat",)].phase_means.items()}
    out["fabric_saturated_ms"] = {
        k: v * 1000 for k, v in results[("sat",)].phase_means.items()}
    out["fabric_query_us"] = {
        k: v * 1e6 for k, v in results[("fabric_query",)].phase_means.items()}
    out["tidb_query_us"] = {
        k: v * 1e6 for k, v in results[("tidb_query",)].phase_means.items()}
    return out


def fig8_latency_breakdown(scale: Scale = BENCH) -> dict:
    return fig8_assemble(_run_serial(fig8_points(scale)))


# ---------------------------------------------------------------------------
# Table 4: throughput vs number of nodes (full replication)
# ---------------------------------------------------------------------------

_TAB4_PAPER = {
    "fabric": {3: 1560, 7: 1288, 11: 1031, 15: 749, 19: 528},
    "quorum": {3: 237, 7: 236, 11: 229, 15: 217, 19: 219},
    "tidb": {3: 5697, 7: 7884, 11: 7544, 15: 6239, 19: 5526},
    "etcd": {3: 19282, 7: 16453, 11: 11243, 15: 7801, 19: 6076},
}


def tab4_points(scale: Scale = BENCH,
                node_counts: tuple = (3, 7, 11, 15, 19),
                systems: tuple = FOUR_SYSTEMS) -> list[PointSpec]:
    return [PointSpec(figure="tab4", key=(system, n), system=system,
                      scale=scale, params=(("num_nodes", n),),
                      weight=_weight(system, scale, num_nodes=n))
            for system in systems for n in node_counts]


def tab4_assemble(results: dict) -> dict:
    measured: dict = {}
    for (system, n), res in results.items():
        measured.setdefault(system, {})[n] = res.tps
    return {"id": "tab4", "measured": measured, "paper": _TAB4_PAPER}


def tab4_scaling(scale: Scale = BENCH,
                 node_counts: tuple = (3, 7, 11, 15, 19),
                 systems: tuple = FOUR_SYSTEMS) -> dict:
    return tab4_assemble(_run_serial(tab4_points(scale, node_counts,
                                                 systems)))


# ---------------------------------------------------------------------------
# Table 5: TiDB servers x TiKV nodes matrix
# ---------------------------------------------------------------------------

_TAB5_PAPER = {
    3: {3: 5697, 7: 8517, 11: 9116, 15: 8838, 19: 8690},
    7: {3: 5951, 7: 7884, 11: 8539, 15: 8162, 19: 8246},
    11: {3: 5847, 7: 6871, 11: 7544, 15: 6941, 19: 7429},
    15: {3: 5121, 7: 5703, 11: 6306, 15: 6239, 19: 5618},
    19: {3: 4198, 7: 5238, 11: 5477, 15: 5563, 19: 5526},
}


def tab5_points(scale: Scale = BENCH,
                tidb_counts: tuple = (3, 7, 11, 15, 19),
                tikv_counts: tuple = (3, 7, 11, 15, 19)) -> list[PointSpec]:
    specs = []
    for tidb_n in tidb_counts:
        for tikv_n in tikv_counts:
            nodes = max(tidb_n, tikv_n)
            specs.append(PointSpec(
                figure="tab5", key=(tidb_n, tikv_n), system="tidb",
                scale=scale,
                params=(("num_nodes", nodes),
                        ("clients", 64 * max(1, tidb_n // 3)),
                        ("system_kwargs", {"tidb_servers": tidb_n,
                                           "tikv_nodes": tikv_n})),
                weight=_weight("tidb", scale, num_nodes=nodes)))
    return specs


def tab5_assemble(results: dict) -> dict:
    measured: dict = {}
    for (tidb_n, tikv_n), res in results.items():
        measured.setdefault(tidb_n, {})[tikv_n] = res.tps
    return {"id": "tab5", "measured": measured, "paper": _TAB5_PAPER}


def tab5_tidb_matrix(scale: Scale = BENCH,
                     tidb_counts: tuple = (3, 7, 11, 15, 19),
                     tikv_counts: tuple = (3, 7, 11, 15, 19)) -> dict:
    return tab5_assemble(_run_serial(tab5_points(scale, tidb_counts,
                                                 tikv_counts)))


# ---------------------------------------------------------------------------
# Figure 9: throughput + abort rate vs Zipf skew
# ---------------------------------------------------------------------------

_FIG9_PAPER = {
    "tidb_tps": {0.0: 5461, 1.0: 173},
    "fabric_abort_rate": {1.0: 0.44},
    "tidb_abort_rate": {1.0: 0.30},
    "note": "etcd and Quorum unaffected (serial execution)",
}


def fig9_points(scale: Scale = BENCH,
                thetas: tuple = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
                systems: tuple = FOUR_SYSTEMS) -> list[PointSpec]:
    return [PointSpec(figure="fig9", key=(system, theta), system=system,
                      scale=scale,
                      params=(("theta", theta), ("mode", "rmw")),
                      weight=_weight(system, scale, ops_per_txn=2))
            for system in systems for theta in thetas]


def fig9_assemble(results: dict) -> dict:
    measured: dict = {}
    for (system, theta), res in results.items():
        entry = measured.setdefault(system, {"tps": {}, "abort_rate": {}})
        entry["tps"][theta] = res.tps
        entry["abort_rate"][theta] = res.abort_rate
    return {"id": "fig9", "measured": measured, "paper": _FIG9_PAPER}


def fig9_skew(scale: Scale = BENCH,
              thetas: tuple = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
              systems: tuple = FOUR_SYSTEMS) -> dict:
    return fig9_assemble(_run_serial(fig9_points(scale, thetas, systems)))


# ---------------------------------------------------------------------------
# Figure 10: throughput + abort rate vs operations per transaction
# ---------------------------------------------------------------------------

_FIG10_PAPER = {
    "tidb_relative_tps_at_10": 0.32,
    "fabric_abort_rate_at_10": 0.87,
    "tidb_abort_rate_at_10": 0.269,
    "fabric_abort_split_at_10": {"inconsistent_read": 0.14,
                                 "read_write_conflict": 0.86},
}


def fig10_points(scale: Scale = BENCH,
                 op_counts: tuple = (1, 2, 4, 6, 8, 10),
                 systems: tuple = FOUR_SYSTEMS) -> list[PointSpec]:
    return [PointSpec(figure="fig10", key=(system, ops), system=system,
                      scale=scale,
                      params=(("ops_per_txn", ops), ("mode", "rmw"),
                              ("fix_total_size", True)),
                      weight=_weight(system, scale, ops_per_txn=ops))
            for system in systems for ops in op_counts]


def fig10_assemble(results: dict) -> dict:
    measured: dict = {}
    for (system, ops), res in results.items():
        entry = measured.setdefault(
            system, {"tps": {}, "abort_rate": {}, "abort_reasons": {}})
        entry["tps"][ops] = res.tps
        entry["abort_rate"][ops] = res.abort_rate
        entry["abort_reasons"][ops] = dict(res.abort_reasons)
    return {"id": "fig10", "measured": measured, "paper": _FIG10_PAPER}


def fig10_opcount(scale: Scale = BENCH,
                  op_counts: tuple = (1, 2, 4, 6, 8, 10),
                  systems: tuple = FOUR_SYSTEMS) -> dict:
    return fig10_assemble(_run_serial(fig10_points(scale, op_counts,
                                                   systems)))


# ---------------------------------------------------------------------------
# Figure 11: throughput + phase latency vs record size
# ---------------------------------------------------------------------------

_FIG11_PAPER = {
    "quorum_tps": {10: 1547, 1000: 245, 5000: 58},
    "fabric_tps": {10: 1400, 1000: 1294, 5000: 700},
    "note": "Quorum collapses with record size (MPT reconstruction); "
            "Fabric roughly flat until 5000 B",
}


def fig11_points(scale: Scale = BENCH,
                 record_sizes: tuple = (10, 100, 1000, 5000),
                 systems: tuple = FOUR_SYSTEMS) -> list[PointSpec]:
    return [PointSpec(figure="fig11", key=(system, size), system=system,
                      scale=scale, params=(("record_size", size),),
                      weight=_weight(system, scale)
                      * (1.0 + size / 5000.0))
            for system in systems for size in record_sizes]


def fig11_assemble(results: dict) -> dict:
    measured: dict = {}
    for (system, size), res in results.items():
        entry = measured.setdefault(system, {"tps": {}, "phases_ms": {}})
        entry["tps"][size] = res.tps
        entry["phases_ms"][size] = {
            k: v * 1000 for k, v in res.phase_means.items()}
    return {"id": "fig11", "measured": measured, "paper": _FIG11_PAPER}


def fig11_record_size(scale: Scale = BENCH,
                      record_sizes: tuple = (10, 100, 1000, 5000),
                      systems: tuple = FOUR_SYSTEMS) -> dict:
    return fig11_assemble(_run_serial(fig11_points(scale, record_sizes,
                                                   systems)))


# ---------------------------------------------------------------------------
# Figure 12: storage bytes per record (Fabric state+block vs TiDB)
# ---------------------------------------------------------------------------

def fig12_storage(record_sizes: tuple = (10, 100, 1000, 5000),
                  records: int = 1000,
                  endorsements: int = 3) -> dict:
    paper = {
        "fabric_block": {10: 6741, 100: 7020, 1000: 9723, 5000: 21725},
        "tidb": {10: 59.8, 100: 150, 1000: 1050, 5000: 5050},
    }
    measured = {"fabric_state": {}, "fabric_block": {}, "tidb": {}}
    for size in record_sizes:
        value = os.urandom(size)
        # Fabric block storage: one envelope per record insert.
        txn = Transaction.write("user000000000001", value)
        per_txn = envelope_size(txn, endorsements)
        measured["fabric_block"][size] = per_txn + 96 / records
        # Fabric state storage: the LevelDB key/value itself.
        measured["fabric_state"][size] = size + 24  # key + version metadata
        # TiDB: LSM entry (key + value + headers), no history kept.
        measured["tidb"][size] = size + 50
    return {"id": "fig12", "measured": measured, "paper": paper,
            "records": records}


def fig12_points(scale: Scale = BENCH) -> list[PointSpec]:
    # Pure data-structure measurement: one inline spec, no Scale.
    return [PointSpec(figure="fig12", key=(), runner="inline",
                      fn="fig12_storage", weight=0.05)]


def fig12_assemble(results: dict) -> dict:
    return results[()].payload


# ---------------------------------------------------------------------------
# Figure 13: tamper-evidence overhead — MBT vs MPT bytes per record
# ---------------------------------------------------------------------------

def fig13_ads_overhead(record_sizes: tuple = (10, 100, 1000, 5000),
                       records: int = 10_000) -> dict:
    paper = {
        "mbt": {10: 24, 100: 24, 1000: 47, 5000: 83},
        "mpt": {10: 1080, 100: 1084, 1000: 1071, 5000: 1083},
        "note": "paper reports total/record of 34/124/1024/5024 (MBT) and "
                "1090/1184/2071/6083 (MPT); overhead = total - record",
    }
    measured = {"mbt": {}, "mpt": {}, "mbt_depth": None, "mpt_nodes": {}}
    for size in record_sizes:
        mbt = MerkleBucketTree(num_buckets=1000, fanout=4)
        mpt = MerklePatriciaTrie()
        for i in range(records):
            key = hashlib.md5(f"rec{i}".encode()).digest()  # 16-byte keys
            value = os.urandom(size)
            mbt.put(key, value)
            mpt.put(key, value)
        mbt.commit()
        measured["mbt"][size] = mbt.overhead_per_record(size)
        total = mpt.store.total_bytes()
        measured["mpt"][size] = (total - records * size) / records
        measured["mpt_nodes"][size] = len(mpt.store)
    measured["mbt_depth"] = MerkleBucketTree(1000, 4).depth
    return {"id": "fig13", "measured": measured, "paper": paper,
            "records": records}


def fig13_points(scale: Scale = BENCH) -> list[PointSpec]:
    return [PointSpec(figure="fig13", key=(), runner="inline",
                      fn="fig13_ads_overhead", weight=1.0)]


def fig13_assemble(results: dict) -> dict:
    return results[()].payload


# ---------------------------------------------------------------------------
# Figure 14: sharded throughput (TiDB vs Spanner vs AHL)
# ---------------------------------------------------------------------------

_FIG14_PAPER = {"note": "TiDB > Spanner >> AHL(fixed) > AHL(reconfig, -30%); "
                        "log-scale gap of 1-2 orders of magnitude"}


def fig14_points(scale: Scale = BENCH,
                 node_counts: tuple = (3, 12, 24, 36, 48),
                 theta: float = 1.0) -> list[PointSpec]:
    from ..sim.costs import DEFAULT_COSTS
    # Shrink the reconfiguration epoch so several pauses land inside the
    # measurement window (same 30% duty-cycle loss as the paper's setup).
    reconfig_costs = DEFAULT_COSTS.derive(ahl_reconfig_period=3.0,
                                          ahl_reconfig_pause=0.9)
    specs = []
    for n in node_counts:
        shards = n // 3
        specs.append(PointSpec(
            figure="fig14", key=("tidb", n), system="tidb", scale=scale,
            params=(("num_nodes", max(3, shards)), ("theta", theta),
                    ("ops_per_txn", 2), ("mode", "rmw"),
                    ("system_kwargs", {"tidb_servers": max(3, shards),
                                       "tikv_nodes": max(3, shards),
                                       "instant_abort": True})),
            weight=_weight("tidb", scale, ops_per_txn=2,
                           num_nodes=max(3, shards))))
        specs.append(PointSpec(
            figure="fig14", key=("spanner", n), system="spanner", scale=scale,
            params=(("num_nodes", n), ("theta", theta),
                    ("ops_per_txn", 2), ("mode", "rmw")),
            weight=_weight("spanner", scale, ops_per_txn=2, num_nodes=n)))
        for label, reconfig in (("ahl_fixed", False), ("ahl_reconfig", True)):
            measure = max(800, scale.measure_txns // 2)
            params = [("num_nodes", n), ("theta", theta),
                      ("ops_per_txn", 2), ("mode", "rmw"),
                      ("measure_txns", measure),
                      ("system_kwargs", {"periodic_reconfig": reconfig})]
            if reconfig:
                params.append(("costs", reconfig_costs))
            specs.append(PointSpec(
                figure="fig14", key=(label, n), system="ahl", scale=scale,
                params=tuple(params),
                weight=_weight("ahl", scale, measure, ops_per_txn=2,
                               num_nodes=n)))
    return specs


def fig14_assemble(results: dict) -> dict:
    measured: dict = {"tidb": {}, "spanner": {}, "ahl_fixed": {},
                      "ahl_reconfig": {}}
    for (label, n), res in results.items():
        measured[label][n] = res.tps
    return {"id": "fig14", "measured": measured, "paper": _FIG14_PAPER}


def fig14_sharding(scale: Scale = BENCH,
                   node_counts: tuple = (3, 12, 24, 36, 48),
                   theta: float = 1.0) -> dict:
    return fig14_assemble(_run_serial(fig14_points(scale, node_counts,
                                                   theta)))


# ---------------------------------------------------------------------------
# Figure 14 (scaling stretch): AHL to hundreds of shards, serial-vs-parallel
# ---------------------------------------------------------------------------

#: Shard counts for the hundreds-of-shards sweep (Fig. 14 stretch setup).
_FIG14_SCALING_SHARDS = (4, 16, 64, 256)


def fig14_scaling_points(scale: Scale = BENCH,
                         shard_counts: tuple = _FIG14_SCALING_SHARDS,
                         seed: int = 11) -> list[PointSpec]:
    """AHL at 4..256 shards, each count under both execution kernels.

    Per shard count, one point on the single-heap lookahead build
    (``shard_lookahead=True``, the equivalence reference) and one on the
    conservative-parallel build (``parallel=True``); the assembler
    enforces byte-identical fingerprints per pair.  Parallel points are
    ``no_fork`` — the shard-worker pool cannot be started inside a
    daemonic ``--jobs`` pool worker — so the sweep runs them in its
    parent process.
    """
    specs = []
    for shards in shard_counts:
        base = (("num_nodes", 3 * shards), ("seed", seed),
                ("mode", "rmw"), ("ops_per_txn", 2), ("theta", 0.0))
        weight = _weight("ahl", scale, ops_per_txn=2, num_nodes=3 * shards)
        specs.append(PointSpec(
            figure="fig14_scaling", key=("serial", shards), system="ahl",
            scale=scale,
            params=base + (("system_kwargs", {"shard_lookahead": True}),),
            weight=weight))
        specs.append(PointSpec(
            figure="fig14_scaling", key=("parallel", shards), system="ahl",
            scale=scale,
            params=base + (("system_kwargs", {"parallel": True}),),
            weight=weight, no_fork=True))
    return specs


def fig14_scaling_assemble(results: dict) -> dict:
    """Fold the scaling matrix; equivalence is an assertion, not a field.

    A shard count whose parallel fingerprint differs from its serial one
    raises — a sweep must never report a scaling curve whose two kernels
    disagreed on the simulated universe.
    """
    shards = sorted({n for (_b, n) in results})
    tps = {"serial": {}, "parallel": {}}
    wall = {"serial": {}, "parallel": {}}
    for (build, n), res in results.items():
        tps[build][n] = res.tps
        wall[build][n] = res.wall_s
    identical = {}
    for n in shards:
        s, p = results[("serial", n)], results[("parallel", n)]
        if s.fingerprint != p.fingerprint:
            raise AssertionError(
                f"fig14_scaling: parallel kernel diverged from serial "
                f"lookahead at {n} shards: {p.fingerprint} != "
                f"{s.fingerprint}")
        identical[n] = True
    return {
        "id": "fig14_scaling",
        "shards": shards,
        "measured": tps,
        "wall_s": wall,
        "speedup": {n: wall["serial"][n] / wall["parallel"][n]
                    if wall["parallel"][n] else 0.0 for n in shards},
        "byte_identical": identical,
        "paper": {"note": "AHL throughput scales near-linearly in shard "
                          "count at uniform access (Fig. 14 regime); "
                          "speedup is wall-clock serial/parallel on this "
                          "box and is not pinned"},
    }


def fig14_scaling_sweep(scale: Scale = BENCH,
                        shard_counts: tuple = _FIG14_SCALING_SHARDS,
                        seed: int = 11) -> dict:
    """Serial-engine run of the hundreds-of-shards scaling matrix."""
    return fig14_scaling_assemble(_run_serial(
        fig14_scaling_points(scale, shard_counts, seed)))


# ---------------------------------------------------------------------------
# Figure 15: hybrid forecast vs reported and vs simulated
# ---------------------------------------------------------------------------

def fig15_points(scale: Scale = BENCH, simulate: bool = True,
                 num_nodes: int = 4) -> list[PointSpec]:
    if not simulate:
        return []
    specs = []
    for name in REPORTED_THROUGHPUT:
        # PoW commits arrive in bursts of whole blocks: measure over
        # many blocks or the tps estimate is meaningless.
        measure = (max(800, scale.measure_txns)
                   if name == "blockchaindb" else scale.measure_txns)
        specs.append(PointSpec(
            figure="fig15", key=(name,), system=name, scale=scale,
            params=(("num_nodes", num_nodes), ("measure_txns", measure)),
            weight=_weight(name, scale, measure, num_nodes=num_nodes)))
    return specs


def fig15_assemble(results: dict, simulate: bool = True) -> dict:
    names = list(REPORTED_THROUGHPUT)
    forecasts = {n: forecast(TABLE2[n]) for n in names}
    out = {
        "id": "fig15",
        "forecast": {n: {"band": f.band.value, "score": f.score,
                         "range": f.tps_range}
                     for n, f in forecasts.items()},
        "reported": dict(REPORTED_THROUGHPUT),
        "ranking": [f.system for f in rank([TABLE2[n] for n in names])],
    }
    if simulate:
        out["simulated"] = {name: res.tps
                            for (name,), res in results.items()}
    return out


def fig15_hybrid_forecast(scale: Scale = BENCH,
                          simulate: bool = True,
                          num_nodes: int = 4) -> dict:
    return fig15_assemble(_run_serial(fig15_points(scale, simulate,
                                                   num_nodes)),
                          simulate=simulate)


# ---------------------------------------------------------------------------
# Isolation ablation: throughput gained vs anomalies admitted
# ---------------------------------------------------------------------------

#: The isolation spectrum ``extras["isolation"]`` accepts, strongest first.
_ISOLATION_LEVELS = ("serializable", "snapshot", "read_committed")


def isolation_points(scale: Scale = BENCH) -> list[PointSpec]:
    """The isolation-spectrum grid: workload x system x level.

    YCSB read-modify-write under skew runs on all four wired systems
    (the certifier proves rmw robust against SI, so only read-committed
    rows should admit anomalies — lost updates).  Smallbank update-only
    runs on quorum (certified robust against SI); the balance-mixed
    variant runs on etcd, where the certifier's SI counterexample — the
    read-only write-skew anomaly — is realizable and observable.  Every
    YCSB row at SMOKE scale doubles as a seeded-fingerprint pin.
    """
    specs = []
    for system in ("etcd", "tikv", "tidb", "quorum"):
        base = [("mode", "rmw"), ("theta", 0.9), ("seed", 11)]
        if system == "tidb":
            base.append(("ops_per_txn", 2))
        for level in _ISOLATION_LEVELS:
            specs.append(PointSpec(
                figure="isolation_ablation",
                key=("ycsb-rmw", system, level),
                runner="ycsb", system=system, scale=scale,
                params=tuple(base) + (("extras", {"isolation": level}),),
                weight=_weight(system, scale)))
    for level in _ISOLATION_LEVELS:
        specs.append(PointSpec(
            figure="isolation_ablation",
            key=("smallbank", "quorum", level),
            runner="smallbank", system="quorum", scale=scale,
            params=(("num_accounts", 200), ("theta", 0.9), ("seed", 11),
                    ("extras", {"isolation": level})),
            weight=_weight("quorum", scale)))
        specs.append(PointSpec(
            figure="isolation_ablation",
            key=("smallbank-mix", "etcd", level),
            runner="smallbank", system="etcd", scale=scale,
            params=(("num_accounts", 50), ("theta", 1.0),
                    ("query_proportion", 0.4), ("seed", 11),
                    ("extras", {"isolation": level})),
            weight=_weight("etcd", scale)))
    return specs


def isolation_assemble(results: dict) -> dict:
    rows: dict = {}
    for (workload, system, level), res in results.items():
        row = rows.setdefault(f"{workload}/{system}", {})
        anomalies = (res.payload or {}).get("anomalies") or {}
        row[level] = {
            "tps": res.tps,
            "aborted": res.aborted,
            "serializable": (res.payload or {}).get(
                "serializable_history"),
            "anomalies": {k: v for k, v in anomalies.items() if v},
        }
    for row in rows.values():
        base = row["serializable"]["tps"] if "serializable" in row else 0.0
        for cell in row.values():
            cell["speedup_vs_serializable"] = (
                round(cell["tps"] / base, 3) if base else None)
    return {"id": "isolation_ablation", "rows": rows}


def isolation_ablation(scale: Scale = BENCH) -> dict:
    """Run the whole isolation-spectrum point table serially."""
    return isolation_assemble(_run_serial(isolation_points(scale)))


# ---------------------------------------------------------------------------
# Open-loop knee: goodput vs offered load, CO-safe tail alongside
# ---------------------------------------------------------------------------

#: Offered-load baseline for the knee sweep — the etcd closed-loop peak
#: (Fig. 4's highest wired-system point), so multiplier 1.0 sits at the
#: nominal capacity and the knee falls inside the swept range.
_OPENLOOP_BASE_RATE = 15_000.0

#: Offered-load multipliers per scale (smoke trims the sub-knee ramp).
_OPENLOOP_MULTIPLIERS = {
    "smoke": (0.5, 1.0, 1.5, 2.0),
    "bench": (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
    "paper": (0.25, 0.5, 0.75, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0),
}


def openloop_point(multiplier: float = 1.0,
                   base_rate: float = _OPENLOOP_BASE_RATE,
                   duration: float = 0.6, warmup: float = 0.2,
                   record_count: int = 2000, arrival: str = "poisson",
                   system: str = "etcd", seed: int = 11) -> dict:
    """One open-loop measurement at ``multiplier`` x the base rate.

    The in-flight cap and admit queue are deliberately finite so
    overload shows up as queueing delay, late admissions, and drops —
    CO-safe p99 diverges while goodput saturates — instead of the run
    silently absorbing an unbounded backlog.
    """
    from ..core.builder import build_system
    from ..sim.kernel import Environment
    from ..systems.base import SystemConfig
    from ..workloads.openloop import OpenLoopConfig, run_open_loop
    from ..workloads.ycsb import YcsbConfig, YcsbWorkload

    env = Environment()
    sys_obj = build_system(env, system, SystemConfig(num_nodes=5, seed=seed))
    workload = YcsbWorkload(YcsbConfig(record_count=record_count,
                                       record_size=1000, seed=seed + 1))
    sys_obj.load(workload.initial_records())
    cfg = OpenLoopConfig(
        rate=base_rate * multiplier, duration=duration, warmup=warmup,
        arrival=arrival, seed=seed, txn_timeout=1.0,
        max_in_flight=256, admit_queue=2048,
        max_sim_time=warmup + duration + 10.0)
    res = run_open_loop(env, sys_obj, workload.next_update, cfg)
    out = {
        "multiplier": multiplier,
        "offered_rate": cfg.rate,
        "offered": res.offered,
        "goodput": res.goodput,
        "p50": res.p50, "p99": res.p99, "p999": res.p999,
        "mean_latency": res.latency.mean,
        "slo": res.slo, "slo_attainment": res.slo_attainment,
        "committed": res.committed, "aborted": res.aborted,
        "timeouts": res.timeouts, "dropped": res.dropped,
        "late_admitted": res.late_admitted,
        "digest": res.result_digest(),
    }
    if res.extras.get("wall_hit"):
        out["wall_hit"] = True
    return out


def openloop_points(scale: Scale = BENCH,
                    multipliers: Optional[tuple] = None) -> list[PointSpec]:
    mults = multipliers if multipliers is not None \
        else _OPENLOOP_MULTIPLIERS.get(scale.name,
                                       _OPENLOOP_MULTIPLIERS["bench"])
    small = scale.name == "smoke"
    duration = 0.6 if small else 2.0
    warmup = 0.2 if small else 0.5
    return [
        PointSpec(
            figure="openloop_knee", key=(m,), runner="inline",
            fn="openloop_point",
            params=(("multiplier", m), ("duration", duration),
                    ("warmup", warmup),
                    ("record_count", scale.record_count), ("seed", 11)),
            # Wall cost is ~linear in the arrival count, i.e. in the
            # offered-load multiplier.
            weight=1.0 + 1.5 * m * (1.0 if small else 3.0))
        for m in mults
    ]


def openloop_assemble(results: dict) -> dict:
    curve = [res.payload for (_m,), res in
             sorted(results.items(), key=lambda kv: kv[0][0])]
    out = {"id": "openloop_knee", "base_rate": _OPENLOOP_BASE_RATE,
           "curve": curve}
    if len(curve) >= 2:
        # The open-loop signature a closed-loop driver cannot produce:
        # past the knee, offered load keeps rising, goodput stops
        # following it, and CO-safe p99 (measured from *intended*
        # arrival) diverges.
        first, last = curve[0], curve[-1]
        peak_goodput = max(row["goodput"] for row in curve)
        out["knee"] = {
            "peak_goodput": peak_goodput,
            "final_goodput_fraction": last["goodput"] / peak_goodput
            if peak_goodput else 0.0,
            "p99_divergence": last["p99"] / first["p99"]
            if first["p99"] else 0.0,
            "saturated": last["offered_rate"] > 1.2 * peak_goodput,
        }
    return out


def openloop_knee(scale: Scale = BENCH,
                  multipliers: Optional[tuple] = None) -> dict:
    """Throughput-vs-offered-load knee under the open-loop driver."""
    return openloop_assemble(_run_serial(openloop_points(scale,
                                                         multipliers)))


#: figure id -> (points enumerator, assembler); the sweep runner's menu.
POINT_TABLES = {
    "fig4": (fig4_points, fig4_assemble),
    "fig5": (fig5_points, fig5_assemble),
    "fig6": (fig6_points, fig6_assemble),
    "fig7": (fig7_points, fig7_assemble),
    "fig8": (fig8_points, fig8_assemble),
    "tab4": (tab4_points, tab4_assemble),
    "tab5": (tab5_points, tab5_assemble),
    "fig9": (fig9_points, fig9_assemble),
    "fig10": (fig10_points, fig10_assemble),
    "fig11": (fig11_points, fig11_assemble),
    "fig12": (fig12_points, fig12_assemble),
    "fig13": (fig13_points, fig13_assemble),
    "fig14": (fig14_points, fig14_assemble),
    "fig14_scaling": (fig14_scaling_points, fig14_scaling_assemble),
    "fig15": (fig15_points, fig15_assemble),
    "isolation_ablation": (isolation_points, isolation_assemble),
    "openloop_knee": (openloop_points, openloop_assemble),
}
