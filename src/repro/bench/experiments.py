"""One function per paper artifact: Figures 4-15 and Tables 4-5.

Each function runs the sweep behind one figure/table and returns a
structured dict with the measured series plus ``paper`` — the values the
paper reports — so callers (benchmarks, EXPERIMENTS.md generation) can
compare shapes.  Pass ``scale=SMOKE`` for quick runs, ``BENCH`` for the
default benchmark fidelity.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

from ..adt.mbt import MerkleBucketTree
from ..adt.mpt import MerklePatriciaTrie
from ..core.forecast import (REPORTED_THROUGHPUT, forecast, rank)
from ..core.taxonomy import TABLE2
from ..txn.ledger import envelope_size
from ..txn.transaction import Transaction
from .harness import BENCH, Scale, run_point, run_smallbank_point

__all__ = [
    "fig4_peak_throughput", "fig5_latency", "fig6_smallbank",
    "fig7_cft_vs_bft", "fig8_latency_breakdown", "tab4_scaling",
    "tab5_tidb_matrix", "fig9_skew", "fig10_opcount", "fig11_record_size",
    "fig12_storage", "fig13_ads_overhead", "fig14_sharding",
    "fig15_hybrid_forecast",
]

FOUR_SYSTEMS = ("fabric", "quorum", "tidb", "etcd")
FIVE_SYSTEMS = FOUR_SYSTEMS + ("tikv",)


# ---------------------------------------------------------------------------
# Figure 4: peak YCSB throughput (update and query), 5 systems, log scale
# ---------------------------------------------------------------------------

def fig4_peak_throughput(scale: Scale = BENCH,
                         systems: tuple = FIVE_SYSTEMS) -> dict:
    paper = {
        "update": {"fabric": 1294, "quorum": 245, "tidb": 5159,
                   "etcd": 16781, "tikv": 13507},
        "query": {"fabric": 23809, "quorum": 19166, "tidb": 87933,
                  "etcd": 282192, "tikv": 94050},
    }
    measured = {"update": {}, "query": {}}
    for mode in ("update", "query"):
        for system in systems:
            res = run_point(system, scale=scale, mode=mode,
                            measure_txns=(scale.measure_txns * 3
                                          if mode == "query" else None))
            measured[mode][system] = res.tps
    return {"id": "fig4", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 5: unsaturated latency (update and query)
# ---------------------------------------------------------------------------

def fig5_latency(scale: Scale = BENCH,
                 systems: tuple = FIVE_SYSTEMS) -> dict:
    paper_ms = {
        "update": {"fabric": 3500, "quorum": 500, "tidb": 100,
                   "etcd": 100, "tikv": 100},
        "query": {"fabric": 9, "quorum": 4, "tidb": 1,
                  "etcd": 1, "tikv": 1},
    }
    measured = {"update": {}, "query": {}}
    for mode in ("update", "query"):
        for system in systems:
            # unsaturated: a handful of closed-loop clients
            res = run_point(system, scale=scale, mode=mode, clients=4,
                            measure_txns=max(100, scale.measure_txns // 10))
            measured[mode][system] = res.mean_latency * 1000.0
    return {"id": "fig5", "measured_ms": measured, "paper_ms": paper_ms}


# ---------------------------------------------------------------------------
# Figure 6: Smallbank throughput (skewed, theta=1)
# ---------------------------------------------------------------------------

def fig6_smallbank(scale: Scale = BENCH,
                   num_accounts: Optional[int] = None) -> dict:
    paper = {"fabric": 835, "quorum": 655, "tidb": 1031}
    accounts = num_accounts if num_accounts is not None \
        else max(scale.record_count * 5, 10_000)
    measured = {}
    for system in ("fabric", "quorum", "tidb"):
        res = run_smallbank_point(system, scale=scale,
                                  num_accounts=accounts)
        measured[system] = res.tps
    return {"id": "fig6", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 7: Quorum Raft (CFT) vs IBFT (BFT) vs tolerated failures
# ---------------------------------------------------------------------------

def fig7_cft_vs_bft(scale: Scale = BENCH,
                    failures: tuple = (1, 2, 3, 4, 5, 6),
                    seeds: tuple = (0, 1, 2)) -> dict:
    measured = {"raft": {}, "ibft": {}}
    for f in failures:
        for protocol, nodes in (("raft", 2 * f + 1), ("ibft", 3 * f + 1)):
            samples = []
            for seed in seeds:
                res = run_point(
                    "quorum", scale=scale, num_nodes=nodes, seed=seed,
                    measure_txns=max(200, scale.measure_txns // 2),
                    system_kwargs={"consensus": protocol})
                samples.append(res.tps)
            mean = sum(samples) / len(samples)
            var = sum((s - mean) ** 2 for s in samples) / len(samples)
            measured[protocol][f] = {"mean": mean, "std": var ** 0.5,
                                     "samples": samples}
    return {"id": "fig7", "measured": measured,
            "paper": {"note": "both protocols flat at ~230-380 tps; "
                              "IBFT variance grows with f"}}


# ---------------------------------------------------------------------------
# Figure 8: latency breakdown (Fabric phases; TiDB query costs)
# ---------------------------------------------------------------------------

def fig8_latency_breakdown(scale: Scale = BENCH) -> dict:
    out = {"id": "fig8", "paper": {
        "fabric_unsaturated_ms": {"execute": 500, "order": 700,
                                  "validate": 700},
        "fabric_query_us": {"authentication": 4294, "simulation": 406,
                            "endorsement": 59},
        "tidb_query_us": {"sql-parse": 16, "sql-compile": 15,
                          "storage-get": 275},
    }}
    # Fabric update, unsaturated vs saturated
    res_unsat = run_point("fabric", scale=scale, clients=8,
                          measure_txns=max(100, scale.measure_txns // 10))
    res_sat = run_point("fabric", scale=scale)
    out["fabric_unsaturated_ms"] = {
        k: v * 1000 for k, v in res_unsat.phase_means().items()}
    out["fabric_saturated_ms"] = {
        k: v * 1000 for k, v in res_sat.phase_means().items()}
    # Query breakdowns
    res_fq = run_point("fabric", scale=scale, mode="query", clients=8,
                       measure_txns=max(100, scale.measure_txns // 10))
    out["fabric_query_us"] = {
        k: v * 1e6 for k, v in res_fq.phase_means().items()}
    res_tq = run_point("tidb", scale=scale, mode="query", clients=8,
                       measure_txns=max(100, scale.measure_txns // 10))
    out["tidb_query_us"] = {
        k: v * 1e6 for k, v in res_tq.phase_means().items()}
    return out


# ---------------------------------------------------------------------------
# Table 4: throughput vs number of nodes (full replication)
# ---------------------------------------------------------------------------

def tab4_scaling(scale: Scale = BENCH,
                 node_counts: tuple = (3, 7, 11, 15, 19),
                 systems: tuple = FOUR_SYSTEMS) -> dict:
    paper = {
        "fabric": {3: 1560, 7: 1288, 11: 1031, 15: 749, 19: 528},
        "quorum": {3: 237, 7: 236, 11: 229, 15: 217, 19: 219},
        "tidb": {3: 5697, 7: 7884, 11: 7544, 15: 6239, 19: 5526},
        "etcd": {3: 19282, 7: 16453, 11: 11243, 15: 7801, 19: 6076},
    }
    measured = {s: {} for s in systems}
    for system in systems:
        for n in node_counts:
            res = run_point(system, scale=scale, num_nodes=n)
            measured[system][n] = res.tps
    return {"id": "tab4", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Table 5: TiDB servers x TiKV nodes matrix
# ---------------------------------------------------------------------------

def tab5_tidb_matrix(scale: Scale = BENCH,
                     tidb_counts: tuple = (3, 7, 11, 15, 19),
                     tikv_counts: tuple = (3, 7, 11, 15, 19)) -> dict:
    paper = {
        3: {3: 5697, 7: 8517, 11: 9116, 15: 8838, 19: 8690},
        7: {3: 5951, 7: 7884, 11: 8539, 15: 8162, 19: 8246},
        11: {3: 5847, 7: 6871, 11: 7544, 15: 6941, 19: 7429},
        15: {3: 5121, 7: 5703, 11: 6306, 15: 6239, 19: 5618},
        19: {3: 4198, 7: 5238, 11: 5477, 15: 5563, 19: 5526},
    }
    measured: dict = {}
    for tidb_n in tidb_counts:
        measured[tidb_n] = {}
        for tikv_n in tikv_counts:
            res = run_point(
                "tidb", scale=scale, num_nodes=max(tidb_n, tikv_n),
                clients=64 * max(1, tidb_n // 3),
                system_kwargs={"tidb_servers": tidb_n,
                               "tikv_nodes": tikv_n})
            measured[tidb_n][tikv_n] = res.tps
    return {"id": "tab5", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 9: throughput + abort rate vs Zipf skew
# ---------------------------------------------------------------------------

def fig9_skew(scale: Scale = BENCH,
              thetas: tuple = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
              systems: tuple = FOUR_SYSTEMS) -> dict:
    paper = {
        "tidb_tps": {0.0: 5461, 1.0: 173},
        "fabric_abort_rate": {1.0: 0.44},
        "tidb_abort_rate": {1.0: 0.30},
        "note": "etcd and Quorum unaffected (serial execution)",
    }
    measured = {s: {"tps": {}, "abort_rate": {}} for s in systems}
    for system in systems:
        for theta in thetas:
            res = run_point(system, scale=scale, theta=theta, mode="rmw")
            measured[system]["tps"][theta] = res.tps
            measured[system]["abort_rate"][theta] = res.abort_rate
    return {"id": "fig9", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 10: throughput + abort rate vs operations per transaction
# ---------------------------------------------------------------------------

def fig10_opcount(scale: Scale = BENCH,
                  op_counts: tuple = (1, 2, 4, 6, 8, 10),
                  systems: tuple = FOUR_SYSTEMS) -> dict:
    paper = {
        "tidb_relative_tps_at_10": 0.32,
        "fabric_abort_rate_at_10": 0.87,
        "tidb_abort_rate_at_10": 0.269,
        "fabric_abort_split_at_10": {"inconsistent_read": 0.14,
                                     "read_write_conflict": 0.86},
    }
    measured = {s: {"tps": {}, "abort_rate": {}, "abort_reasons": {}}
                for s in systems}
    for system in systems:
        for ops in op_counts:
            res = run_point(system, scale=scale, ops_per_txn=ops,
                            mode="rmw", fix_total_size=True)
            measured[system]["tps"][ops] = res.tps
            measured[system]["abort_rate"][ops] = res.abort_rate
            measured[system]["abort_reasons"][ops] = dict(
                res.stats.abort_reasons)
    return {"id": "fig10", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 11: throughput + phase latency vs record size
# ---------------------------------------------------------------------------

def fig11_record_size(scale: Scale = BENCH,
                      record_sizes: tuple = (10, 100, 1000, 5000),
                      systems: tuple = FOUR_SYSTEMS) -> dict:
    paper = {
        "quorum_tps": {10: 1547, 1000: 245, 5000: 58},
        "fabric_tps": {10: 1400, 1000: 1294, 5000: 700},
        "note": "Quorum collapses with record size (MPT reconstruction); "
                "Fabric roughly flat until 5000 B",
    }
    measured = {s: {"tps": {}, "phases_ms": {}} for s in systems}
    for system in systems:
        for size in record_sizes:
            res = run_point(system, scale=scale, record_size=size)
            measured[system]["tps"][size] = res.tps
            measured[system]["phases_ms"][size] = {
                k: v * 1000 for k, v in res.phase_means().items()}
    return {"id": "fig11", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 12: storage bytes per record (Fabric state+block vs TiDB)
# ---------------------------------------------------------------------------

def fig12_storage(record_sizes: tuple = (10, 100, 1000, 5000),
                  records: int = 1000,
                  endorsements: int = 3) -> dict:
    paper = {
        "fabric_block": {10: 6741, 100: 7020, 1000: 9723, 5000: 21725},
        "tidb": {10: 59.8, 100: 150, 1000: 1050, 5000: 5050},
    }
    measured = {"fabric_state": {}, "fabric_block": {}, "tidb": {}}
    for size in record_sizes:
        value = os.urandom(size)
        # Fabric block storage: one envelope per record insert.
        txn = Transaction.write("user000000000001", value)
        per_txn = envelope_size(txn, endorsements)
        measured["fabric_block"][size] = per_txn + 96 / records
        # Fabric state storage: the LevelDB key/value itself.
        measured["fabric_state"][size] = size + 24  # key + version metadata
        # TiDB: LSM entry (key + value + headers), no history kept.
        measured["tidb"][size] = size + 50
    return {"id": "fig12", "measured": measured, "paper": paper,
            "records": records}


# ---------------------------------------------------------------------------
# Figure 13: tamper-evidence overhead — MBT vs MPT bytes per record
# ---------------------------------------------------------------------------

def fig13_ads_overhead(record_sizes: tuple = (10, 100, 1000, 5000),
                       records: int = 10_000) -> dict:
    paper = {
        "mbt": {10: 24, 100: 24, 1000: 47, 5000: 83},
        "mpt": {10: 1080, 100: 1084, 1000: 1071, 5000: 1083},
        "note": "paper reports total/record of 34/124/1024/5024 (MBT) and "
                "1090/1184/2071/6083 (MPT); overhead = total - record",
    }
    measured = {"mbt": {}, "mpt": {}, "mbt_depth": None, "mpt_nodes": {}}
    for size in record_sizes:
        mbt = MerkleBucketTree(num_buckets=1000, fanout=4)
        mpt = MerklePatriciaTrie()
        for i in range(records):
            key = hashlib.md5(f"rec{i}".encode()).digest()  # 16-byte keys
            value = os.urandom(size)
            mbt.put(key, value)
            mpt.put(key, value)
        mbt.commit()
        measured["mbt"][size] = mbt.overhead_per_record(size)
        total = mpt.store.total_bytes()
        measured["mpt"][size] = (total - records * size) / records
        measured["mpt_nodes"][size] = len(mpt.store)
    measured["mbt_depth"] = MerkleBucketTree(1000, 4).depth
    return {"id": "fig13", "measured": measured, "paper": paper,
            "records": records}


# ---------------------------------------------------------------------------
# Figure 14: sharded throughput (TiDB vs Spanner vs AHL)
# ---------------------------------------------------------------------------

def fig14_sharding(scale: Scale = BENCH,
                   node_counts: tuple = (3, 12, 24, 36, 48),
                   theta: float = 1.0) -> dict:
    from ..sim.costs import DEFAULT_COSTS
    # Shrink the reconfiguration epoch so several pauses land inside the
    # measurement window (same 30% duty-cycle loss as the paper's setup).
    reconfig_costs = DEFAULT_COSTS.derive(ahl_reconfig_period=3.0,
                                          ahl_reconfig_pause=0.9)
    paper = {"note": "TiDB > Spanner >> AHL(fixed) > AHL(reconfig, -30%); "
                     "log-scale gap of 1-2 orders of magnitude"}
    measured: dict = {"tidb": {}, "spanner": {}, "ahl_fixed": {},
                      "ahl_reconfig": {}}
    for n in node_counts:
        shards = n // 3
        res = run_point("tidb", scale=scale, num_nodes=max(3, shards),
                        theta=theta, ops_per_txn=2, mode="rmw",
                        system_kwargs={"tidb_servers": max(3, shards),
                                       "tikv_nodes": max(3, shards),
                                       "instant_abort": True})
        measured["tidb"][n] = res.tps
        res = run_point("spanner", scale=scale, num_nodes=n, theta=theta,
                        ops_per_txn=2, mode="rmw")
        measured["spanner"][n] = res.tps
        for label, reconfig in (("ahl_fixed", False),
                                ("ahl_reconfig", True)):
            res = run_point(
                "ahl", scale=scale, num_nodes=n, theta=theta,
                ops_per_txn=2, mode="rmw",
                measure_txns=max(800, scale.measure_txns // 2),
                system_kwargs={"periodic_reconfig": reconfig},
                costs=reconfig_costs if reconfig else None)
            measured[label][n] = res.tps
    return {"id": "fig14", "measured": measured, "paper": paper}


# ---------------------------------------------------------------------------
# Figure 15: hybrid forecast vs reported and vs simulated
# ---------------------------------------------------------------------------

def fig15_hybrid_forecast(scale: Scale = BENCH,
                          simulate: bool = True,
                          num_nodes: int = 4) -> dict:
    names = list(REPORTED_THROUGHPUT)
    forecasts = {n: forecast(TABLE2[n]) for n in names}
    out = {
        "id": "fig15",
        "forecast": {n: {"band": f.band.value, "score": f.score,
                         "range": f.tps_range}
                     for n, f in forecasts.items()},
        "reported": dict(REPORTED_THROUGHPUT),
        "ranking": [f.system for f in rank([TABLE2[n] for n in names])],
    }
    if simulate:
        measured = {}
        for name in names:
            # PoW commits arrive in bursts of whole blocks: measure over
            # many blocks or the tps estimate is meaningless.
            res = run_point(
                name, scale=scale, num_nodes=num_nodes,
                measure_txns=(max(800, scale.measure_txns)
                              if name == "blockchaindb"
                              else scale.measure_txns))
            measured[name] = res.tps
        out["simulated"] = measured
    return out
