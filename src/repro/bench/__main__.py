"""Regenerate paper artifacts from the command line.

Usage::

    python -m repro.bench fig4 fig13          # specific artifacts
    python -m repro.bench --all --scale smoke # everything, fast
    python -m repro.bench --list
    python -m repro.bench --perf              # perf trajectory -> BENCH_<date>.json
    python -m repro.bench --perf --scale smoke --budget 120

Scales: smoke (seconds per artifact), bench (default), paper (closest to
the paper's measurement sizes; minutes per artifact).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import experiments
from .harness import BENCH, PAPER, SMOKE
from .report import format_experiment

EXPERIMENTS = {
    "fig4": experiments.fig4_peak_throughput,
    "fig5": experiments.fig5_latency,
    "fig6": experiments.fig6_smallbank,
    "fig7": experiments.fig7_cft_vs_bft,
    "fig8": experiments.fig8_latency_breakdown,
    "tab4": experiments.tab4_scaling,
    "tab5": experiments.tab5_tidb_matrix,
    "fig9": experiments.fig9_skew,
    "fig10": experiments.fig10_opcount,
    "fig11": experiments.fig11_record_size,
    "fig12": experiments.fig12_storage,
    "fig13": experiments.fig13_ads_overhead,
    "fig14": experiments.fig14_sharding,
    "fig15": experiments.fig15_hybrid_forecast,
}

SCALES = {"smoke": SMOKE, "bench": BENCH, "paper": PAPER}

# fig12/fig13 take no scale (pure data-structure measurements)
_NO_SCALE = {"fig12", "fig13"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures from the paper.")
    parser.add_argument("artifacts", nargs="*",
                        help=f"artifact ids: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every artifact")
    parser.add_argument("--scale", choices=list(SCALES), default="bench")
    parser.add_argument("--list", action="store_true",
                        help="list artifact ids and exit")
    parser.add_argument("--perf", action="store_true",
                        help="run the perf-regression microbenchmarks and "
                             "write a BENCH_<date>.json trajectory file")
    parser.add_argument("--perf-out", default=".",
                        help="directory for the BENCH_*.json file")
    parser.add_argument("--budget", type=float, default=None,
                        help="with --perf: fail if total wall-clock "
                             "exceeds this many seconds")
    args = parser.parse_args(argv)

    if args.perf:
        from .perf import format_perf, run_perf, write_trajectory
        report = run_perf(scale=SCALES[args.scale])
        print(format_perf(report))
        path = write_trajectory(report, out_dir=args.perf_out)
        print(f"wrote {path}")
        if args.budget is not None and report["total_wall_s"] > args.budget:
            print(f"PERF BUDGET EXCEEDED: {report['total_wall_s']}s "
                  f"> {args.budget}s", file=sys.stderr)
            return 1
        return 0

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    targets = list(EXPERIMENTS) if args.all else args.artifacts
    if not targets:
        parser.print_help()
        return 2
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown artifacts: {unknown}", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]
    for target in targets:
        fn = EXPERIMENTS[target]
        start = time.time()
        result = fn() if target in _NO_SCALE else fn(scale=scale)
        print(format_experiment(result))
        print(f"[{target} took {time.time() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
