"""Regenerate paper artifacts from the command line.

Usage::

    python -m repro.bench fig4 fig13          # specific artifacts
    python -m repro.bench --all --scale smoke # everything, fast
    python -m repro.bench --list
    python -m repro.bench --perf              # perf trajectory -> BENCH_<date>.json
    python -m repro.bench --perf --scale smoke --budget 120
    python -m repro.bench --perf --jobs 4     # farm microbenchmarks across workers
    python -m repro.bench --sweep --jobs 8    # whole grid -> SWEEP_<date>.json
    python -m repro.bench --sweep --list      # point inventory, no execution
    python -m repro.bench --sweep fig14 fingerprints --scale smoke --jobs 2

Scales: smoke (seconds per artifact), bench (default), paper (closest to
the paper's measurement sizes; minutes per artifact).  ``--sweep`` runs
the figure grid point-parallel across ``--jobs`` worker processes,
verifies every point that matches a seeded fingerprint pin, and merges
one trajectory file byte-identical (modulo wall clocks) to a serial run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import experiments
from .harness import BENCH, PAPER, SMOKE
from .report import format_experiment

EXPERIMENTS = {
    "fig4": experiments.fig4_peak_throughput,
    "fig5": experiments.fig5_latency,
    "fig6": experiments.fig6_smallbank,
    "fig7": experiments.fig7_cft_vs_bft,
    "fig8": experiments.fig8_latency_breakdown,
    "tab4": experiments.tab4_scaling,
    "tab5": experiments.tab5_tidb_matrix,
    "fig9": experiments.fig9_skew,
    "fig10": experiments.fig10_opcount,
    "fig11": experiments.fig11_record_size,
    "fig12": experiments.fig12_storage,
    "fig13": experiments.fig13_ads_overhead,
    "fig14": experiments.fig14_sharding,
    "fig14_scaling": experiments.fig14_scaling_sweep,
    "fig15": experiments.fig15_hybrid_forecast,
    "isolation_ablation": experiments.isolation_ablation,
    "openloop_knee": experiments.openloop_knee,
}

SCALES = {"smoke": SMOKE, "bench": BENCH, "paper": PAPER}

# fig12/fig13 take no scale (pure data-structure measurements)
_NO_SCALE = {"fig12", "fig13"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures from the paper.")
    parser.add_argument("artifacts", nargs="*",
                        help=f"artifact ids: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every artifact")
    parser.add_argument("--scale", choices=list(SCALES), default="bench")
    parser.add_argument("--list", action="store_true",
                        help="list artifact ids and exit")
    parser.add_argument("--perf", action="store_true",
                        help="run the perf-regression microbenchmarks and "
                             "write a BENCH_<date>.json trajectory file")
    parser.add_argument("--perf-out", default=".",
                        help="directory for the BENCH_*.json file")
    parser.add_argument("--budget", type=float, default=None,
                        help="with --perf/--sweep: fail if total "
                             "wall-clock exceeds this many seconds")
    parser.add_argument("--sweep", action="store_true",
                        help="run the figure grid point-parallel and "
                             "write a SWEEP_<date>.json trajectory file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --sweep / --perf "
                             "(default 1 = serial; 0 = cpu_count - 1). "
                             "Pool workers are daemonic, so points that "
                             "start shard-worker processes themselves "
                             "(parallel=True kernel builds) always run "
                             "in the parent, never nested in a worker")
    parser.add_argument("--profile", action="store_true",
                        help="with --perf: run each point under cProfile "
                             "and write PROF_<point>.txt (top 25 by "
                             "cumulative time) next to the trajectory; "
                             "forces --jobs 1 semantics per point")
    parser.add_argument("--no-verify", action="store_true",
                        help="with --sweep: skip seeded-fingerprint "
                             "verification of swept points")
    parser.add_argument("--sweep-out", default=".",
                        help="directory for the SWEEP_*.json file")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else max(1, (os.cpu_count() or 2) - 1)

    if args.sweep:
        from .sweep import SweepMismatch, format_inventory, format_sweep, \
            run_sweep, write_sweep_trajectory
        scale = SCALES[args.scale]
        figures = args.artifacts or None
        if figures:
            known = set(EXPERIMENTS) | {"fingerprints"}
            unknown = [f for f in figures if f not in known]
            if unknown:
                print(f"unknown artifacts: {unknown}", file=sys.stderr)
                return 2
        if args.list:
            print(format_inventory(scale, figures))
            return 0
        try:
            report = run_sweep(scale=scale, jobs=jobs, figures=figures,
                               verify=not args.no_verify)
        except SweepMismatch as exc:
            print(f"SWEEP FINGERPRINT MISMATCH: {exc}", file=sys.stderr)
            return 1
        print(format_sweep(report))
        path = write_sweep_trajectory(report, out_dir=args.sweep_out)
        print(f"wrote {path}")
        if args.budget is not None and report["total_wall_s"] > args.budget:
            print(f"SWEEP BUDGET EXCEEDED: {report['total_wall_s']}s "
                  f"> {args.budget}s", file=sys.stderr)
            return 1
        return 0

    if args.perf:
        from .perf import format_perf, run_perf, write_trajectory
        report = run_perf(scale=SCALES[args.scale], jobs=jobs,
                          profile_dir=args.perf_out if args.profile
                          else None)
        print(format_perf(report))
        path = write_trajectory(report, out_dir=args.perf_out)
        print(f"wrote {path}")
        if args.budget is not None and report["total_wall_s"] > args.budget:
            print(f"PERF BUDGET EXCEEDED: {report['total_wall_s']}s "
                  f"> {args.budget}s", file=sys.stderr)
            return 1
        return 0

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    targets = list(EXPERIMENTS) if args.all else args.artifacts
    if not targets:
        parser.print_help()
        return 2
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown artifacts: {unknown}", file=sys.stderr)
        return 2
    scale = SCALES[args.scale]
    for target in targets:
        fn = EXPERIMENTS[target]
        start = time.time()
        result = fn() if target in _NO_SCALE else fn(scale=scale)
        print(format_experiment(result))
        print(f"[{target} took {time.time() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
