"""Versioned key-value state shared by the concurrency-control modules.

Each key carries a monotonically increasing version (the block/commit
sequence that last wrote it) — exactly what Fabric's MVCC validation and
TiDB's snapshot reads compare against.

Since the storage-engine refactor, ``VersionedStore`` is a *versioned
facade* over an optional :class:`repro.storage.engine.StorageEngine`: the
store keeps the (value, version) map the concurrency layers read (no
engine charges any simulated cost on that path), and mirrors every write
into the engine — the real index structure of the system's Table 2
storage choice.  ``commit(version)`` folds the engine's pending writes
once per block and returns the measured
:class:`~repro.storage.engine.CommitResult` the system charges through
the cost model.  With no engine attached the store behaves exactly as
before (plain dicts; the seed systems' default).
"""

from __future__ import annotations

from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..storage.engine import CommitResult, StorageEngine

__all__ = ["VersionedStore"]


class VersionedStore:
    """In-memory map of key -> (value, version), optionally engine-backed."""

    def __init__(self, engine: Optional["StorageEngine"] = None):
        self._data: dict[str, tuple[bytes, int]] = {}
        self.engine = engine
        self.writes = 0
        self.reads = 0

    def get(self, key: str) -> tuple[Optional[bytes], int]:
        """Return (value, version); (None, 0) when the key is absent."""
        self.reads += 1
        entry = self._data.get(key)
        if entry is None:
            return None, 0
        return entry

    def version(self, key: str) -> int:
        entry = self._data.get(key)
        return entry[1] if entry is not None else 0

    def put(self, key: str, value: bytes, version: int) -> None:
        self.writes += 1
        self._data[key] = (value, version)
        if self.engine is not None:
            self.engine.put(key, value)

    def apply_write_set(self, write_set: dict[str, bytes], version: int) -> None:
        data = self._data
        for key, value in write_set.items():
            self.writes += 1
            data[key] = (value, version)
        if self.engine is not None:
            self.engine.apply_write_set(write_set)

    def commit(self, version: int = 0) -> Optional["CommitResult"]:
        """Fold the engine's pending writes (one batch per block).

        Returns the engine's measured :class:`CommitResult`, or ``None``
        when no engine is attached.  Pure bookkeeping — schedules no
        simulation events; the *caller* charges the deltas.
        """
        if self.engine is None:
            return None
        return self.engine.commit(version)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def snapshot(self) -> dict[str, tuple[bytes, int]]:
        """Copy of the full state (tests / fork comparisons)."""
        return dict(self._data)

    def data_bytes(self) -> int:
        """Total bytes of current values (Fig. 12 state-storage accounting)."""
        return sum(len(value) for value, _version in self._data.values())
