"""Versioned key-value state shared by the concurrency-control modules.

Each key carries a monotonically increasing version (the block/commit
sequence that last wrote it) — exactly what Fabric's MVCC validation and
TiDB's snapshot reads compare against.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["VersionedStore"]


class VersionedStore:
    """In-memory map of key -> (value, version)."""

    def __init__(self):
        self._data: dict[str, tuple[bytes, int]] = {}
        self.writes = 0
        self.reads = 0

    def get(self, key: str) -> tuple[Optional[bytes], int]:
        """Return (value, version); (None, 0) when the key is absent."""
        self.reads += 1
        entry = self._data.get(key)
        if entry is None:
            return None, 0
        return entry

    def version(self, key: str) -> int:
        entry = self._data.get(key)
        return entry[1] if entry is not None else 0

    def put(self, key: str, value: bytes, version: int) -> None:
        self.writes += 1
        self._data[key] = (value, version)

    def apply_write_set(self, write_set: dict[str, bytes], version: int) -> None:
        for key, value in write_set.items():
            self.put(key, value, version)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def snapshot(self) -> dict[str, tuple[bytes, int]]:
        """Copy of the full state (tests / fork comparisons)."""
        return dict(self._data)

    def data_bytes(self) -> int:
        """Total bytes of current values (Fig. 12 state-storage accounting)."""
        return sum(len(value) for value, _version in self._data.values())
