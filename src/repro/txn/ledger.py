"""The append-only ledger: blocks chained by real hash pointers.

This is the storage abstraction the paper's Section 3.3 contrasts with
database storage: blockchains keep *all* history, hash-protected, while
databases keep only latest state.  Block serialization sizes follow the
Fabric block/envelope layout so Figure 12's bytes-per-record measurements
can be regenerated faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..crypto.hashing import NULL_HASH, hash_concat, sha256
from .transaction import Transaction

__all__ = ["BlockHeader", "Block", "Ledger", "envelope_size"]


def envelope_size(txn: Transaction, endorsements: int,
                  certificate_size: int = 1500, signature_size: int = 71) -> int:
    """Serialized size of one Fabric-style transaction envelope.

    The envelope carries the written value three times (proposal payload,
    rw-set write, proposal-response payload) plus the creator's certificate,
    one certificate + signature per endorsement, and fixed protobuf headers.
    This reproduces Figure 12's block-storage growth of roughly
    ``6.7 kB + 3 x record`` per transaction (at 3 endorsing peers).
    """
    payload = txn.payload_size
    header = 300                      # channel/tx headers, nonce, timestamps
    creator = certificate_size + signature_size
    endorse = endorsements * (certificate_size + signature_size)
    rwset_meta = 64 * max(1, len(txn.ops))
    return header + creator + endorse + rwset_meta + 3 * payload


@dataclass(frozen=True)
class BlockHeader:
    """Hash-chained block header."""

    number: int
    prev_hash: bytes
    txns_root: bytes
    state_root: bytes = NULL_HASH
    timestamp: float = 0.0

    def digest(self) -> bytes:
        return hash_concat(
            self.number.to_bytes(8, "big"),
            self.prev_hash,
            self.txns_root,
            self.state_root,
            int(self.timestamp * 1e9).to_bytes(12, "big"),
        )


@dataclass
class Block:
    """A block of transactions plus its serialized-size accounting."""

    header: BlockHeader
    txns: list[Transaction] = field(default_factory=list)
    endorsements_per_txn: int = 0

    @property
    def number(self) -> int:
        return self.header.number

    def digest(self) -> bytes:
        return self.header.digest()

    def serialized_size(self, certificate_size: int = 1500,
                        signature_size: int = 71) -> int:
        """Total on-disk bytes of this block (header + envelopes + metadata)."""
        body = sum(
            envelope_size(t, self.endorsements_per_txn,
                          certificate_size, signature_size)
            for t in self.txns
        )
        block_metadata = 128 + signature_size  # orderer signature + flags
        return 96 + body + block_metadata

    @staticmethod
    def txns_merkle_root(txns: Iterable[Transaction]) -> bytes:
        """Merkle root over transaction ids (real SHA-256)."""
        level = [sha256(t.txn_id.to_bytes(8, "big")) for t in txns]
        if not level:
            return NULL_HASH
        while len(level) > 1:
            if len(level) % 2:
                level.append(level[-1])
            level = [sha256(level[i] + level[i + 1])
                     for i in range(0, len(level), 2)]
        return level[0]


class Ledger:
    """An append-only chain of blocks with integrity verification.

    Authenticated state lives in the system's storage engine
    (:mod:`repro.storage.engine`); the sealing system commits its engine
    once per block and stamps the resulting root via the ``state_root``
    argument of :meth:`append_block`.
    """

    def __init__(self):
        self.blocks: list[Block] = []

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def tip_hash(self) -> bytes:
        return self.blocks[-1].digest() if self.blocks else NULL_HASH

    def append_block(self, txns: list[Transaction], timestamp: float = 0.0,
                     state_root: bytes = NULL_HASH,
                     endorsements_per_txn: int = 0) -> Block:
        """Seal ``txns`` into the next block and append it."""
        header = BlockHeader(
            number=self.height,
            prev_hash=self.tip_hash,
            txns_root=Block.txns_merkle_root(txns),
            state_root=state_root,
            timestamp=timestamp,
        )
        block = Block(header=header, txns=list(txns),
                      endorsements_per_txn=endorsements_per_txn)
        self.blocks.append(block)
        return block

    def verify(self) -> bool:
        """Recompute every hash pointer; False if any link is broken."""
        prev = NULL_HASH
        for i, block in enumerate(self.blocks):
            if block.header.number != i:
                return False
            if block.header.prev_hash != prev:
                return False
            if block.header.txns_root != Block.txns_merkle_root(block.txns):
                return False
            prev = block.digest()
        return True

    def total_bytes(self, certificate_size: int = 1500,
                    signature_size: int = 71) -> int:
        """Total ledger storage (Fig. 12 'Fabric-block' series)."""
        return sum(b.serialized_size(certificate_size, signature_size)
                   for b in self.blocks)

    def total_txns(self) -> int:
        return sum(len(b.txns) for b in self.blocks)

    def __iter__(self):
        return iter(self.blocks)
