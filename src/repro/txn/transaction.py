"""Transactions: the unit of work in every simulated system.

A transaction is a list of read/write operations over string keys with
byte-string values, plus (once executed) a read set with versions and a
write set — the Fabric-style "rw-set" that optimistic validation checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

__all__ = ["Op", "OpType", "Transaction", "TxnStatus", "AbortReason"]

_txn_counter = itertools.count(1)


class OpType(Enum):
    READ = "read"
    WRITE = "write"
    # read-modify-write: read the key, then write a new value derived from it
    UPDATE = "update"


class TxnStatus(Enum):
    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortReason(Enum):
    """Why a transaction aborted — matches the paper's Fig. 9/10 categories."""

    READ_WRITE_CONFLICT = "read-write conflict"     # Fabric MVCC check
    INCONSISTENT_READ = "inconsistent read"          # Fabric endorsement mismatch
    WRITE_WRITE_CONFLICT = "write-write conflict"    # TiDB percolator prewrite
    LOCK_TIMEOUT = "lock timeout"                    # 2PL deadlock avoidance
    LOGIC = "application logic"                      # e.g. Smallbank constraint
    COORDINATOR_ABORT = "coordinator abort"          # 2PC vote-abort


@dataclass
class Op:
    """One storage operation inside a transaction."""

    op_type: OpType
    key: str
    value: bytes = b""

    def __post_init__(self):
        # Plain attribute, not a property: op_type is fixed at creation
        # and this predicate runs in every system's hot path.
        self.is_write = self.op_type in (OpType.WRITE, OpType.UPDATE)


@dataclass
class Transaction:
    """A client transaction flowing through a simulated system."""

    ops: list[Op]
    client: str = "client-0"
    txn_id: int = field(default_factory=lambda: next(_txn_counter))
    submitted_at: float = 0.0
    status: TxnStatus = TxnStatus.PENDING
    abort_reason: Optional[AbortReason] = None
    commit_version: int = 0   # version/timestamp stamped at commit
    # Populated at execution time (Fabric-style rw-set):
    read_set: dict[str, int] = field(default_factory=dict)   # key -> version
    write_set: dict[str, bytes] = field(default_factory=dict)
    # Per-key installed versions, for systems that apply each write at its
    # own version stamp (e.g. tikv's per-raft-apply stamps under weakened
    # isolation).  ``None`` (the common case — one commit stamp for the
    # whole write set) costs no allocation; the MVSG checker prefers these
    # over ``commit_version`` when present.
    write_versions: Optional[dict[str, int]] = None
    # Optional application logic run at execution time against read values;
    # returning False signals a constraint violation (logic abort).
    logic: Optional[Callable[[dict[str, bytes]], Optional[dict[str, bytes]]]] = None
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def keys(self) -> list[str]:
        return [op.key for op in self.ops]

    @property
    def read_keys(self) -> list[str]:
        return [op.key for op in self.ops
                if op.op_type in (OpType.READ, OpType.UPDATE)]

    @property
    def write_keys(self) -> list[str]:
        return [op.key for op in self.ops if op.is_write]

    @property
    def is_read_only(self) -> bool:
        return all(op.op_type == OpType.READ for op in self.ops)

    @property
    def payload_size(self) -> int:
        """Total bytes of written values (drives message/ledger sizes).

        Cached on first access: ``ops`` is fixed at creation, and every
        system model re-reads this several times per hop.
        """
        size = self._payload_size
        if size is None:
            size = self._payload_size = sum(
                len(op.value) for op in self.ops if op.is_write)
        return size

    _payload_size: Optional[int] = field(
        default=None, repr=False, compare=False)

    def mark_committed(self) -> None:
        self.status = TxnStatus.COMMITTED

    def mark_aborted(self, reason: AbortReason) -> None:
        self.status = TxnStatus.ABORTED
        self.abort_reason = reason

    @classmethod
    def write(cls, key: str, value: bytes, client: str = "client-0") -> "Transaction":
        """Convenience: a single blind write."""
        return cls(ops=[Op(OpType.WRITE, key, value)], client=client)

    @classmethod
    def read(cls, key: str, client: str = "client-0") -> "Transaction":
        """Convenience: a single read."""
        return cls(ops=[Op(OpType.READ, key)], client=client)

    @classmethod
    def update(cls, key: str, value: bytes, client: str = "client-0") -> "Transaction":
        """Convenience: a single read-modify-write."""
        return cls(ops=[Op(OpType.UPDATE, key, value)], client=client)
