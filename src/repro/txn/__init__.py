"""Transactions, versioned state, and the append-only ledger."""

from .ledger import Block, BlockHeader, Ledger, envelope_size
from .state import VersionedStore
from .transaction import AbortReason, Op, OpType, Transaction, TxnStatus

__all__ = [
    "AbortReason",
    "Block",
    "BlockHeader",
    "Ledger",
    "Op",
    "OpType",
    "Transaction",
    "TxnStatus",
    "VersionedStore",
    "envelope_size",
]
