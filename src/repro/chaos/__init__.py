"""Chaos engineering for the simulated design space.

Declarative fault schedules (:mod:`.scenario`), a compiler onto the
simulation primitives (:mod:`.injector`), continuously-checked safety and
liveness invariants (:mod:`.invariants`), and a one-call run harness with
deterministic chaos fingerprints (:mod:`.harness`).
"""

from .harness import ChaosResult, CONSERVED_PROCEDURES, run_chaos_point
from .injector import ChaosInjector, discover_groups
from .invariants import (ConservedBalances, Invariant, InvariantSuite,
                         LivenessAfterHeal, NoAnomalies, NoLedgerFork,
                         PrefixConsistency, default_invariants)
from .scenario import (AsymPartition, Censor, ClockSkew, CrashRestart,
                       Equivocate, GrayNode, LeaderChurn, Partition,
                       Scenario, ShardSplit, SilentLeader, Step, STEP_KINDS)

__all__ = [
    "Scenario", "Step", "STEP_KINDS", "Partition", "AsymPartition",
    "GrayNode", "CrashRestart", "LeaderChurn", "ClockSkew", "Equivocate",
    "Censor", "SilentLeader", "ShardSplit",
    "ChaosInjector", "discover_groups",
    "Invariant", "InvariantSuite", "NoLedgerFork", "PrefixConsistency",
    "ConservedBalances", "LivenessAfterHeal", "NoAnomalies",
    "default_invariants",
    "ChaosResult", "run_chaos_point", "CONSERVED_PROCEDURES",
]
