"""Declarative chaos scenarios: timed fault steps over a simulated cluster.

A :class:`Scenario` is a named, seeded-fingerprint-stable schedule of
:class:`Step` objects — each a window (or instant) of one fault class the
paper's design space is sensitive to: network partitions (symmetric and
asymmetric), gray/slow nodes, crash-restart with *real* WAL replay, leader
churn, clock skew against Spanner's commit-wait, and byzantine primary
behaviours (equivocation, censorship, silent leader) for the BFT arms.

Scenarios are pure data: the :class:`repro.chaos.injector.ChaosInjector`
compiles the schedule onto kernel timers at arm time, and the
:mod:`repro.chaos.invariants` layer checks safety/liveness against the
run.  ``Scenario.fingerprint()`` hashes the canonical schedule so chaos
runs carry the same byte-identical determinism discipline as clean runs
(tests/integration/test_run_fingerprints.py).

Node selectors: steps that name a node accept a concrete node name
(``"etcd0"``) or a role selector resolved at fire time — ``"leader"``
(current consensus leader/primary) or ``"engine-host"`` (the node whose
disk hosts the storage engine).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Optional

__all__ = ["Step", "Partition", "AsymPartition", "GrayNode", "CrashRestart",
           "LeaderChurn", "ClockSkew", "Equivocate", "Censor", "SilentLeader",
           "ShardSplit", "Scenario", "STEP_KINDS"]

#: Role selectors resolvable at fire time instead of a concrete node name.
ROLE_SELECTORS = ("leader", "engine-host")


@dataclass(frozen=True)
class Step:
    """Base of every scenario step: ``at`` is the (absolute) start time."""

    at: float

    def describe(self) -> str:
        """Canonical one-line form (stable across runs — fingerprinted)."""
        parts = [f"{f.name}={getattr(self, f.name)!r}"
                 for f in fields(self)]
        return f"{type(self).__name__}({', '.join(parts)})"

    @property
    def ends_at(self) -> float:
        until = getattr(self, "until", None)
        return until if until is not None else self.at

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.describe()}: at must be >= 0")
        until = getattr(self, "until", None)
        if until is not None and until <= self.at:
            raise ValueError(f"{self.describe()}: until must be > at")


@dataclass(frozen=True)
class Partition(Step):
    """Symmetric partition between two node groups, healed at ``until``.

    ``until=None`` leaves the partition in place for the rest of the run
    (the liveness invariant should then be disabled).
    """

    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if not self.group_a or not self.group_b:
            raise ValueError(f"{self.describe()}: both groups must be "
                             "non-empty")


@dataclass(frozen=True)
class AsymPartition(Partition):
    """One-way partition: ``group_a``'s traffic to ``group_b`` is lost
    while the reverse direction still flows — the classic asymmetric-link
    failure that breaks protocols assuming bidirectional reachability."""


@dataclass(frozen=True)
class GrayNode(Step):
    """A gray/slow node: every link touching ``node`` gains ``extra_delay``
    seconds of one-way latency and drops ``drop_rate`` of its messages —
    degraded but not dead, the failure mode timeouts misclassify."""

    node: str = ""
    extra_delay: float = 0.005
    drop_rate: float = 0.0
    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError(f"{self.describe()}: node is required")
        if not (0.0 <= self.drop_rate < 1.0):
            raise ValueError(f"{self.describe()}: drop_rate must be in "
                             "[0, 1)")


@dataclass(frozen=True)
class CrashRestart(Step):
    """Crash-stop ``node`` at ``at``; restart it at ``restart_at``.

    The restart is a *real* recovery: the node's inboxes are reset, its
    registered protocol roles re-arm, and — when the node hosts the
    system's storage engine — the engine rebuilds by replaying its WAL
    (``SystemConfig.extras["wal"]`` required), with the replay cost
    charged on the recovering node's disk.
    """

    node: str = ""
    restart_at: float = 0.0

    @property
    def ends_at(self) -> float:
        return self.restart_at

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError(f"{self.describe()}: node is required")
        if self.restart_at <= self.at:
            raise ValueError(f"{self.describe()}: restart_at must be > at")


@dataclass(frozen=True)
class LeaderChurn(Step):
    """Repeatedly crash whoever currently leads, every ``period`` seconds
    from ``at`` to ``until``, restarting each victim ``downtime`` later —
    the rolling-leader-failure pattern that stresses election liveness."""

    until: float = 0.0
    period: float = 2.0
    downtime: float = 0.5

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.describe()}: at must be >= 0")
        if self.until <= self.at:
            raise ValueError(f"{self.describe()}: until must be > at")
        if self.downtime >= self.period:
            raise ValueError(f"{self.describe()}: downtime must be < period "
                             "(the victim must restart before the next kill)")


@dataclass(frozen=True)
class ClockSkew(Step):
    """Skew ``node``'s clock-uncertainty bound by ``skew`` seconds.

    Fault surface for Spanner's TrueTime commit-wait: a skewed shard
    leader must wait out the *inflated* uncertainty on every commit, so
    latency rises while correctness holds (the paper's Sec. 4 contrast
    of ordering mechanisms).
    """

    node: str = ""
    skew: float = 0.01
    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError(f"{self.describe()}: node is required")
        if self.skew < 0:
            raise ValueError(f"{self.describe()}: skew must be >= 0")


@dataclass(frozen=True)
class Equivocate(Step):
    """The current BFT primary equivocates (conflicting pre-prepares to
    different replica halves) between ``at`` and ``until``.  Per-digest
    quorums must keep safety; sequences proposed in the window stall, so
    scenarios using this typically set ``expect_liveness=False``."""

    until: Optional[float] = None


@dataclass(frozen=True)
class Censor(Step):
    """The current BFT primary silently censors matching transactions.

    ``match`` is a substring tested against every operation key in the
    proposed item (quorum proposes whole blocks — a block is censored if
    any transaction in it matches; ``match=""`` censors everything).
    Censored proposals simply vanish: their commit events never fire and
    clients time out, which is precisely the observable signature.
    """

    match: str = ""
    until: Optional[float] = None


@dataclass(frozen=True)
class SilentLeader(Step):
    """The current BFT primary goes silent (no pre-prepares, no
    heartbeats) between ``at`` and ``until`` — followers must detect the
    dead primary and vote in a view change to restore liveness."""

    until: Optional[float] = None


@dataclass(frozen=True)
class ShardSplit(Step):
    """Force one hot-range split at ``at`` (elastic resharding mid-run).

    Requires a system with a load-aware partitioner — e.g.
    ``AhlSystem(hot_split=True)`` — whose ``maybe_split`` re-homes half
    of the hottest key range onto the coldest shard.  The forced split
    bypasses the load threshold but not the mechanism, so the scenario
    can exercise mid-run resharding even on a balanced workload; if no
    range has recorded any accesses yet the step is a logged no-op.
    """


#: Every declarative step type the injector compiles.
STEP_KINDS = (Partition, AsymPartition, GrayNode, CrashRestart, LeaderChurn,
              ClockSkew, Equivocate, Censor, SilentLeader, ShardSplit)


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic schedule of fault steps.

    ``check_interval`` paces the continuous invariant checker;
    ``settle`` extends the run past the last fault window so
    liveness-after-heal has a window to observe; ``expect_liveness``
    switches the liveness invariant off for scenarios whose faults
    intentionally wedge progress (unhealed partitions, equivocation).
    """

    name: str
    steps: tuple[Step, ...] = ()
    check_interval: float = 0.5
    settle: float = 5.0
    expect_liveness: bool = True

    def __post_init__(self):
        if not self.steps:
            raise ValueError("a scenario needs at least one step")
        for step in self.steps:
            step.validate()

    @property
    def end_time(self) -> float:
        """Time the last fault window closes (heal point)."""
        return max(step.ends_at for step in self.steps)

    @property
    def horizon(self) -> float:
        """Total run length: last heal plus the settle window."""
        return self.end_time + self.settle

    def canonical(self) -> str:
        """Stable textual form of the full schedule."""
        lines = [f"scenario {self.name} check={self.check_interval!r} "
                 f"settle={self.settle!r} liveness={self.expect_liveness}"]
        lines += [step.describe() for step in self.steps]
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical schedule (seeded-run determinism gate)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()
