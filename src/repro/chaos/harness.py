"""One-call chaos runs: scenario + system + workload + invariants.

:func:`run_chaos_point` mirrors :func:`repro.bench.harness.run_point` but
drives the system *through* a fault schedule: the scenario is armed by
the builder before data loading (``SystemConfig.extras["scenario"]``),
the driver runs time-bounded to the scenario horizon, invariants are
checked continuously and at the end, and the whole run folds into a
:class:`ChaosResult` whose :meth:`~ChaosResult.digest` is byte-identical
across same-seed repetitions — chaos runs are first-class citizens of the
repo's determinism discipline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..core.builder import build_system
from ..sim.kernel import Environment
from ..systems.base import SystemConfig
from ..workloads.driver import DriverConfig, RunResult, run_closed_loop
from ..workloads.smallbank import SmallbankConfig, SmallbankWorkload
from ..workloads.ycsb import YcsbConfig, YcsbWorkload
from .invariants import Invariant, InvariantSuite, default_invariants
from .scenario import Scenario

__all__ = ["ChaosResult", "run_chaos_point", "CONSERVED_PROCEDURES"]

#: The two money-moving Smallbank procedures: with the mix restricted to
#: these, the sum of all balances is a run-long invariant.
CONSERVED_PROCEDURES = ("send_payment", "amalgamate")


@dataclass
class ChaosResult:
    """Outcome of one chaos run: measurement + verdicts + audit trail."""

    run: RunResult
    scenario_fingerprint: str
    injection_log: tuple[str, ...]
    violations: tuple[str, ...]
    invariant_names: tuple[str, ...]
    checks: int
    extras: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """SHA-256 over everything observable about the run.

        Covers the scenario schedule, the as-fired injection log, the
        measured numbers (exact float reprs) and the invariant verdicts
        — two same-seed runs must produce the same digest byte for byte.
        """
        h = hashlib.sha256()
        h.update(self.scenario_fingerprint.encode())
        for line in self.injection_log:
            h.update(line.encode())
        run = self.run
        h.update(repr((run.tps, run.measured, run.mean_latency,
                       run.stats.aborted, run.timeouts)).encode())
        for line in self.violations:
            h.update(line.encode())
        return h.hexdigest()


def run_chaos_point(
    system: str,
    scenario: Scenario,
    num_nodes: int = 5,
    seed: int = 0,
    clients: int = 8,
    think_time: float = 0.02,
    workload: str = "smallbank-conserved",
    record_count: int = 200,
    record_size: int = 64,
    invariants: Optional[list[Invariant]] = None,
    system_kwargs: Optional[dict] = None,
    extras: Optional[dict] = None,
) -> ChaosResult:
    """Run ``system`` under ``scenario`` and check invariants.

    The run is time-bounded to the scenario horizon (last heal plus the
    settle window) rather than transaction-count-bounded, so every fault
    window actually elapses.  Clients are *paced* (``think_time``): fault
    schedules live on protocol timescales (heartbeats, view-change
    timeouts — seconds), and a saturating closed loop over seconds of
    simulated time would mean simulating 10^5 transactions per run.
    ``workload`` is ``"smallbank-conserved"`` (money-moving procedures
    only — conservation becomes a checked invariant), ``"smallbank"``
    (full mix) or ``"ycsb"``.

    Keyspaces default small (``record_count``): chaos runs are about
    survival under faults, not cache behaviour, and a small hot set makes
    the conservation sweep cheap.
    """
    env = Environment()
    config = SystemConfig(num_nodes=num_nodes, seed=seed,
                          extras={**(extras or {}), "scenario": scenario})
    sys_obj = build_system(env, system, config, **(system_kwargs or {}))

    conserved = workload == "smallbank-conserved"
    if workload in ("smallbank", "smallbank-conserved"):
        wl = SmallbankWorkload(SmallbankConfig(
            num_accounts=record_count, seed=seed + 1,
            procedures=CONSERVED_PROCEDURES if conserved else None))
        next_txn = wl.next_transaction
    elif workload == "ycsb":
        wl = YcsbWorkload(YcsbConfig(record_count=record_count,
                                     record_size=record_size,
                                     seed=seed + 1))
        next_txn = wl.next_update
    else:
        raise ValueError(f"unknown workload {workload!r}")

    sys_obj.load(wl.initial_records())

    suite = InvariantSuite(
        invariants if invariants is not None
        else default_invariants(conserved=conserved),
        scenario)
    suite.setup(sys_obj)
    suite.start()

    driver = DriverConfig(
        clients=clients,
        warmup_txns=0,                    # measure the whole stormy run
        measure_txns=10 ** 9,             # bounded by time, not count
        max_sim_time=scenario.horizon,
        txn_timeout=5.0,                  # wedged proposals must not park
        #                                   clients for the default 60 s
        think_time=think_time,
    )
    run = run_closed_loop(env, sys_obj, next_txn, driver)
    suite.finalize()

    injector = getattr(sys_obj, "chaos", None)
    log = tuple(injector.log) if injector is not None else ()
    result = ChaosResult(
        run=run,
        scenario_fingerprint=scenario.fingerprint(),
        injection_log=log,
        violations=tuple(suite.violations),
        invariant_names=tuple(inv.name for inv in suite.invariants),
        checks=suite.checks,
    )
    result.extras["system"] = sys_obj
    return result
