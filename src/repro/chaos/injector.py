"""Compile a :class:`~repro.chaos.scenario.Scenario` onto kernel timers.

The injector is the bridge between the declarative schedule and the
simulation primitives: partitions and link degradation land on
:class:`repro.sim.network.Network`, crash-restart on
:class:`repro.sim.node.Node` plus — when the victim hosts the system's
storage engine — a *real* WAL replay through
:meth:`repro.storage.engine.StorageEngine.recover`, byzantine windows on
the PBFT-family replica toggles, clock skew on ``Node.clock_skew``.

Role selectors (``"leader"``, ``"engine-host"``) resolve at *fire* time,
so a ``LeaderChurn`` step always kills whoever currently leads, not
whoever led at arm time.

Every action appends a line to :attr:`ChaosInjector.log` stamped with the
simulated time — the injection log is part of the chaos fingerprint, so a
scenario that fires differently across two same-seed runs fails the
determinism gate loudly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.kernel import Environment
from ..sim.network import Network, PartitionHandle
from ..sim.node import Node
from .scenario import (AsymPartition, Censor, ClockSkew, CrashRestart,
                       Equivocate, GrayNode, LeaderChurn, Partition,
                       Scenario, ShardSplit, SilentLeader, Step)

__all__ = ["ChaosInjector", "discover_groups"]

_BYZANTINE_STEPS = (Equivocate, Censor, SilentLeader)
_CRASH_STEPS = (CrashRestart, LeaderChurn)


def discover_groups(system: Any) -> list:
    """Collect every consensus group a system object exposes.

    Dedicated models and hybrids hang their groups off well-known
    attributes: ``raft`` (etcd), ``group`` (quorum), ``backend``
    (hybrids), ``cluster.groups`` (TiKV's multi-raft regions).
    """
    groups: list = []
    for attr in ("raft", "group", "backend"):
        g = getattr(system, attr, None)
        if g is not None and hasattr(g, "replicas"):
            groups.append(g)
    cluster = getattr(system, "cluster", None)
    for seq_owner in (system, cluster):
        if seq_owner is None:
            continue
        for g in getattr(seq_owner, "groups", ()) or ():
            if hasattr(g, "replicas"):
                groups.append(g)
    return groups


class ChaosInjector:
    """Arms one scenario against one simulated cluster.

    Constructed explicitly (tests drive bare consensus groups without a
    full system) or via :meth:`for_system`, which discovers the network,
    nodes, consensus groups and storage engine from a
    :class:`~repro.systems.base.TransactionalSystem`.
    """

    def __init__(
        self,
        env: Environment,
        scenario: Scenario,
        network: Optional[Network] = None,
        nodes: tuple[Node, ...] = (),
        groups: tuple = (),
        engine: Any = None,
        engine_host: Optional[Node] = None,
        costs: Any = None,
        partitioner: Any = None,
    ):
        self.env = env
        self.scenario = scenario
        self.network = network
        self.nodes = tuple(nodes)
        self.groups = tuple(groups)
        self.engine = engine
        self.engine_host = engine_host
        self.partitioner = partitioner
        self.costs = costs or (network.costs if network is not None else None)
        self.log: list[str] = []
        self.armed = False
        # restart bookkeeping: replicas whose byzantine toggles a window
        # flipped on, so the off-edge resets the same replica even if the
        # view has moved past it meanwhile.
        self._byz_owners: dict[int, Any] = {}

    @classmethod
    def for_system(cls, system: Any, scenario: Scenario) -> "ChaosInjector":
        engine = getattr(system, "engine", None)
        cluster = getattr(system, "cluster", None)
        if engine is None and cluster is not None:
            engine = getattr(cluster, "engine", None)
        nodes = tuple(system.nodes)
        host = None
        if engine is not None and nodes:
            # Dedicated models charge engine work on their first server
            # (etcd/quorum block producer, TiKV store 0).
            servers = getattr(system, "servers", None)
            host = servers[0] if servers else nodes[0]
        return cls(system.env, scenario, network=system.network,
                   nodes=nodes, groups=tuple(discover_groups(system)),
                   engine=engine, engine_host=host, costs=system.costs,
                   partitioner=getattr(system, "partitioner", None))

    # -- validation / arming ----------------------------------------------

    def _validate(self) -> None:
        steps = self.scenario.steps
        if any(isinstance(s, (Partition, GrayNode)) for s in steps) \
                and self.network is None:
            raise ValueError("scenario has network steps but no network")
        if any(isinstance(s, _CRASH_STEPS) for s in steps):
            if not self.nodes:
                raise ValueError("scenario has crash steps but no nodes")
            if self.engine is not None and self.engine.wal is None:
                raise ValueError(
                    "crash-restart with a storage engine requires a WAL "
                    "(SystemConfig.extras['wal'] = True) — without one "
                    "there is nothing to recover from")
        if any(isinstance(s, _BYZANTINE_STEPS) for s in steps) \
                and not any(hasattr(g, "primary") for g in self.groups):
            raise ValueError("byzantine steps need a BFT-family consensus "
                             "group (PBFT/IBFT)")
        if any(isinstance(s, LeaderChurn) for s in steps) \
                and not self.groups:
            raise ValueError("LeaderChurn needs a consensus group to "
                             "resolve the current leader")
        if any(isinstance(s, ShardSplit) for s in steps) \
                and not hasattr(self.partitioner, "maybe_split"):
            raise ValueError("ShardSplit needs a load-aware partitioner "
                             "(e.g. AhlSystem(hot_split=True))")

    def arm(self) -> None:
        """Validate and schedule every step onto kernel timers.

        Must run **before** ``system.load()``: crash scenarios disable
        WAL checkpoint truncation so the genesis records stay replayable
        for the whole run (a real system would recover the checkpoint
        image first; the simulated engines model recovery as full-log
        replay instead).
        """
        if self.armed:
            raise RuntimeError("injector already armed")
        self._validate()
        if (self.engine is not None and self.engine.wal is not None
                and any(isinstance(s, _CRASH_STEPS)
                        for s in self.scenario.steps)):
            self.engine.wal_checkpoint_bytes = None
        for step in self.scenario.steps:
            self._arm_step(step)
        self.armed = True

    def _at(self, t: float, fn: Callable[[], None]) -> None:
        delay = t - self.env.now
        self.env.timeout(delay if delay > 0 else 0.0).callbacks.append(
            lambda _ev: fn())

    def _note(self, text: str) -> None:
        self.log.append(f"{self.env.now:.6f} {text}")

    # -- node / role resolution -------------------------------------------

    def _leader_node(self) -> Optional[Node]:
        for group in self.groups:
            leader = getattr(group, "leader", None)
            if leader is None:
                primary = getattr(group, "primary", None)
                leader = primary
            if leader is not None:
                return leader.node
        return None

    def _primary_replica(self):
        for group in self.groups:
            if hasattr(group, "primary"):
                primary = group.primary
                if primary is not None:
                    return primary
        return None

    def _resolve(self, selector: str) -> Optional[Node]:
        if selector == "leader":
            return self._leader_node()
        if selector == "engine-host":
            return self.engine_host
        if self.network is not None:
            return self.network.nodes[selector]
        for node in self.nodes:
            if node.name == selector:
                return node
        raise KeyError(f"unknown node {selector!r}")

    # -- step compilation --------------------------------------------------

    def _arm_step(self, step: Step) -> None:
        if isinstance(step, Partition):        # covers AsymPartition
            self._at(step.at, lambda: self._start_partition(step))
        elif isinstance(step, GrayNode):
            self._at(step.at, lambda: self._start_gray(step))
        elif isinstance(step, CrashRestart):
            self._at(step.at, lambda: self._crash_step(step))
        elif isinstance(step, LeaderChurn):
            self._at(step.at, lambda: self._churn_tick(step))
        elif isinstance(step, ClockSkew):
            self._at(step.at, lambda: self._start_skew(step))
        elif isinstance(step, _BYZANTINE_STEPS):
            self._at(step.at, lambda: self._start_byzantine(step))
        elif isinstance(step, ShardSplit):
            self._at(step.at, lambda: self._shard_split(step))
        else:  # pragma: no cover - new step types must be compiled here
            raise TypeError(f"unknown step type {type(step).__name__}")

    # partitions

    def _start_partition(self, step: Partition) -> None:
        symmetric = not isinstance(step, AsymPartition)
        handle = self.network.partition(set(step.group_a), set(step.group_b),
                                        symmetric=symmetric)
        arrow = "<->" if symmetric else "->"
        self._note(f"partition {sorted(step.group_a)} {arrow} "
                   f"{sorted(step.group_b)}")
        if step.until is not None:
            self._at(step.until, lambda: self._heal_partition(handle))

    def _heal_partition(self, handle: PartitionHandle) -> None:
        self.network.heal(handle)
        self._note(f"heal {sorted(handle.group_a)} | "
                   f"{sorted(handle.group_b)}")

    # gray / slow node

    def _gray_links(self, name: str):
        for other in self.network.nodes:
            if other != name:
                yield (name, other)
                yield (other, name)

    def _start_gray(self, step: GrayNode) -> None:
        node = self._resolve(step.node)
        for src, dst in self._gray_links(node.name):
            self.network.set_link_delay(src, dst, step.extra_delay)
            if step.drop_rate:
                self.network.set_drop_rate(src, dst, step.drop_rate)
        self._note(f"gray {node.name} +{step.extra_delay:g}s "
                   f"drop={step.drop_rate:g}")
        if step.until is not None:
            self._at(step.until, lambda: self._end_gray(step, node))

    def _end_gray(self, step: GrayNode, node: Node) -> None:
        for src, dst in self._gray_links(node.name):
            self.network.set_link_delay(src, dst, 0.0)
            if step.drop_rate:
                self.network.set_drop_rate(src, dst, 0.0)
        self._note(f"ungray {node.name}")

    # crash / restart — the recovery loop

    def _crash_step(self, step: CrashRestart) -> None:
        node = self._resolve(step.node)
        if node is None or node.crashed:
            self._note(f"crash {step.node}: no-op (unresolved or down)")
            return
        self._crash(node)
        self._at(step.restart_at, lambda: self._restart(node))

    def _crash(self, node: Node) -> None:
        node.crash()
        if self.engine is not None and node is self.engine_host:
            self.engine.crash()
            self._note(f"crash {node.name} (engine host: unsynced WAL "
                       "tail dropped)")
        else:
            self._note(f"crash {node.name}")

    def _restart(self, node: Node) -> None:
        if not node.crashed:
            return
        node.recover()
        if self.engine is not None and node is self.engine_host:
            rec = self.engine.recover()
            replay = self.costs.wal_replay_time(rec.records,
                                                rec.bytes_replayed)
            node.disk.serve_event(replay)
            self._note(f"restart {node.name}: replayed {rec.records} WAL "
                       f"records ({rec.bytes_replayed} B) in {replay:.6f}s")
        else:
            self._note(f"restart {node.name}")

    # leader churn

    def _churn_tick(self, step: LeaderChurn) -> None:
        if self.env.now >= step.until:
            self._note("leader churn window closed")
            return
        victim = self._leader_node()
        if victim is not None and not victim.crashed:
            self._crash(victim)
            self._at(self.env.now + step.downtime,
                     lambda: self._restart(victim))
        else:
            self._note("leader churn tick: no live leader to kill")
        self._at(self.env.now + step.period, lambda: self._churn_tick(step))

    # clock skew

    def _start_skew(self, step: ClockSkew) -> None:
        node = self._resolve(step.node)
        node.clock_skew = step.skew
        self._note(f"clock skew {node.name} +{step.skew:g}s")
        if step.until is not None:
            self._at(step.until, lambda: self._end_skew(node))

    def _end_skew(self, node: Node) -> None:
        node.clock_skew = 0.0
        self._note(f"clock skew {node.name} cleared")

    # elastic resharding

    def _shard_split(self, _step: ShardSplit) -> None:
        entry = self.partitioner.maybe_split(force=True)
        if entry is None:
            self._note("shard-split skipped (no recorded load)")
            return
        self._note(f"shard-split range {entry['range']} stripe "
                   f"{entry['stripe']}: {entry['moved_half']} half "
                   f"{entry['from_shard']} -> {entry['to_shard']} "
                   f"(share before {entry['max_share_before']:.4f})")

    # byzantine windows (BFT-family primaries)

    def _start_byzantine(self, step: Step) -> None:
        replica = self._primary_replica()
        if replica is None:
            self._note(f"{type(step).__name__}: no live primary, skipped")
            return
        if isinstance(step, Equivocate):
            replica.byzantine_equivocator = True
            self._note(f"equivocate on at primary {replica.name}")
        elif isinstance(step, Censor):
            replica.censor_predicate = _censor_predicate(step.match)
            self._note(f"censor {step.match!r} on at primary "
                       f"{replica.name}")
        else:  # SilentLeader
            replica.silent = True
            self._note(f"primary {replica.name} silenced")
        self._byz_owners[id(step)] = replica
        if step.until is not None:
            self._at(step.until, lambda: self._end_byzantine(step))

    def _end_byzantine(self, step: Step) -> None:
        replica = self._byz_owners.pop(id(step), None)
        if replica is None:
            return
        if isinstance(step, Equivocate):
            replica.byzantine_equivocator = False
            self._note(f"equivocate off at {replica.name}")
        elif isinstance(step, Censor):
            replica.censor_predicate = None
            released = replica.release_stranded()
            self._note(f"censor off at {replica.name} "
                       f"({replica.censored_count} censored, "
                       f"{released} released)")
        else:
            replica.silent = False
            released = replica.release_stranded()
            self._note(f"{replica.name} unsilenced "
                       f"({replica.silenced_count} swallowed, "
                       f"{released} released)")


def _censor_predicate(match: str) -> Callable[[Any], bool]:
    """Build the item predicate a :class:`Censor` step installs.

    Items are transactions or whole blocks of transactions (quorum
    proposes ``list[Transaction]``); a block is censored if any of its
    transactions touches a matching key.  ``match=""`` censors
    everything.
    """

    def predicate(item: Any) -> bool:
        txns = item if isinstance(item, list) else [item]
        for txn in txns:
            for op in getattr(txn, "ops", ()) or ():
                if match in op.key:
                    return True
        return not match

    return predicate
