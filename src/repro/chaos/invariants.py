"""Safety and liveness invariants checked against chaos runs.

Safety invariants hold *throughout* a run — under partitions, crashes and
byzantine primaries alike: committed ledgers never fork, committed
prefixes are never rewritten, SmallBank money is conserved.  The liveness
invariant only binds after the last fault window heals (and is switched
off entirely for scenarios whose faults intentionally wedge progress —
``Scenario.expect_liveness=False``).

An :class:`InvariantSuite` runs every invariant continuously (a checker
process paced by ``Scenario.check_interval``) and once more after the run
ends; violations carry the simulated time they were observed, so they are
deterministic and fingerprintable like everything else.
"""

from __future__ import annotations

from typing import Any, Optional

from .injector import discover_groups
from .scenario import Scenario

__all__ = ["Invariant", "NoLedgerFork", "PrefixConsistency",
           "ConservedBalances", "LivenessAfterHeal", "NoAnomalies",
           "InvariantSuite", "default_invariants"]


class Invariant:
    """One checkable property of a running system."""

    name = "abstract"

    def setup(self, system: Any, scenario: Scenario) -> None:
        """Capture baselines before the run starts."""

    def check(self, system: Any, now: float) -> Optional[str]:
        """Continuous check; return a violation message or ``None``."""
        return None

    def final(self, system: Any, now: float) -> Optional[str]:
        """End-of-run check; defaults to one last continuous check."""
        return self.check(system, now)


def _live_replicas(group) -> list:
    return [r for r in group.replicas.values() if not r.node.crashed]


class NoLedgerFork(Invariant):
    """No two replicas ever commit different items at the same position.

    Covers the system ledger (hash chain must verify) and every
    consensus group: the common committed prefix across live replicas
    must be identical — compared incrementally (each committed position
    is examined once), so continuous checking stays O(new entries).
    """

    name = "no-ledger-fork"

    def setup(self, system: Any, scenario: Scenario) -> None:
        self._groups = discover_groups(system)
        self._checked = [0] * len(self._groups)

    def check(self, system: Any, now: float) -> Optional[str]:
        ledger = getattr(system, "ledger", None)
        if ledger is not None and not ledger.verify():
            return "ledger hash chain broken"
        for gi, group in enumerate(self._groups):
            replicas = _live_replicas(group)
            if len(replicas) < 2:
                continue
            base = replicas[0]
            if hasattr(base, "commit_index"):          # raft family
                upto = min(r.commit_index for r in replicas)
                for idx in range(self._checked[gi], upto):
                    item = base.log[idx].item
                    for other in replicas[1:]:
                        theirs = other.log[idx].item
                        if theirs is not item and theirs != item:
                            return (f"raft fork at index {idx + 1}: "
                                    f"{base.name} vs {other.name}")
                self._checked[gi] = upto
            elif hasattr(base, "executed_seq"):        # pbft family
                upto = min(r.executed_seq for r in replicas)
                for seq in range(self._checked[gi] + 1, upto + 1):
                    items = base._history.get(seq)
                    for other in replicas[1:]:
                        theirs = other._history.get(seq)
                        if (items is not None and theirs is not None
                                and theirs is not items and theirs != items):
                            return (f"bft fork at seq {seq}: "
                                    f"{base.name} vs {other.name}")
                self._checked[gi] = upto
        return None


class PrefixConsistency(Invariant):
    """Committed history only ever *extends*: the ledger never shrinks or
    rewrites a block it already committed, and every replica's commit
    point is monotone — reads of the committed prefix stay consistent
    across checks (the paper's ledger-database safety baseline)."""

    name = "prefix-consistency"

    def setup(self, system: Any, scenario: Scenario) -> None:
        self._groups = discover_groups(system)
        self._height = 0
        self._tip = None
        self._marks: dict[int, int] = {}    # id(replica) -> commit point

    def check(self, system: Any, now: float) -> Optional[str]:
        ledger = getattr(system, "ledger", None)
        if ledger is not None:
            if ledger.height < self._height:
                return (f"ledger shrank: {ledger.height} < {self._height}")
            if self._height and self._tip is not None:
                digest = ledger.blocks[self._height - 1].digest()
                if digest != self._tip:
                    return f"committed block {self._height} rewritten"
            self._height = ledger.height
            if ledger.height:
                self._tip = ledger.blocks[ledger.height - 1].digest()
        for group in self._groups:
            for replica in group.replicas.values():
                point = getattr(replica, "commit_index",
                                getattr(replica, "executed_seq", 0))
                prev = self._marks.get(id(replica), 0)
                if point < prev:
                    return (f"{replica.name} commit point moved backwards: "
                            f"{point} < {prev}")
                self._marks[id(replica)] = point
        return None


class ConservedBalances(Invariant):
    """SmallBank money conservation: the sum of all checking and savings
    balances equals the loaded total at every atomic point.

    Only meaningful when the workload is restricted to the conserving
    procedures (``send_payment``, ``amalgamate`` — see
    ``SmallbankConfig.procedures``); deposits and write-checks change the
    total by design.
    """

    name = "conserved-balances"

    def setup(self, system: Any, scenario: Scenario) -> None:
        self._initial = self._total(system)

    @staticmethod
    def _total(system: Any) -> Optional[int]:
        from ..workloads.smallbank import decode_balance
        state = getattr(system, "state", None)
        if state is None:
            cluster = getattr(system, "cluster", None)
            state = getattr(cluster, "state", None) if cluster else None
        if state is None:
            return None
        total = 0
        for key in state.keys():
            if key.startswith(("checking", "savings")):
                value, _version = state.get(key)
                total += decode_balance(value)
        return total

    def check(self, system: Any, now: float) -> Optional[str]:
        total = self._total(system)
        if total is None or self._initial is None:
            return None
        if total != self._initial:
            return (f"balance sum drifted: {total} != {self._initial} "
                    f"(loaded)")
        return None


class LivenessAfterHeal(Invariant):
    """The system makes progress after the last fault window heals.

    Progress is committed work: ledger transactions where the system
    keeps a ledger, otherwise state-machine writes.  The baseline is
    snapshotted exactly at ``scenario.end_time`` (a kernel timer, so
    it is deterministic); the final check requires the metric to have
    advanced past it.
    """

    name = "liveness-after-heal"

    def setup(self, system: Any, scenario: Scenario) -> None:
        self._baseline: Optional[int] = None
        env = system.env

        def snapshot(_ev: Any) -> None:
            self._baseline = self._metric(system)

        env.timeout(max(0.0, scenario.end_time - env.now)).callbacks.append(
            snapshot)

    @staticmethod
    def _metric(system: Any) -> int:
        ledger = getattr(system, "ledger", None)
        if ledger is not None:
            return ledger.total_txns()
        state = getattr(system, "state", None)
        if state is None:
            cluster = getattr(system, "cluster", None)
            state = getattr(cluster, "state", None) if cluster else None
        return state.writes if state is not None else 0

    def final(self, system: Any, now: float) -> Optional[str]:
        if self._baseline is None:
            return "run ended before the heal point — no liveness window"
        metric = self._metric(system)
        if metric <= self._baseline:
            return (f"no progress after heal: {metric} committed vs "
                    f"{self._baseline} at heal time")
        return None


class NoAnomalies(Invariant):
    """The run's committed history admits no isolation anomalies.

    Final-only (building the multi-version serialization graph mid-run
    would re-walk the whole history every check interval).  Requires a
    system built with ``extras["isolation"]`` — that is what attaches
    the online history checker.  Attach this when the robustness
    certifier declares the (workload, isolation) pair robust: the
    certificate predicts a clean history even under faults, and this
    invariant holds the run to it.
    """

    name = "no-anomalies"

    def check(self, system: Any, now: float) -> Optional[str]:
        return None

    def final(self, system: Any, now: float) -> Optional[str]:
        history = getattr(system, "history", None)
        if history is None:
            return ("system has no history checker — build it with "
                    "extras={'isolation': ...} to certify anomalies")
        report = history.check()
        nonzero = {k: v for k, v in report.anomalies.items() if v}
        if nonzero:
            return f"history admits anomalies: {nonzero}"
        return None


class InvariantSuite:
    """Runs invariants continuously during a run and once at the end."""

    def __init__(self, invariants: list[Invariant], scenario: Scenario):
        self.invariants = list(invariants)
        self.scenario = scenario
        self.violations: list[str] = []
        self.checks = 0
        self._system = None

    def setup(self, system: Any) -> None:
        self._system = system
        for inv in self.invariants:
            inv.setup(system, self.scenario)

    def start(self) -> None:
        """Spawn the continuous checker (after setup, before the run)."""
        env = self._system.env
        env.process(self._checker(env), name="chaos-invariants")

    def _checker(self, env):
        while True:
            yield env.timeout(self.scenario.check_interval)
            self.checks += 1
            self._run(lambda inv: inv.check(self._system, env.now), env.now)

    def finalize(self) -> None:
        """End-of-run pass (call after the driver returns)."""
        now = self._system.env.now
        self._run(lambda inv: inv.final(self._system, now), now,
                  final=True)

    def _run(self, fn, now: float, final: bool = False) -> None:
        for inv in self.invariants:
            if (inv.name == LivenessAfterHeal.name
                    and not self.scenario.expect_liveness):
                continue
            message = fn(inv)
            if message:
                stage = "final" if final else "check"
                self.violations.append(
                    f"{now:.6f} [{inv.name}/{stage}] {message}")

    @property
    def ok(self) -> bool:
        return not self.violations


def default_invariants(conserved: bool = False,
                       anomalies: bool = False) -> list[Invariant]:
    """The standard chaos suite: safety always, conservation on demand.

    ``anomalies=True`` adds the final-only history audit — only for
    runs built with ``extras["isolation"]`` on a certified-robust
    (workload, level) pair.
    """
    invariants: list[Invariant] = [NoLedgerFork(), PrefixConsistency(),
                                   LivenessAfterHeal()]
    if conserved:
        invariants.append(ConservedBalances())
    if anomalies:
        invariants.append(NoAnomalies())
    return invariants
