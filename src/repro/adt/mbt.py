"""Merkle Bucket Tree (Hyperledger Fabric v0.6 state organization).

Keys hash into a *fixed* number of buckets; a Merkle tree of configurable
fan-out is built over the bucket digests.  Because the tree scale is fixed
(1000 buckets, fan-out 4 gives depth ceil(log4 1000) = 5 in the paper's
setup), the per-record storage overhead is a small constant — the paper's
Figure 13 contrast with the MPT's >1 kB per record.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..crypto.hashing import NULL_HASH, hash_concat, sha256

__all__ = ["MerkleBucketTree"]


class MerkleBucketTree:
    """A fixed-scale bucketed Merkle tree over a key-value state."""

    def __init__(self, num_buckets: int = 1000, fanout: int = 4):
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.num_buckets = num_buckets
        self.fanout = fanout
        self._buckets: list[dict[bytes, bytes]] = [dict() for _ in range(num_buckets)]
        self._bucket_hashes: list[bytes] = [NULL_HASH] * num_buckets
        # level widths from leaves (buckets) up to the root
        self._level_sizes: list[int] = []
        width = num_buckets
        while width > 1:
            width = (width + fanout - 1) // fanout
            self._level_sizes.append(width)
        self._levels: list[list[bytes]] = [
            [NULL_HASH] * w for w in self._level_sizes
        ]
        self._dirty: set[int] = set()
        self.hashes_computed = 0
        self._recompute_all()

    # -- key placement ------------------------------------------------------

    def bucket_of(self, key: bytes) -> int:
        digest = hashlib.sha256(b"bucket:" + key).digest()
        return int.from_bytes(digest[:8], "big") % self.num_buckets

    # -- mutation -------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Stage a write; call :meth:`commit` to fold it into the root."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("MBT keys/values are bytes")
        idx = self.bucket_of(key)
        self._buckets[idx][key] = value
        self._dirty.add(idx)

    # stage()/commit() protocol parity with MerklePatriciaTrie: MBT writes
    # are inherently staged (dirty buckets fold into the root at commit()).
    # Unlike the MPT overlay, staged MBT writes are immediately visible via
    # get(), and ``staged`` below counts dirty *buckets*, not keys.
    stage = put

    @property
    def staged(self) -> int:
        """Number of dirty buckets awaiting the next commit.

        Bucket granularity, not key granularity: many staged keys hashing
        into the same bucket count once.
        """
        return len(self._dirty)

    def delete(self, key: bytes) -> None:
        idx = self.bucket_of(key)
        if key in self._buckets[idx]:
            del self._buckets[idx][key]
            self._dirty.add(idx)

    def commit(self) -> bytes:
        """Recompute digests along dirty paths; return the new root."""
        touched = sorted(self._dirty)
        self._dirty.clear()
        for idx in touched:
            self._bucket_hashes[idx] = self._hash_bucket(idx)
        parents = sorted({idx // self.fanout for idx in touched})
        below = self._bucket_hashes
        for level, width in enumerate(self._level_sizes):
            row = self._levels[level]
            next_parents = set()
            for p in parents:
                start = p * self.fanout
                children = below[start:start + self.fanout]
                self.hashes_computed += 1
                row[p] = hash_concat(*children)
                next_parents.add(p // self.fanout)
            below = row
            parents = sorted(next_parents) if width > 1 else []
        return self.root

    def _hash_bucket(self, idx: int) -> bytes:
        entries = sorted(self._buckets[idx].items())
        self.hashes_computed += 1
        if not entries:
            return NULL_HASH
        parts = []
        for key, value in entries:
            parts.append(key)
            parts.append(value)
        return hash_concat(*parts)

    def _recompute_all(self) -> None:
        self._dirty.update(range(self.num_buckets))
        self.commit()

    # -- queries ---------------------------------------------------------------

    @property
    def root(self) -> bytes:
        if self._levels:
            return self._levels[-1][0]
        return self._bucket_hashes[0]

    def get(self, key: bytes) -> Optional[bytes]:
        return self._buckets[self.bucket_of(key)].get(key)

    @property
    def depth(self) -> int:
        """Tree depth above the buckets: ceil(log_fanout(num_buckets))."""
        return len(self._level_sizes)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets)

    # -- storage accounting (Fig. 13) -------------------------------------------

    def total_bytes(self) -> int:
        """On-disk bytes: entries (key + value + lengths) plus all digests."""
        entry_bytes = 0
        for bucket in self._buckets:
            for key, value in bucket.items():
                entry_bytes += len(key) + len(value) + 8  # two length prefixes
        digest_bytes = 32 * (self.num_buckets + sum(self._level_sizes))
        return entry_bytes + digest_bytes

    def overhead_per_record(self, record_size: int) -> float:
        """Storage overhead per record beyond the raw values."""
        n = len(self)
        if n == 0:
            return 0.0
        return (self.total_bytes() - n * record_size) / n

    # -- proofs -----------------------------------------------------------------

    def prove(self, key: bytes) -> dict:
        """Integrity proof: the full bucket plus sibling digests to the root."""
        idx = self.bucket_of(key)
        entries = sorted(self._buckets[idx].items())
        siblings: list[list[bytes]] = []
        below = self._bucket_hashes
        pos = idx
        for level, _width in enumerate(self._level_sizes):
            start = (pos // self.fanout) * self.fanout
            group = list(below[start:start + self.fanout])
            siblings.append(group)
            pos //= self.fanout
            below = self._levels[level]
        return {"bucket": idx, "entries": entries, "groups": siblings}

    def verify_proof(self, key: bytes, value: bytes, proof: dict,
                     root: bytes) -> bool:
        """Check a proof produced by :meth:`prove` against ``root``."""
        entries = dict(proof["entries"])
        if entries.get(key) != value:
            return False
        sorted_entries = sorted(entries.items())
        if sorted_entries:
            parts = []
            for k, v in sorted_entries:
                parts.append(k)
                parts.append(v)
            digest = hash_concat(*parts)
        else:
            digest = NULL_HASH
        pos = proof["bucket"]
        for group in proof["groups"]:
            if group[pos % self.fanout] != digest:
                return False
            digest = hash_concat(*group)
            pos //= self.fanout
        return digest == root
