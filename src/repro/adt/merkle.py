"""Binary Merkle tree with inclusion proofs.

The generic authenticated data structure (Section 3.3.2): the root digest
uniquely identifies the contents, and an access path is an integrity proof
for the retrieved value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import NULL_HASH, hash_pair, sha256

__all__ = ["MerkleTree", "MerkleProof"]


@dataclass(frozen=True)
class MerkleProof:
    """Sibling hashes from a leaf to the root."""

    leaf_index: int
    leaf_count: int
    siblings: tuple[bytes, ...]

    def verify(self, leaf_data: bytes, root: bytes) -> bool:
        """Recompute the root from ``leaf_data``; True iff it matches."""
        if not 0 <= self.leaf_index < self.leaf_count:
            return False
        node = sha256(leaf_data)
        index = self.leaf_index
        count = self.leaf_count
        for sibling in self.siblings:
            if index % 2 == 0:
                # Right edge without a sibling duplicates the node.
                right = sibling if index + 1 < count else node
                node = hash_pair(node, right)
            else:
                node = hash_pair(sibling, node)
            index //= 2
            count = (count + 1) // 2
        return node == root


class MerkleTree:
    """A Merkle tree over an ordered list of byte-string leaves."""

    def __init__(self, leaves: list[bytes]):
        self.leaf_count = len(leaves)
        self._levels: list[list[bytes]] = []
        level = [sha256(leaf) for leaf in leaves]
        self._levels.append(level)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    nxt.append(hash_pair(level[i], level[i + 1]))
                else:
                    nxt.append(hash_pair(level[i], level[i]))
            self._levels.append(nxt)
            level = nxt

    @property
    def root(self) -> bytes:
        if not self._levels or not self._levels[0]:
            return NULL_HASH
        return self._levels[-1][0]

    def prove(self, index: int) -> MerkleProof:
        """Build the inclusion proof for leaf ``index``."""
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index {index} out of range")
        siblings = []
        i = index
        for level in self._levels[:-1]:
            sibling_index = i + 1 if i % 2 == 0 else i - 1
            if sibling_index < len(level):
                siblings.append(level[sibling_index])
            else:
                siblings.append(level[i])
            i //= 2
        return MerkleProof(leaf_index=index, leaf_count=self.leaf_count,
                           siblings=tuple(siblings))

    def node_count(self) -> int:
        """Number of stored hashes (storage-overhead accounting)."""
        return sum(len(level) for level in self._levels)
