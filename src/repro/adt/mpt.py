"""Merkle Patricia Trie (Ethereum/Quorum state organization).

A nibble-path prefix trie with three node kinds (branch, extension, leaf),
each node serialized and stored *content-addressed* — keyed by its SHA-256
digest — in a backing node store, exactly as geth stores trie nodes in
LevelDB.  Because the store is content-addressed and never pruned, every
insert re-writes the path from leaf to root and the **stale versions
accumulate**: this is the mechanism behind the paper's Figure 13, where MPT
costs over 1 kB of storage per record while the Merkle Bucket Tree costs a
few dozen bytes.

The root digest authenticates the full state; ``prove``/``verify_proof``
produce and check the access-path integrity proofs of Section 3.3.2.

Two write paths are exposed:

* :meth:`MerklePatriciaTrie.put` — per-write: re-encodes and re-hashes the
  leaf-to-root path immediately (the behaviour the paper's Figure 13
  storage-blowup measurements rely on);
* :meth:`MerklePatriciaTrie.stage` + :meth:`MerklePatriciaTrie.commit` —
  batched, geth-style: writes accumulate against an in-memory dirty
  overlay and ``commit()`` hashes each touched node **once**, so a block
  of N writes sharing path prefixes costs far fewer hash computations
  than N sequential ``put`` calls while producing the byte-identical
  root digest.

A decoded-node cache fronts the store so hot paths skip re-decoding:
one LRU :class:`DecodedNodeCache` per :class:`NodeStore`, shared by every
trie over that store — content addressing makes entries valid for any
root, so historical tries (each block's root over the same backing store)
warm each other's caches instead of each clearing its own.
"""

from __future__ import annotations

from typing import Optional

from ..crypto.hashing import sha256

__all__ = ["NodeStore", "DecodedNodeCache", "MerklePatriciaTrie",
           "verify_proof"]

_BRANCH = 0
_EXTENSION = 1
_LEAF = 2

EMPTY_ROOT = sha256(b"mpt:empty")


def _to_nibbles(key: bytes) -> tuple[int, ...]:
    out = []
    for byte in key:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def _encode(node: tuple) -> bytes:
    """Unambiguous length-prefixed serialization of a trie node."""
    kind = node[0]
    parts = [bytes([kind])]
    if kind == _BRANCH:
        _tag, children, value = node
        for child in children:
            parts.append(len(child).to_bytes(2, "big"))
            parts.append(child)
        # presence flag keeps an *empty* stored value distinct from
        # "no value at this branch"
        if value is None:
            parts.append(b"\x00")
        else:
            parts.append(b"\x01")
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
    else:
        _tag, path, payload = node
        packed = bytes(path)
        parts.append(len(packed).to_bytes(2, "big"))
        parts.append(packed)
        parts.append(len(payload).to_bytes(4, "big"))
        parts.append(payload)
    return b"".join(parts)


def _decode(blob: bytes) -> tuple:
    kind = blob[0]
    pos = 1
    if kind == _BRANCH:
        children = []
        for _ in range(16):
            n = int.from_bytes(blob[pos:pos + 2], "big")
            pos += 2
            children.append(blob[pos:pos + n])
            pos += n
        present = blob[pos]
        pos += 1
        if present:
            vlen = int.from_bytes(blob[pos:pos + 4], "big")
            pos += 4
            value = blob[pos:pos + vlen]
        else:
            value = None
        return (_BRANCH, children, value)
    n = int.from_bytes(blob[pos:pos + 2], "big")
    pos += 2
    path = tuple(blob[pos:pos + n])
    pos += n
    vlen = int.from_bytes(blob[pos:pos + 4], "big")
    pos += 4
    payload = blob[pos:pos + vlen]
    return (kind, path, payload)


#: Decoded-node cache entries kept per store before LRU eviction.
_NODE_CACHE_MAX = 200_000


class DecodedNodeCache:
    """An LRU cache of decoded trie nodes, keyed by content digest.

    Content addressing makes a decoded node valid for every trie over the
    same store, so one cache is shared across historical tries.  Eviction
    is least-recently-used (insertion-ordered dict, refresh-on-hit)
    instead of the old clear-on-overflow wipe, which dropped the entire
    working set each time the cap was reached.

    The recency refresh only engages once the cache is within an eighth
    of capacity (``lru_floor``): below that, eviction is at least
    ``capacity/8`` insertions away, so insertion order is recency enough
    and a cache hit stays as cheap as a plain dict get on the trie hot
    path.  The trie inlines these operations; the methods here are the
    reference implementation (and what tests exercise).
    """

    __slots__ = ("entries", "capacity", "lru_floor", "evictions")

    def __init__(self, capacity: int = _NODE_CACHE_MAX):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.entries: dict[bytes, tuple] = {}
        self.capacity = capacity
        self.lru_floor = capacity - capacity // 8
        self.evictions = 0

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, digest: bytes) -> Optional[tuple]:
        entries = self.entries
        node = entries.get(digest)
        if node is not None and len(entries) >= self.lru_floor:
            # refresh recency: move to the insertion-order tail
            del entries[digest]
            entries[digest] = node
        return node

    def put(self, digest: bytes, node: tuple) -> None:
        entries = self.entries
        if digest in entries:
            del entries[digest]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]  # least recently used
            self.evictions += 1
        entries[digest] = node


class NodeStore:
    """Content-addressed node storage (models geth's LevelDB backend).

    Nodes are never deleted: stale versions of rewritten paths remain, just
    like an unpruned Ethereum state database.  The store owns the shared
    :class:`DecodedNodeCache` for every trie built over it.
    """

    def __init__(self, cache_capacity: int = _NODE_CACHE_MAX):
        self._nodes: dict[bytes, bytes] = {}
        self.cache = DecodedNodeCache(cache_capacity)
        self.puts = 0

    def put(self, blob: bytes) -> bytes:
        digest = sha256(blob)
        self.puts += 1
        # Content-addressing dedups identical blobs automatically.
        self._nodes[digest] = blob
        return digest

    def get(self, digest: bytes) -> bytes:
        return self._nodes[digest]

    def __len__(self) -> int:
        return len(self._nodes)

    def total_bytes(self) -> int:
        """Bytes on disk: 32-byte key plus blob per stored node."""
        return sum(32 + len(blob) for blob in self._nodes.values())


class MerklePatriciaTrie:
    """An MPT over byte-string keys and values."""

    def __init__(self, store: Optional[NodeStore] = None,
                 root: bytes = EMPTY_ROOT):
        self.store = store if store is not None else NodeStore()
        self.root = root
        # hash-computation counter: systems charge crypto cost per node hash
        self.hashes_computed = 0
        # decoded nodes are cached on the *store* (shared across every
        # trie/root over it); entries are immutable by convention (every
        # mutation path copies before changing children).
        self._cache: DecodedNodeCache = self.store.cache
        # staged writes applied by commit(); last write per key wins
        self._pending: dict[bytes, bytes] = {}

    # -- helpers ------------------------------------------------------------

    # _store/_load inline DecodedNodeCache.put/get: they run once per
    # touched node on every trie operation and a method call apiece is
    # measurable in the Figure 11/13 sweeps.

    def _store(self, node: tuple) -> bytes:
        self.hashes_computed += 1
        blob = _encode(node)
        digest = self.store.put(blob)
        cache = self._cache
        entries = cache.entries
        if digest in entries:
            del entries[digest]
        elif len(entries) >= cache.capacity:
            del entries[next(iter(entries))]
            cache.evictions += 1
        entries[digest] = node
        return digest

    def _load(self, digest: bytes) -> Optional[tuple]:
        if digest == EMPTY_ROOT or not digest:
            return None
        cache = self._cache
        entries = cache.entries
        node = entries.get(digest)
        if node is not None:
            if len(entries) >= cache.lru_floor:
                del entries[digest]
                entries[digest] = node
            return node
        node = _decode(self.store.get(digest))
        if len(entries) >= cache.capacity:
            del entries[next(iter(entries))]
            cache.evictions += 1
        entries[digest] = node
        return node

    # -- public API ----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> bytes:
        """Insert/overwrite ``key`` and return the new root digest."""
        if not key:
            raise ValueError("empty key")
        if self._pending:
            # This write supersedes any older staged write for the key —
            # otherwise the stale staged value would clobber it at commit.
            self._pending.pop(key, None)
        nibbles = _to_nibbles(key)
        self.root = self._insert(self.root, nibbles, value)
        return self.root

    def get(self, key: bytes) -> Optional[bytes]:
        if self._pending:
            staged = self._pending.get(key)
            if staged is not None:
                return staged
        node = self._load(self.root)
        nibbles = _to_nibbles(key)
        while node is not None:
            kind = node[0]
            if kind == _LEAF:
                return node[2] if node[1] == nibbles else None
            if kind == _EXTENSION:
                path = node[1]
                if nibbles[:len(path)] != path:
                    return None
                nibbles = nibbles[len(path):]
                node = self._load(bytes(node[2]))
                continue
            # branch
            if not nibbles:
                return node[2]
            child = node[1][nibbles[0]]
            if not child:
                return None
            nibbles = nibbles[1:]
            node = self._load(bytes(child))
        return None

    # -- batched commits ------------------------------------------------------

    def stage(self, key: bytes, value: bytes) -> None:
        """Buffer a write; :meth:`commit` folds all staged writes at once."""
        if not key:
            raise ValueError("empty key")
        self._pending[key] = value

    @property
    def staged(self) -> int:
        """Number of keys currently staged for the next commit."""
        return len(self._pending)

    def commit(self) -> bytes:
        """Apply all staged writes, hashing each touched node exactly once.

        Equivalent to calling :meth:`put` per staged key — the root digest
        is byte-identical — but the dirty sub-trie is kept as plain
        in-memory nodes while the batch is applied and only serialized +
        hashed in a single bottom-up pass, geth-style.  Intermediate
        versions of rewritten paths are therefore *not* written to the
        store (a block commits one state transition, not N).
        """
        if not self._pending:
            return self.root
        ref: object = self.root
        for key, value in self._pending.items():
            ref = self._insert_mem(ref, _to_nibbles(key), value)
        self._pending.clear()
        self.root = self._flush(ref)
        return self.root

    # Dirty nodes are lists ([kind, ...], children may mix digests and
    # dirty lists); clean nodes are referenced by digest (bytes).

    def _load_mut(self, ref) -> Optional[list]:
        """Resolve a node reference into a mutable (dirty) node, or None."""
        if isinstance(ref, list):
            return ref
        node = self._load(bytes(ref))
        if node is None:
            return None
        if node[0] == _BRANCH:
            return [_BRANCH, list(node[1]), node[2]]
        return [node[0], node[1], node[2]]

    def _insert_mem(self, ref, nibbles: tuple[int, ...], value: bytes) -> list:
        node = self._load_mut(ref)
        if node is None:
            return [_LEAF, nibbles, value]
        kind = node[0]
        if kind == _LEAF:
            return self._merge_leaf_mem(node, nibbles, value)
        if kind == _EXTENSION:
            return self._descend_extension_mem(node, nibbles, value)
        return self._descend_branch_mem(node, nibbles, value)

    def _merge_leaf_mem(self, leaf: list, nibbles: tuple[int, ...],
                        value: bytes) -> list:
        existing_path, existing_value = leaf[1], leaf[2]
        if existing_path == nibbles:
            return [_LEAF, nibbles, value]
        common = 0
        while (common < len(existing_path) and common < len(nibbles)
               and existing_path[common] == nibbles[common]):
            common += 1
        children: list = [b""] * 16
        branch_value = None
        for path, val in ((existing_path[common:], existing_value),
                          (nibbles[common:], value)):
            if not path:
                branch_value = val
            else:
                children[path[0]] = [_LEAF, path[1:], val]
        branch = [_BRANCH, children, branch_value]
        if common:
            return [_EXTENSION, nibbles[:common], branch]
        return branch

    def _descend_extension_mem(self, ext: list, nibbles: tuple[int, ...],
                               value: bytes) -> list:
        path, child_ref = ext[1], ext[2]
        if isinstance(child_ref, (bytes, bytearray)):
            child_ref = bytes(child_ref)
        common = 0
        while (common < len(path) and common < len(nibbles)
               and path[common] == nibbles[common]):
            common += 1
        if common == len(path):
            new_child = self._insert_mem(child_ref, nibbles[common:], value)
            return [_EXTENSION, path, new_child]
        children: list = [b""] * 16
        branch_value = None
        remainder = path[common:]
        if len(remainder) == 1:
            children[remainder[0]] = child_ref
        else:
            children[remainder[0]] = [_EXTENSION, remainder[1:], child_ref]
        new_path = nibbles[common:]
        if not new_path:
            branch_value = value
        else:
            children[new_path[0]] = [_LEAF, new_path[1:], value]
        branch = [_BRANCH, children, branch_value]
        if common:
            return [_EXTENSION, path[:common], branch]
        return branch

    def _descend_branch_mem(self, branch: list, nibbles: tuple[int, ...],
                            value: bytes) -> list:
        children = branch[1]
        if not nibbles:
            return [_BRANCH, children, value]
        slot = nibbles[0]
        child = children[slot]
        if isinstance(child, (bytes, bytearray)):
            child = bytes(child) if child else EMPTY_ROOT
        children[slot] = self._insert_mem(child, nibbles[1:], value)
        return [_BRANCH, children, branch[2]]

    def _flush(self, ref) -> bytes:
        """Serialize + hash a dirty sub-trie bottom-up, one hash per node."""
        if not isinstance(ref, list):
            return bytes(ref)
        kind = ref[0]
        if kind == _LEAF:
            return self._store((_LEAF, ref[1], ref[2]))
        if kind == _EXTENSION:
            return self._store((_EXTENSION, ref[1], self._flush(ref[2])))
        children = [child if isinstance(child, bytes) else
                    (b"" if not child else self._flush(child))
                    for child in ref[1]]
        return self._store((_BRANCH, children, ref[2]))

    def _insert(self, digest: bytes, nibbles: tuple[int, ...],
                value: bytes) -> bytes:
        node = self._load(digest)
        if node is None:
            return self._store((_LEAF, nibbles, value))
        kind = node[0]
        if kind == _LEAF:
            return self._merge_leaf(node, nibbles, value)
        if kind == _EXTENSION:
            return self._descend_extension(node, nibbles, value)
        return self._descend_branch(node, nibbles, value)

    def _merge_leaf(self, leaf: tuple, nibbles: tuple[int, ...],
                    value: bytes) -> bytes:
        existing_path, existing_value = leaf[1], leaf[2]
        if existing_path == nibbles:
            return self._store((_LEAF, nibbles, value))
        common = 0
        while (common < len(existing_path) and common < len(nibbles)
               and existing_path[common] == nibbles[common]):
            common += 1
        children: list[bytes] = [b""] * 16
        branch_value = None
        for path, val in ((existing_path[common:], existing_value),
                          (nibbles[common:], value)):
            if not path:
                branch_value = val
            else:
                child = self._store((_LEAF, path[1:], val))
                children[path[0]] = child
        branch = self._store((_BRANCH, children, branch_value))
        if common:
            return self._store((_EXTENSION, nibbles[:common], branch))
        return branch

    def _descend_extension(self, ext: tuple, nibbles: tuple[int, ...],
                           value: bytes) -> bytes:
        path, child_digest = ext[1], bytes(ext[2])
        common = 0
        while (common < len(path) and common < len(nibbles)
               and path[common] == nibbles[common]):
            common += 1
        if common == len(path):
            new_child = self._insert(child_digest, nibbles[common:], value)
            return self._store((_EXTENSION, path, new_child))
        # Split the extension at the divergence point.
        children: list[bytes] = [b""] * 16
        branch_value = None
        remainder = path[common:]
        if len(remainder) == 1:
            children[remainder[0]] = child_digest
        else:
            children[remainder[0]] = self._store(
                (_EXTENSION, remainder[1:], child_digest))
        new_path = nibbles[common:]
        if not new_path:
            branch_value = value
        else:
            children[new_path[0]] = self._store((_LEAF, new_path[1:], value))
        branch = self._store((_BRANCH, children, branch_value))
        if common:
            return self._store((_EXTENSION, path[:common], branch))
        return branch

    def _descend_branch(self, branch: tuple, nibbles: tuple[int, ...],
                        value: bytes) -> bytes:
        children = list(branch[1])
        branch_value = branch[2]
        if not nibbles:
            branch_value = value
        else:
            slot = nibbles[0]
            child = bytes(children[slot])
            children[slot] = self._insert(child if child else EMPTY_ROOT,
                                          nibbles[1:], value)
        return self._store((_BRANCH, children, branch_value))

    # -- proofs ---------------------------------------------------------------

    def prove(self, key: bytes) -> list[bytes]:
        """Serialized nodes along the access path (root first)."""
        proof: list[bytes] = []
        digest = self.root
        nibbles = _to_nibbles(key)
        while True:
            node = self._load(digest)
            if node is None:
                return proof
            proof.append(_encode(node))
            kind = node[0]
            if kind == _LEAF:
                return proof
            if kind == _EXTENSION:
                path = node[1]
                if nibbles[:len(path)] != path:
                    return proof
                nibbles = nibbles[len(path):]
                digest = bytes(node[2])
                continue
            if not nibbles:
                return proof
            child = node[1][nibbles[0]]
            if not child:
                return proof
            nibbles = nibbles[1:]
            digest = bytes(child)

    def depth(self, key: bytes) -> int:
        """Number of nodes on the access path for ``key``."""
        return len(self.prove(key))


def verify_proof(root: bytes, key: bytes, value: bytes,
                 proof: list[bytes]) -> bool:
    """Check an MPT access-path proof against a trusted ``root`` digest."""
    if not proof:
        return False
    if sha256(proof[0]) != root:
        return False
    nibbles = _to_nibbles(key)
    for i, blob in enumerate(proof):
        node = _decode(blob)
        kind = node[0]
        if kind == _LEAF:
            return node[1] == nibbles and node[2] == value
        if i + 1 >= len(proof):
            return False
        expected_child = sha256(proof[i + 1])
        if kind == _EXTENSION:
            path = node[1]
            if nibbles[:len(path)] != path:
                return False
            nibbles = nibbles[len(path):]
            if bytes(node[2]) != expected_child:
                return False
        else:  # branch
            if not nibbles:
                return node[2] == value
            if bytes(node[1][nibbles[0]]) != expected_child:
                return False
            nibbles = nibbles[1:]
    return False
