"""Authenticated data structures: Merkle tree, MPT, Merkle Bucket Tree,
Merkle B+ tree."""

from .btm import MerkleBTree
from .mbt import MerkleBucketTree
from .merkle import MerkleProof, MerkleTree
from .mpt import EMPTY_ROOT, MerklePatriciaTrie, NodeStore, verify_proof

__all__ = [
    "EMPTY_ROOT",
    "MerkleBTree",
    "MerkleBucketTree",
    "MerklePatriciaTrie",
    "MerkleProof",
    "MerkleTree",
    "NodeStore",
    "verify_proof",
]
