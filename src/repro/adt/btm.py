"""Merkle B+ tree (FalconDB / IntegriDB-style authenticated index).

Table 2's ``b-tree + merkle tree`` storage choice: the primary index is a
B+ tree (values in the leaves, leaves chained), and every node carries a
digest — a leaf hashes its entries, an internal node hashes its children's
digests — so the root digest authenticates the full key-value state, and
an access path plus sibling digests is an integrity proof (Section 3.3.2).

Unlike the MPT's content-addressed node store, nodes are updated in place
and only the *dirty* paths are re-hashed at :meth:`MerkleBTree.commit`
(FalconDB batches IntegriDB digest maintenance per block the same way), so
the per-record storage overhead is a couple of digests — between the MPT's
>1 kB and the fixed-scale bucket tree's few dozen bytes in the paper's
Figure 13 ordering.

Write protocol parity with the other authenticated structures: ``put`` /
``stage`` insert immediately (visible to ``get``) and mark the path dirty;
``commit()`` folds all dirty nodes into a fresh root, hashing each dirty
node exactly once.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..crypto.hashing import NULL_HASH, hash_concat

__all__ = ["MerkleBTree"]


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next",
                 "digest", "dirty")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: list = []
        self.children: list["_Node"] = []
        self.values: list = []
        self.next: Optional["_Node"] = None
        self.digest: bytes = NULL_HASH
        self.dirty = True


def _bisect(keys: list, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class MerkleBTree:
    """A B+ tree over bytes keys/values with a Merkle digest overlay."""

    def __init__(self, order: int = 64):
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self._root = _Node(leaf=True)
        self._size = 0
        self.hashes_computed = 0
        self._staged = 0

    # -- lookup ---------------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.leaf:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            node = node.children[idx]
        return node

    def get(self, key: bytes) -> Optional[bytes]:
        leaf = self._find_leaf(key)
        idx = _bisect(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._size

    # -- mutation -------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert/overwrite; digests fold into the root at :meth:`commit`."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("MerkleBTree keys/values are bytes")
        root = self._root
        result = self._insert(root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root
        self._staged += 1

    # stage()/commit() protocol parity with the MPT and MBT: writes are
    # applied (and readable) immediately, the dirty-path digests fold at
    # commit().
    stage = put

    @property
    def staged(self) -> int:
        """Writes applied since the last commit (dirty-path granularity)."""
        return self._staged

    def _insert(self, node: _Node, key, value):
        node.dirty = True
        if node.leaf:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        idx = _bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            idx += 1
        result = self._insert(node.children[idx], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) >= self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # -- digest maintenance ----------------------------------------------------

    def commit(self) -> bytes:
        """Re-hash every dirty node bottom-up; return the fresh root digest."""
        self._fold(self._root)
        self._staged = 0
        return self._root.digest

    def _fold(self, node: _Node) -> bytes:
        if not node.dirty:
            return node.digest
        self.hashes_computed += 1
        if node.leaf:
            parts = []
            for key, value in zip(node.keys, node.values):
                parts.append(key)
                parts.append(value)
            node.digest = hash_concat(b"leaf", *parts)
        else:
            node.digest = hash_concat(
                b"node", *(self._fold(child) for child in node.children))
        node.dirty = False
        return node.digest

    @property
    def root(self) -> bytes:
        """Digest as of the last :meth:`commit` (dirty paths excluded)."""
        return self._root.digest

    # -- proofs ----------------------------------------------------------------

    def prove(self, key: bytes) -> dict:
        """Integrity proof: leaf entries + sibling digest groups to the root.

        Only valid when no writes are pending (``commit`` first).
        """
        path: list[tuple[_Node, int]] = []
        node = self._root
        while not node.leaf:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            path.append((node, idx))
            node = node.children[idx]
        groups = [([child.digest for child in parent.children], idx)
                  for parent, idx in reversed(path)]
        return {"entries": list(zip(node.keys, node.values)),
                "groups": groups}

    @staticmethod
    def verify_proof(key: bytes, value: bytes, proof: dict,
                     root: bytes) -> bool:
        """Check a proof produced by :meth:`prove` against ``root``."""
        entries = dict(proof["entries"])
        if entries.get(key) != value:
            return False
        parts = []
        for k, v in proof["entries"]:
            parts.append(k)
            parts.append(v)
        digest = hash_concat(b"leaf", *parts)
        for group, idx in proof["groups"]:
            if not 0 <= idx < len(group) or group[idx] != digest:
                return False
            digest = hash_concat(b"node", *group)
        return digest == root

    # -- scans / accounting ------------------------------------------------------

    def items(self) -> Iterator[tuple]:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def node_count(self) -> int:
        def count(node: _Node) -> int:
            if node.leaf:
                return 1
            return 1 + sum(count(c) for c in node.children)

        return count(self._root)

    def total_bytes(self) -> int:
        """On-disk bytes: entries plus one 32-byte digest per node."""
        entry_bytes = sum(len(k) + len(v) + 8 for k, v in self.items())
        return entry_bytes + 32 * self.node_count()
