"""Simulated cluster node: CPU cores, egress NIC, disk, mailbox.

A node is a passive container of resources; protocol roles (Raft replica,
Fabric peer, ...) are processes that run "on" a node by consuming its
resources and reading its mailbox.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .costs import CostModel, DEFAULT_COSTS
from .kernel import Environment, Event
from .network import Message
from .resources import Resource, Store

__all__ = ["Node"]


class Node:
    """A machine in the simulated cluster (paper: Xeon E5-1650, 32 GB)."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 6,
        costs: CostModel = DEFAULT_COSTS,
        nic_capacity: int = 1,
    ):
        self.env = env
        self.name = name
        self.costs = costs
        self.cpu = Resource(env, capacity=cores)
        # nic_capacity > 1 models an aggregate of machines (e.g. the pool
        # of benchmark-client hosts the paper drives load from).
        self.nic_out = Resource(env, capacity=nic_capacity)
        self.disk = Resource(env, capacity=1)
        self.mailbox: Store = Store(env)
        self._subscribers: dict[str, Store] = {}
        self.crashed = False
        # TrueTime-style clock error bound above the fleet baseline;
        # Spanner's commit-wait stretches by this much on skewed leaders.
        self.clock_skew = 0.0
        # Callbacks invoked by recover() after the inboxes are reset —
        # protocol roles (replicas) register here to re-arm timers and
        # reset volatile role state on restart.
        self.on_recover: list = []

    # -- messaging --------------------------------------------------------

    def enqueue(self, msg: Message) -> None:
        """Called by the network on delivery; routes to kind subscribers."""
        box = self._subscribers.get(msg.kind)
        if box is not None:
            box.put(msg)
        else:
            self.mailbox.put(msg)

    def subscribe(self, kind: str) -> Store:
        """Return a dedicated inbox receiving only messages of ``kind``."""
        box = self._subscribers.get(kind)
        if box is None:
            box = Store(self.env)
            self._subscribers[kind] = box
        return box

    def receive(self) -> Event:
        """Event yielding the next unrouted message."""
        return self.mailbox.get()

    # -- resource helpers -------------------------------------------------

    def compute(self, service_time: float) -> Event:
        """Occupy one CPU core for ``service_time`` (flat fast path).

        Returns a single event — ``yield node.compute(t)``.  The
        generator form lives on as :meth:`compute_gen` for callers that
        need the early-release-on-interrupt contract.
        """
        return self.cpu.serve_event(service_time)

    def disk_write(self, service_time: float) -> Event:
        """Occupy the disk for ``service_time`` (flat fast path)."""
        return self.disk.serve_event(service_time)

    def compute_gen(self, service_time: float) -> Generator[Event, Any, None]:
        """Generator form of :meth:`compute` (drive with ``yield from``)."""
        yield from self.cpu.serve(service_time)

    def disk_write_gen(self, service_time: float) -> Generator[Event, Any, None]:
        """Generator form of :meth:`disk_write`."""
        yield from self.disk.serve(service_time)

    # -- failure injection ------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: in-flight and future traffic to/from is dropped."""
        self.crashed = True

    def recover(self) -> None:
        """Restart after a crash.

        Pre-crash in-flight state is gone: the mailbox and every
        subscription store are cleared in place (parked getters survive —
        see :meth:`Store.clear` — so perpetual receiver chains re-arm on
        the next delivery).  Registered ``on_recover`` hooks then run so
        protocol roles can reset volatile state and replay durable logs.
        """
        self.crashed = False
        self.mailbox.clear()
        for box in self._subscribers.values():
            box.clear()
        for hook in self.on_recover:
            hook()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"<Node {self.name} ({state})>"
