"""Hierarchical timing wheel: array-backed deferred callbacks at scale.

The open-loop driver holds two kinds of far-future work the kernel heap
is the wrong home for: tens of thousands of pre-computed arrival
instants, and one pending timeout per in-flight request (most of which
are cancelled when the request completes first).  Parking them all as
:class:`~repro.sim.kernel.Timeout` objects would grow the scheduler heap
to the full horizon and pay a heap push *and* a lazy-cancel sweep per
request; the wheel instead files entries into per-tick array slots
(hashed hierarchical wheel, Varghese & Lauck) and feeds only the
current tick's entries to the kernel.

Contract:

* :meth:`TimingWheel.schedule` files ``func(arg)`` for an exact absolute
  simulated time.  Entries are *not* rounded to tick boundaries: when a
  slot's tick arrives, its live entries are re-scheduled onto the kernel
  at their stored instants (``Environment._schedule_call_at``), so a
  callback fires at the precise float it was filed for, in
  ``(when, file-order)`` order — deterministic for a fixed call
  sequence;
* :meth:`TimingWheel.cancel` is O(1): the slot entry is tombstoned in
  place, no heap traffic (compare ``Timeout.cancel``'s lazy slab drop);
* the wheel arms exactly one kernel timer (the metronome) while any live
  entry is pending and none when idle, so an idle wheel costs nothing;
* hierarchy: level ``k`` slots span ``tick * slots**k`` seconds; a
  wrapping level cascades into the one below, and entries past the top
  level wait in a far list re-filed each top-level turn.  Capacity is
  therefore unbounded with O(1) insert for any horizon.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .kernel import Environment, SimulationError

__all__ = ["TimingWheel", "WheelEntry"]

# Entry layout indices (plain lists: one small allocation per entry, no
# __dict__, mutable so cancel can tombstone in place).
_WHEN, _SEQ, _FUNC, _ARG, _LIVE = range(5)

#: A scheduled wheel entry; treat as opaque outside this module (pass it
#: back to :meth:`TimingWheel.cancel`).
WheelEntry = list


class TimingWheel:
    """A hierarchical timing wheel over a simulation environment."""

    __slots__ = ("env", "tick", "slots", "levels", "_wheels", "_far",
                 "_origin", "_cur", "_seq", "_pending", "_timer",
                 "_armed_at", "_spans", "_far_span")

    def __init__(self, env: Environment, tick: float = 0.01,
                 slots: int = 256, levels: int = 3):
        if tick <= 0:
            raise ValueError(f"tick must be positive: {tick!r}")
        if slots < 2 or levels < 1:
            raise ValueError(f"need slots >= 2, levels >= 1 "
                             f"(got {slots}, {levels})")
        self.env = env
        self.tick = tick
        self.slots = slots
        self.levels = levels
        # _wheels[k][i] is the list of entries filed in slot i of level k.
        self._wheels: list[list[list]] = [
            [[] for _ in range(slots)] for _ in range(levels)]
        self._far: list[list] = []
        self._origin = env.now
        self._cur = 0              # all ticks <= _cur have been drained
        self._seq = 0
        self._pending = 0
        self._timer = None         # armed metronome CancelToken, if any
        self._armed_at = 0         # tick the metronome is armed for
        # slot span of each level, in level-0 ticks
        self._spans = [slots ** k for k in range(levels)]
        self._far_span = slots ** levels

    # -- bookkeeping ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (uncancelled, undrained) entries."""
        return self._pending

    def _ticks(self, when: float) -> int:
        """Tick index whose boundary is <= ``when`` < next boundary.

        The raw float division can land one ulp off in either direction
        (e.g. ``0.35 / 0.01`` rounding up to exactly 35.0 while
        ``35 * 0.01`` rounds to a float *above* 0.35); draining an entry
        at a boundary later than its stored instant would then schedule
        it in the kernel's past.  Nudge against the reconstructed
        boundaries so the invariant holds exactly.
        """
        t = int((when - self._origin) / self.tick)
        if self._origin + (t + 1) * self.tick <= when:
            t += 1
        elif self._origin + t * self.tick > when:
            t -= 1
        return t

    def _boundary(self, tick_index: int) -> float:
        return self._origin + tick_index * self.tick

    # -- public API -------------------------------------------------------

    def schedule(self, when: float, func: Callable[[Any], None],
                 arg: Any = None) -> Optional[WheelEntry]:
        """File ``func(arg)`` for the absolute simulated time ``when``.

        Returns an opaque entry accepted by :meth:`cancel`, or ``None``
        when the instant is due within the current tick — those bypass
        the wheel straight onto the kernel and cannot be cancelled.
        """
        env = self.env
        if when < env.now:
            raise SimulationError(
                f"wheel.schedule({when!r}) is in the past "
                f"(now={env.now!r})")
        armed = self._timer is not None and self._timer.active
        if not armed:
            # Idle wheel: no metronome has been maintaining _cur, so
            # fast-forward past the ticks that elapsed while idle (all
            # slots are tombstones-only when nothing is pending).
            self._cur = max(self._cur, self._ticks(env.now))
        at = self._ticks(when)
        if at <= self._cur:
            # Due inside the tick being drained (or exactly now): the
            # slot's batch has already been taken, so hand the callback
            # to the kernel directly.
            env._schedule_call_at(func, arg, when)
            return None
        self._seq += 1
        entry: list = [when, self._seq, func, arg, True]
        self._file(entry, at)
        self._pending += 1
        if not armed:
            self._arm()
        elif at < self._armed_at:
            # The new entry is due before the armed boundary: re-aim.
            self._timer.cancel()
            self._arm()
        return entry

    def schedule_in(self, delay: float, func: Callable[[Any], None],
                    arg: Any = None) -> Optional[WheelEntry]:
        """File ``func(arg)`` for ``delay`` seconds from now."""
        return self.schedule(self.env.now + delay, func, arg)

    def cancel(self, entry: Optional[WheelEntry]) -> bool:
        """Withdraw a filed entry in O(1); False if fired or already dead."""
        if entry is None or not entry[_LIVE]:
            return False
        entry[_LIVE] = False
        entry[_FUNC] = entry[_ARG] = None   # free references eagerly
        self._pending -= 1
        return True

    # -- internals --------------------------------------------------------

    def _file(self, entry: list, at: int) -> None:
        """Place an entry (due at level-0 tick ``at``) into its slot."""
        delta = at - self._cur
        spans = self._spans
        slots = self.slots
        for k in range(self.levels):
            if delta < spans[k] * slots:
                self._wheels[k][(at // spans[k]) % slots].append(entry)
                return
        self._far.append(entry)

    def _arm(self) -> None:
        """Point the metronome at the next tick that has work."""
        if self._pending == 0:
            self._timer = None
            return
        nxt = self._next_work_tick()
        timer = self.env.timeout_at(self._boundary(nxt), value=nxt)
        timer.callbacks.append(self._on_tick)
        self._timer = timer.token()
        self._armed_at = nxt

    def _next_work_tick(self) -> int:
        """Earliest tick > _cur at which a drain or cascade is due.

        Scans level 0 for an occupied slot within the current
        revolution; failing that, the revolution boundary (where the
        cascade that reveals higher-level work happens).  At most
        ``slots`` probes per arm, amortised over the slot's worth of
        entries the hop leads to.
        """
        cur = self._cur
        slots = self.slots
        level0 = self._wheels[0]
        horizon = ((cur // slots) + 1) * slots    # next level-1 boundary
        for t in range(cur + 1, horizon):
            if level0[t % slots]:
                return t
        return horizon

    def _on_tick(self, timer) -> None:
        """Metronome callback: advance to the fired tick and drain it."""
        self._advance(timer._value)
        self._arm()

    def _advance(self, target: int) -> None:
        """Move the wheel position to ``target``, cascading and draining.

        Ticks strictly between ``_cur`` and ``target`` are known empty
        (the metronome is always aimed at the next occupied tick or the
        next cascade boundary), so only boundary crossings do work.
        """
        slots = self.slots
        spans = self._spans
        wheels = self._wheels
        cur = self._cur
        while cur < target:
            cur += 1
            self._cur = cur        # _file (via _refile) keys deltas off it
            if self._far and cur % self._far_span == 0:
                refile, self._far = self._far, []
                self._refile(refile)
            # Cascade every level whose slot boundary this tick crosses,
            # top-down so an entry can fall through several levels in
            # one crossing.
            for k in range(self.levels - 1, 0, -1):
                span = spans[k]
                if cur % span == 0:
                    slot = wheels[k][(cur // span) % slots]
                    if slot:
                        taken, slot[:] = list(slot), []
                        self._refile(taken)
        self._drain(wheels[0][target % slots])

    def _refile(self, entries: list) -> None:
        cur = self._cur
        for entry in entries:
            if entry[_LIVE]:
                self._file(entry, max(cur, self._ticks(entry[_WHEN])))

    def _drain(self, slot: list) -> None:
        """Dispatch one level-0 slot's live entries at their exact times."""
        if not slot:
            return
        taken, slot[:] = list(slot), []
        live = [e for e in taken if e[_LIVE]]
        if not live:
            return
        live.sort(key=lambda e: (e[_WHEN], e[_SEQ]))
        env = self.env
        schedule_at = env._schedule_call_at
        for entry in live:
            entry[_LIVE] = False
            schedule_at(entry[_FUNC], entry[_ARG], entry[_WHEN])
        self._pending -= len(live)
