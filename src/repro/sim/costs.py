"""Calibrated service-time cost model.

Every constant a simulated system charges for CPU, crypto, network or
storage work lives here, with the paper measurement it was fitted to.
Times are simulated **seconds**; sizes are **bytes**.

The calibration targets are the paper's own micro-measurements:

* Figure 8a/8b latency breakdowns (Fabric phase times, TiDB SQL costs),
* Figure 11b (Quorum MPT reconstruction: 56 us at 10 B -> 2.5 ms at 5000 B),
* Table 4 endpoints (per-system throughput at 3 and 19 nodes),
* Figure 4 peak-throughput ordering (etcd > TiKV > TiDB > Fabric > Quorum).

Nothing outside this module hard-codes a performance number; systems charge
these costs and the macro results emerge from protocol structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]

US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class CostModel:
    """Service times and sizes used by the simulated systems."""

    # ---- network (1 Gb Ethernet LAN, Section 4.2) ----
    net_latency: float = 150 * US          # one-way propagation + switching
    net_bandwidth: float = 125e6           # bytes/second (1 Gb/s)
    net_send_overhead: float = 7 * US      # per-message sender CPU (syscall,
    #   serialization); fitted to etcd's Table 4 decline 19282->6076 tps,
    #   which implies ~7 us of leader work per follower per entry.
    net_recv_overhead: float = 3 * US      # per-message receiver CPU

    # ---- crypto (modelled costs; digests elsewhere use real SHA-256) ----
    sig_sign: float = 90 * US              # ECDSA-P256 sign on E5-1650
    sig_verify: float = 105 * US           # ECDSA-P256 verify; Fabric spends
    #   42% of saturated block-validation time verifying signatures (S5.2.1)
    hash_base: float = 0.4 * US            # SHA-256 fixed cost
    hash_per_byte: float = 0.0035 * US     # SHA-256 streaming cost/byte
    signature_size: int = 71               # DER-encoded ECDSA signature
    certificate_size: int = 1500           # X.509 cert chain (MSP) carried
    #   in envelopes; fits Fig. 12's ~6.7 kB/txn block floor at 3 endorsers

    # ---- generic KV / storage engine ----
    store_get: float = 15 * US             # Fig. 8b "Storage-get" (TiDB leg)
    store_put: float = 30 * US             # LSM memtable insert + WAL append
    wal_sync: float = 60 * US              # group-committed fsync share

    # ---- Raft (etcd-style, batched) ----
    raft_propose: float = 6 * US           # leader append + bookkeeping/entry
    raft_apply: float = 25 * US            # state-machine apply dispatch;
    #   apply+put ~55 us serialized reproduces etcd's ~19k tps at 3 nodes.
    raft_batch_window: float = 1 * MS      # leader batch-accumulation window
    raft_max_batch: int = 64               # max entries per AppendEntries
    raft_entry_overhead: int = 48          # serialized entry header bytes
    raft_heartbeat: float = 100 * MS

    # ---- PBFT / IBFT ----
    bft_message_auth: float = 20 * US      # MAC/signature share per message
    bft_view_change_timeout: float = 2.0
    ibft_block_interval: float = 50 * MS

    # ---- etcd front end ----
    etcd_request_cpu: float = 32 * US      # gRPC decode + txn mvcc wrap;
    #   with raft costs reproduces ~19k tps at 3 nodes (Table 4).
    etcd_read_cpu: float = 17.5 * US       # serialized range read; ~282k tps
    #   aggregate at 5 nodes (Fig. 4b) when reads fan out to all nodes.

    # ---- TiKV (multi-Raft region store) ----
    tikv_request_cpu: float = 55 * US      # scheduler + latch + raftstore
    tikv_apply: float = 45 * US            # raftstore apply-thread share;
    #   apply+put ~75 us serialized reproduces TiKV's 13507 tps (Fig. 4a)
    tikv_read_cpu: float = 52 * US         # ~94k tps aggregate reads (Fig 4b)

    # ---- TiDB SQL layer (Fig. 8b: parse 16 us, compile 15 us) ----
    sql_parse: float = 16 * US
    sql_compile: float = 15 * US
    tidb_session_cpu: float = 40 * US      # protocol + plan cache + executor
    percolator_prewrite_cpu: float = 120 * US  # lock-CF write + latch
    #   bookkeeping on the raftstore thread (serialized)
    percolator_commit_cpu: float = 120 * US    # commit-record write ditto;
    #   together these fit TiDB's 5159 tps at 5+5 nodes (Fig. 4a)
    tidb_latch_hold: float = 1.8 * MS      # primary-lock hold spanning the
    #   prewrite+commit consensus writes; drives the Fig. 9 skew collapse.
    tidb_retry_backoff: float = 2 * MS
    tidb_conflict_resolution: float = 12 * MS  # lock-resolution of the
    #   blocking transaction, performed while holding the key latches; the
    #   mechanism behind Fig. 9's disproportionate collapse (5461->173 tps
    #   at 30% aborts, per PingCAP private communication in the paper)

    # ---- Fabric (execute-order-validate) ----
    fabric_client_auth: float = 4294 * US  # Fig. 8b "Authentication"
    fabric_query_pool: int = 24            # concurrent chaincode query slots
    #   per peer; 24/4.76 ms/peer reproduces Fig. 4b's 23809 tps at 5 peers
    fabric_simulate: float = 406 * US      # Fig. 8b "Simulation" (chaincode)
    fabric_endorse: float = 59 * US        # Fig. 8b "Endorsement" (sign)
    fabric_vscc_per_endorsement: float = 85 * US   # sig verify per endorser
    #   (~42% of validation when saturated; fits Table 4's Fabric decline)
    fabric_mvcc_check: float = 25 * US     # per-txn read-set version check
    fabric_commit_per_txn: float = 330 * US  # serial ledger+state write;
    #   fits Fabric ~1300 tps at 5 nodes (Fig. 4a) with the VSCC term
    fabric_block_cut_count: int = 100      # orderer block cut: max txns
    fabric_block_cut_timeout: float = 700 * MS  # Fig. 8a order phase ~700 ms
    fabric_envelope_overhead: int = 5900   # Fig. 12: block bytes/txn at 10 B
    #   record is ~6741; envelope = headers + creator cert + endorsements.

    # ---- Quorum (order-execute, EVM + MPT) ----
    evm_exec_base: float = 175 * US        # EVM dispatch + storage opcodes
    evm_exec_per_byte: float = 1.18 * US   # calldata/SSTORE cost growth;
    #   with the MPT fit this reproduces Fig. 11a's Quorum curve
    #   (1547 tps at 10 B -> 245 at 1000 B -> 58 at 5000 B)
    mpt_update_base: float = 56 * US       # Fig. 11b: 56 us at 10 B records
    mpt_update_per_byte: float = 0.49 * US  # Fig. 11b: ~2.5 ms at 5000 B
    index_node_op: float = 0.0             # per structural node write at an
    #   engine commit (B-tree page touch, memtable insert, bucket update);
    #   zero by default because that work is already folded into the
    #   calibrated store_put / commit_serial_cost constants — the engines
    #   still *report* node_ops so an ablation can price them explicitly.
    mpt_node_hash_bytes: int = 128         # avg serialized trie-node size
    #   hashed per batched-commit node (branch nodes dominate: 16 x 32 B
    #   child digests amortized over path sharing); used by the Sec. 6
    #   batched-validation ablation, which charges crypto per *actual*
    #   hash computed (MerklePatriciaTrie.hashes_computed deltas) instead
    #   of the per-record Fig. 11b fit.
    quorum_block_interval: float = 50 * MS  # raft block proposal period
    quorum_txpool_cpu: float = 35 * US     # txpool admission + nonce checks
    quorum_max_block_txns: int = 500       # block size cap (gas-limit proxy)
    quorum_query_pool: int = 16            # concurrent eth_call slots/node
    quorum_query_time: float = 3.8 * MS    # EVM read call + JSON-RPC
    #   (Fig. 5b: ~4 ms query latency; Fig. 4b: 19166 tps at 5 nodes)

    # ---- Spanner-like (Fig. 14) ----
    spanner_request_cpu: float = 70 * US
    spanner_lock_hold: float = 7 * MS      # lock span beyond the Paxos
    #   write: client round trip + cleanup; queues hot-key contenders
    #   (Fig. 14's Spanner-below-TiDB result under skew).
    spanner_commit_wait: float = 2 * MS

    # ---- AHL-like sharded blockchain (Fig. 14) ----
    ahl_shard_tps: float = 120.0           # per-shard Fabric-v0.6 PBFT peak;
    #   AHL paper reports O(100) tps per small PBFT shard.
    ahl_cross_shard_penalty: float = 0.45  # BFT-2PC coordination efficiency
    ahl_reconfig_period: float = 30.0      # epoch length (seconds)
    ahl_reconfig_pause: float = 9.0        # downtime per epoch: ~30% loss

    # ---- client/driver ----
    client_think_time: float = 0.0

    extras: dict = field(default_factory=dict)

    # -- helpers ----------------------------------------------------------

    def hash_time(self, nbytes: int) -> float:
        """Modelled SHA-256 time for ``nbytes`` of input."""
        return self.hash_base + self.hash_per_byte * nbytes

    def transfer_time(self, nbytes: int) -> float:
        """Wire serialization time for a message of ``nbytes``."""
        return nbytes / self.net_bandwidth

    def mpt_update_time(self, record_size: int) -> float:
        """Per-record MPT path-rebuild cost (Fig. 11b fit)."""
        return self.mpt_update_base + self.mpt_update_per_byte * record_size

    def mpt_commit_time(self, hashes_computed: int) -> float:
        """Simulated cost of a batched MPT commit of ``hashes_computed``
        node hashes.

        The Sec. 6 batched-validation ablation hook: a block that stages
        N shared-prefix writes and commits once re-hashes each touched
        node exactly once, so its crypto cost is proportional to the
        *measured* hash count (wired from the real trie's
        ``hashes_computed`` delta) rather than N times the per-record
        Fig. 11b reconstruction fit.
        """
        return hashes_computed * self.hash_time(self.mpt_node_hash_bytes)

    def index_commit_time(self, hashes_computed: int,
                          node_ops: int = 0) -> float:
        """Simulated cost of one storage-engine block commit.

        Generalizes the PR 2 :meth:`mpt_commit_time` wiring to every
        engine: per *measured* digest the commit reported, charge the
        node hash **plus one store_put** — an authenticated index
        re-serializes and re-writes every re-hashed node to its backing
        store (geth writes each dirty trie node to LevelDB), which is
        exactly the extra I/O a plain index never pays.  Zero for plain
        engines, so the Fig. 12 authenticated-vs-plain gap is this term
        scaled by the real hash count.  ``node_ops`` (structural writes
        the plain path performs too) charge at :attr:`index_node_op`,
        zero by default — that work is already inside the calibrated
        ``store_put`` / ``commit_serial_cost`` the systems charge.
        """
        per_node = self.hash_time(self.mpt_node_hash_bytes) + self.store_put
        return (hashes_computed * per_node
                + node_ops * self.index_node_op)

    def evm_exec_time(self, record_size: int) -> float:
        return self.evm_exec_base + self.evm_exec_per_byte * record_size

    def wal_replay_time(self, records: int, nbytes: int) -> float:
        """Simulated cost of replaying a WAL during crash recovery.

        Sequential read of ``nbytes`` at disk bandwidth (modelled with
        the network-bandwidth constant — both are ~1 GB/s-class
        sequential streams on the paper's testbed) plus one CRC pass and
        one structure re-insert (:attr:`store_put`) per record.  Charged
        on the recovering node's disk by the chaos injector when a
        crash-restart step closes the recovery loop.
        """
        return (nbytes / self.net_bandwidth
                + records * (self.store_put + self.hash_time(32)))

    def derive(self, **overrides) -> "CostModel":
        """Return a copy with selected constants replaced."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()
