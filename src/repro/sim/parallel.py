"""Conservative-lookahead parallel execution for sharded topologies.

Classic Chandy–Misra–Bryant conservative parallel DES, specialised to
the one topology this simulator has that is both expensive and cleanly
decomposable: a hub (clients + coordinator + consensus committees) that
talks to per-shard serial execute pipelines only through the network.
:attr:`repro.sim.network.Network.min_delay` guarantees a message sent at
``t`` is invisible to its receiver before ``t + min_delay``, so that
delay is the one-hop lookahead ``L``: a request enqueued at ``t``
delivers at exactly ``t + L``, and a completion finishing at ``f``
delivers at exactly ``f + L``.

Scaling to hundreds of shards (the Fig. 14 stretch setup) is a barrier
amortization problem, attacked on four axes:

**Staggered 2L barrier stride.**  The naive protocol barriers every
``L``.  The round-trip structure licenses a stride of ``2L``: at barrier
``B`` each worker runs to ``B + L`` (every arrival it will ever see in
that span was enqueued at or before ``B`` and is already in hand), and
the hub then runs ``(B, B + 2L]`` (every completion delivering in that
span finished at or before ``B + L`` and was reported at barrier ``B``).
``2L`` is the hard cap — the hub can mint new arrivals at any instant,
and their completions can deliver as soon as one round trip later — so
the stride adapts to the lookahead, not past it, and the per-window
*participant set* is where traffic density buys further amortization:

**Idle-worker elision.**  The hub tracks in-flight work per worker
process (arrivals sent minus completions received).  A worker with
nothing in flight and no new arrivals this window is a deterministic
no-op — its only pending events are the time-driven pause schedule — so
the barrier skips it entirely and catches its clock up with the next
frame it does receive.  Per-window IPC cost is O(active workers), not
O(shards); a quiescent warm-up or drain phase costs no syscalls at all.

**Packed binary frames.**  Arrivals and completions cross the pipe as
one fixed-layout ``struct`` frame per worker per window
(:data:`_ARRIVAL` / :data:`_COMPLETION` records behind a one-byte tag),
not per-message pickles: no per-tuple pickle opcodes, no object churn,
one ``send_bytes`` syscall per active worker per barrier.

**Persistent multiplexed worker pool.**  Worker processes are spawned
once per interpreter (module-level :func:`_ensure_pool`) and survive
across runs and across sweep points; each process hosts *many* shard
LPs in one worker Environment (256 shards multiplex onto ~CPU-count
processes), and a per-run ``reset`` frame rebuilds the LPs in place —
no fork/exec, import, or allocator warm-up inside a measured run.

Determinism does not depend on process scheduling, pool size, or the
shard→process assignment — workers are deterministic simulations of
their own, messages are exchanged only at barriers, arrivals are framed
in hub enqueue order, and same-instant injections are ordered by a
hub-side reconstruction of the single-heap dispatch order (execute-timer
creation order, recovered from each completion's ``cost_start`` /
``grant_time`` / ``busy_root`` lineage plus the injection rank of its
granting parent — see :meth:`ShardCoupler.begin_window`), so the merged
timeline is reproducible bit-for-bit.

The equivalence reference is the *single-heap lookahead mode* of the
same system (e.g. ``AhlSystem(shard_lookahead=True)``), which charges
the identical hub<->shard hops as plain timers in one heap; the
differential tests in ``tests/integration/test_parallel_kernel.py``
pin byte-identical :class:`~repro.workloads.driver.RunResult`\\ s at 4,
16, 64, and 256 shards.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle
import struct
import time
import traceback
from typing import Optional

from .kernel import Environment, Event, subscribe
from .resources import Resource

__all__ = ["ShardCoupler", "shutdown_pool"]

# Wire formats ("=": native order, standard sizes, no padding).
_WIN_HDR = struct.Struct("=dI")       # (target_time, n_arrivals)
_ARRIVAL = struct.Struct("=Iqdd")     # (shard, idx, deliver_at, cost)
_CMP_HDR = struct.Struct("=I")        # (n_completions,)
_COMPLETION = struct.Struct("=qdddd")  # (idx, cost_start, grant,
                                       #  busy_root, finish)

#: Hard ceiling on waiting for one worker reply before declaring the
#: barrier wedged (worker *death* is detected within _POLL_S).
_RECV_TIMEOUT_S = 300.0
_POLL_S = 0.25


class _Resolver:
    """Callback shim: resolve a hub-side done event with its value.

    Resolution happens in the kernel's priority-2 rendezvous slot
    (:meth:`Environment._schedule_call_last`), mirroring
    ``_ShardExecLA._completed``: the injected timer's heap position at a
    tied instant depends on when the barrier created it, so the resolve
    itself is deferred to the slot both builds place identically.
    """

    __slots__ = ("done", "value")

    def __init__(self, done: Event, value):
        self.done = done
        self.value = value

    def __call__(self, _ev: Event) -> None:
        self.done.env._schedule_call_last(self._finish, None)

    def _finish(self, _arg) -> None:
        self.done._resolve(self.value)


# ---------------------------------------------------------------------------
# Persistent worker pool (module lifetime, shared across runs)
# ---------------------------------------------------------------------------


class _WorkerPool:
    """A set of long-lived shard-worker processes plus their pipes."""

    def __init__(self, size: int):
        if mp.current_process().daemon:
            raise RuntimeError(
                "ShardCoupler cannot start shard workers inside a daemonic "
                "pool worker (a `--jobs` sweep/perf process): nested "
                "process pools are refused rather than spawn-bombing the "
                "box.  Run parallel=True points in the parent process "
                "(sweep specs marked no_fork do this automatically), or "
                "drop to --jobs 1.")
        ctx = mp.get_context("spawn")
        self.conns: list = []
        self.procs: list = []
        for i in range(size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker_main, args=(child,),
                               name=f"shard-lp-{i}", daemon=True)
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    @property
    def size(self) -> int:
        return len(self.procs)

    def alive(self) -> bool:
        return all(p.is_alive() for p in self.procs)

    def stop(self) -> None:
        for conn in self.conns:
            try:
                conn.send_bytes(b"S")
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - terminate() sufficed
                proc.kill()
                proc.join(timeout=2)
        for conn in self.conns:
            conn.close()
        self.conns, self.procs = [], []


_POOL: Optional[_WorkerPool] = None


def _default_procs() -> int:
    """Worker-process count: ``REPRO_SHARD_PROCS`` or ``cpu_count - 1``."""
    env = os.environ.get("REPRO_SHARD_PROCS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 1) - 1)


def _ensure_pool(size: int) -> _WorkerPool:
    """Return the module's worker pool, spawning or growing as needed.

    The pool persists across couplers (= across runs and sweep points):
    the fork/import/warm-up bill is paid once per interpreter, and a
    per-run ``reset`` frame rebuilds each worker's LPs in place.  A pool
    with a dead worker is replaced wholesale — its pipes may hold
    half-written frames.
    """
    global _POOL
    if _POOL is not None and not _POOL.alive():
        _POOL.stop()
        _POOL = None
    if _POOL is None:
        _POOL = _WorkerPool(size)
    elif _POOL.size < size:
        grown = _WorkerPool(size)    # spawn replacement first, then swap
        _POOL.stop()
        _POOL = grown
    return _POOL


def shutdown_pool() -> None:
    """Stop the persistent worker pool (idempotent; re-spawns on demand)."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.stop()


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# Hub side
# ---------------------------------------------------------------------------


class ShardCoupler:
    """Hub-side half of the conservative kernel.

    The owning system routes every shard-execute request through
    :meth:`exec_event` instead of running it on a hub-heap pipeline;
    the driver loop (``run_closed_loop_windowed``) calls
    :meth:`begin_window` / :meth:`end_window` around each ``env.run``
    window of :attr:`stride` seconds.  Worker processes come from the
    persistent module pool, attached lazily on the first barrier so a
    constructed-but-unused coupler costs nothing.

    ``window`` is the one-hop lookahead ``L`` (the exact request /
    completion hop charge); :attr:`stride` — the barrier period the
    driver advances by — is ``2L`` under the staggered protocol (see the
    module docstring).  ``procs`` caps the worker-process count (default:
    ``REPRO_SHARD_PROCS`` or ``cpu_count - 1``); shards multiplex onto
    processes round-robin, and neither the count nor the assignment
    affects simulated results.
    """

    def __init__(self, env: Environment, num_shards: int, window: float,
                 period: float, pause: float,
                 periodic_reconfig: bool = True,
                 procs: Optional[int] = None):
        if window <= 0:
            raise ValueError(f"lookahead window must be positive: {window!r}")
        self.env = env
        self.num_shards = num_shards
        self.window = window            # one-hop lookahead L
        self.stride = 2.0 * window      # staggered barrier period
        self.period = period
        self.pause = pause
        self.periodic_reconfig = periodic_reconfig
        self._n_procs = min(num_shards,
                            procs if procs is not None else _default_procs())
        self._next_idx = 0                 # global send index (FIFO/tiebreak)
        self._pending: dict[int, tuple] = {}  # idx -> (done, value, shard)
        # Serial-order reconstruction (see begin_window): every injected
        # completion gets a global rank in injection order; a shard's
        # latest rank is the "parent rank" of the leg its release granted.
        self._rank = 0
        self._last_rank: dict[int, int] = {}
        # Per-process frames: outbox entries are (shard, idx, deliver, cost)
        # in hub enqueue order; in_flight counts arrivals sent minus
        # completions received (the elision predicate).
        self._outbox: list[list] = [[] for _ in range(self._n_procs)]
        self._in_flight: list[int] = [0] * self._n_procs
        self._inbox: list[tuple] = []  # (deliver_at, lineage..., idx)
        self._pool: Optional[_WorkerPool] = None
        self._awaiting: list[int] = []  # procs owed a reply (crash cleanup)
        self.stats = {
            "procs": self._n_procs, "shards": num_shards,
            "barriers": 0, "exchanges": 0, "elided": 0,
            "arrivals": 0, "completions": 0,
            "bytes_sent": 0, "bytes_recv": 0,
            "barrier_wait_s": 0.0,
        }

    # -- request side (called by the system's shard_exec_event) -----------

    def exec_event(self, shard: int, cost: float, value=None,
                   scheduled: bool = False) -> Event:
        """Run one serial-pipeline slot of ``cost`` seconds on ``shard``.

        Returns a hub-side event that resolves with ``value`` at the
        exact instant the single-heap lookahead chain would have: one
        ``window`` request hop, the shard's grant/pause-gate/execute
        sequence, one ``window`` completion hop.
        """
        done = Event(self.env)
        if scheduled:
            # Same deferred-start position as _ShardExec(scheduled=True).
            self.env._schedule_call(self._enqueue_deferred,
                                    (shard, cost, done, value))
        else:
            self._enqueue(shard, cost, done, value)
        return done

    def _enqueue_deferred(self, args) -> None:
        self._enqueue(*args)

    def _enqueue(self, shard: int, cost: float, done: Event, value) -> None:
        idx = self._next_idx
        self._next_idx += 1
        self._pending[idx] = (done, value, shard)
        proc = shard % self._n_procs
        self._outbox[proc].append((shard, idx, self.env.now + self.window,
                                   cost))
        self._in_flight[proc] += 1

    # -- barrier protocol (called by the windowed driver loop) ------------

    def begin_window(self, boundary: float) -> None:
        """Inject completions due by ``boundary`` before running it.

        Each becomes a plain timer at its exact delivery instant, so it
        dispatches at the identical simulated time the single-heap
        completion hop fired.  *Order* among completions delivering at
        the same instant must also match the single heap, which
        dispatches their hop timers in creation (seq) order — i.e. in
        the order the shard execute timers were created.  That order is
        reconstructed hub-side with no global state shipped over the
        wire: every injected completion gets a global *rank* in
        injection order, and a completion whose grant came from a
        pipeline release (``busy_root < grant_time``) was created
        immediately after its *parent* — the previous completion of the
        same shard — dispatched, so same-instant cascade grants sort by
        their parents' ranks; fresh grants (``busy_root == grant_time``,
        pipeline was idle) were created in request-hop order, i.e. by
        send index; and cascade grants precede fresh grants at a tied
        creation instant because execute timers (cost ``>>`` one hop)
        always predate arrival hops in the heap.  Inductively the
        injection order *is* the single-heap dispatch order, so the
        ranks stay faithful barrier after barrier — deterministic across
        runs and independent of worker reply order, pool size, or the
        shard-to-process assignment.
        """
        inbox = self._inbox
        if not inbox:
            return
        due = [entry for entry in inbox if entry[0] <= boundary]
        if not due:
            return
        self._inbox = [entry for entry in inbox if entry[0] > boundary]
        env = self.env
        now = env.now
        pending = self._pending
        last_rank = self._last_rank
        due.sort(key=lambda entry: entry[0])
        i, n = 0, len(due)
        while i < n:
            deliver_at = due[i][0]
            j = i + 1
            while j < n and due[j][0] == deliver_at:
                j += 1
            group = due[i:j]
            if j - i > 1:
                # A shard's finishes strictly increase, so no shard (and
                # hence no parent/child pair) appears twice in a group:
                # all parent ranks are final before the group is sorted.
                group.sort(key=self._serial_key)
            # deliver_at >= the last boundary by the lookahead guarantee;
            # the guard covers the one-ulp float corner at equality.
            when = deliver_at if deliver_at > now else now
            for entry in group:
                done, value, shard = pending.pop(entry[-1])
                last_rank[shard] = self._rank
                self._rank += 1
                timer = env.timeout_at(when)
                timer.callbacks.append(_Resolver(done, value))
            i = j

    def _serial_key(self, entry: tuple):
        """Single-heap dispatch key for one same-instant completion."""
        _deliver, cost_start, grant, busy_root, idx = entry
        if busy_root == grant:          # fresh grant: pipeline was idle
            return (cost_start, grant, 1, idx)
        return (cost_start, grant, 0, self._last_rank.get(
            self._pending[idx][2], -1))

    def end_window(self, boundary: float) -> None:
        """Staggered barrier: flush frames to active workers, collect.

        Sends every *active* worker one packed frame — its new arrivals
        plus the run target ``boundary + window`` (the worker leads the
        hub by one hop; see the module docstring for why that makes the
        ``2L`` stride safe) — and blocks for each one's completion
        frame, which becomes injectable at the next :meth:`begin_window`.
        Workers with no arrivals and nothing in flight are skipped
        (their pending events are pure time-driven pause schedules: no
        inputs, no outputs) and catch up on their next active frame.
        """
        if self._pool is None:
            self._attach()
        target = boundary + self.window
        stats = self.stats
        stats["barriers"] += 1
        outbox = self._outbox
        in_flight = self._in_flight
        contact = [p for p in range(self._n_procs)
                   if outbox[p] or in_flight[p]]
        stats["elided"] += self._n_procs - len(contact)
        if not contact:
            return
        stats["exchanges"] += len(contact)
        conns = self._pool.conns
        awaiting = self._awaiting
        for p in contact:
            out = outbox[p]
            frame = b"".join((b"W", _WIN_HDR.pack(target, len(out)),
                              *(_ARRIVAL.pack(*entry) for entry in out)))
            try:
                conns[p].send_bytes(frame)
            except (BrokenPipeError, OSError) as exc:
                proc = self._pool.procs[p]
                raise RuntimeError(
                    f"shard worker {proc.name} (pid {proc.pid}) is gone "
                    f"(exitcode {proc.exitcode}): barrier send failed"
                ) from exc
            awaiting.append(p)
            stats["bytes_sent"] += len(frame)
            stats["arrivals"] += len(out)
            if out:
                outbox[p] = []
        wait_start = time.perf_counter()
        window = self.window
        inbox = self._inbox
        for p in contact:
            payload = self._recv(p)
            if payload[:1] != b"C":  # pragma: no cover - protocol trap
                raise RuntimeError(
                    f"shard worker {p} sent unexpected frame "
                    f"{payload[:1]!r}")
            awaiting.remove(p)
            stats["bytes_recv"] += len(payload)
            (n,) = _CMP_HDR.unpack_from(payload, 1)
            in_flight[p] -= n
            stats["completions"] += n
            off = 1 + _CMP_HDR.size
            for idx, cost_start, grant, busy_root, finish in \
                    _COMPLETION.iter_unpack(memoryview(payload)[off:]):
                inbox.append((finish + window, cost_start, grant,
                              busy_root, idx))
        stats["barrier_wait_s"] += time.perf_counter() - wait_start

    # -- worker lifecycle -------------------------------------------------

    def _attach(self) -> None:
        """Acquire the persistent pool and reset our worker processes.

        The reset frame is acknowledged: any frame still in a pipe from
        an abandoned earlier run is drained and discarded before the
        first window, so the per-run protocol always starts clean.
        """
        pool = _ensure_pool(self._n_procs)
        shards_of = [[s for s in range(self.num_shards)
                      if s % self._n_procs == p]
                     for p in range(self._n_procs)]
        for p in range(self._n_procs):
            params = {"shards": shards_of[p], "period": self.period,
                      "pause": self.pause,
                      "periodic_reconfig": self.periodic_reconfig}
            pool.conns[p].send_bytes(b"R" + pickle.dumps(params))
        for p in range(self._n_procs):
            while True:
                payload = self._recv(p, pool=pool)
                if payload[:1] == b"A":
                    break
                # stale completion frame from an abandoned run: discard
        self._pool = pool

    def _recv(self, p: int, pool: Optional[_WorkerPool] = None) -> bytes:
        """Receive one frame from worker ``p``, surfacing crashes.

        Polls instead of blocking so a dead worker is detected within
        ``_POLL_S`` — the old protocol blocked forever on a crashed
        worker's pipe, deadlocking the barrier.  A worker that died
        raising ships its traceback as an ``X`` frame, which is raised
        here verbatim.
        """
        pool = pool if pool is not None else self._pool
        conn, proc = pool.conns[p], pool.procs[p]
        deadline = time.monotonic() + _RECV_TIMEOUT_S
        while not conn.poll(_POLL_S):
            if not proc.is_alive():
                # One last poll: death may have raced a final X frame.
                if conn.poll(0):
                    break
                raise RuntimeError(
                    f"shard worker {proc.name} (pid {proc.pid}) died with "
                    f"exitcode {proc.exitcode} mid-barrier")
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard worker {proc.name} (pid {proc.pid}) sent no "
                    f"reply within {_RECV_TIMEOUT_S:.0f}s")
        try:
            payload = conn.recv_bytes()
        except EOFError:
            raise RuntimeError(
                f"shard worker {proc.name} (pid {proc.pid}) closed its "
                f"pipe mid-barrier (exitcode {proc.exitcode})") from None
        if payload[:1] == b"X":
            raise RuntimeError(
                f"shard worker {proc.name} (pid {proc.pid}) crashed:\n"
                + payload[1:].decode(errors="replace"))
        return payload

    def shutdown(self) -> None:
        """Detach from the persistent pool (idempotent).

        Workers stay alive for the next run — stopping them is the
        module-level :func:`shutdown_pool`'s job (registered atexit).
        Replies still owed from an interrupted barrier are drained so
        the next coupler's reset starts from a clean pipe.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        awaiting, self._awaiting = self._awaiting, []
        for p in awaiting:
            try:
                self._recv(p, pool=pool)
            except RuntimeError:
                pass  # already surfaced, or the pool will be replaced


# ---------------------------------------------------------------------------
# Worker side: one OS process hosting many shard logical processes
# ---------------------------------------------------------------------------


class _ShardLP:
    """A shard's logical process: serial pipeline + pause schedule.

    Pure *timing* replica of the shard-local portion of the hub's
    single-heap chain (grant -> pause gate -> execute cost -> release);
    all state mutation (VersionedStore applies, commit bookkeeping)
    stays hub-side, keyed off the completion instants reported here.
    Many LPs share one worker Environment; they never share state, so
    same-instant dispatch order across LPs cannot affect any completion
    time (the hub re-sorts same-instant injections by causal lineage
    anyway).
    """

    __slots__ = ("env", "pipeline", "completions", "busy_root", "_paused",
                 "_resume_signal")

    def __init__(self, env: Environment, period: float, pause: float,
                 periodic_reconfig: bool, completions: list):
        self.env = env
        self.pipeline = Resource(env, 1)
        self.completions = completions   # shared per-process frame buffer
        self.busy_root = 0.0   # when the current continuous-busy run began
        self._paused = False
        self._resume_signal: Optional[Event] = None
        if periodic_reconfig:
            # Structural replica of AhlSystem._reconfig_loop: the same
            # alternating timeout(period - pause) / timeout(pause) sums,
            # so float-accumulated epoch boundaries match the hub's
            # exactly.  (Analytic k*period arithmetic would not.)
            env.process(self._pause_loop(period, pause), name="shard-pause")

    def _pause_loop(self, period: float, pause: float):
        while True:
            yield self.env.timeout(period - pause)
            self._paused = True
            yield self.env.timeout(pause)
            self._paused = False
            signal, self._resume_signal = self._resume_signal, None
            if signal is not None and not signal.triggered:
                signal.succeed()

    def _wait_if_paused(self) -> Event:
        if not self._paused:
            return self.env.resolved()
        if self._resume_signal is None:
            self._resume_signal = self.env.event()
        return self._resume_signal


class _WorkerExec:
    """One pipeline slot inside the worker — mirrors the hub's chain.

    Besides the finish time, each completion reports its *causal
    lineage*: ``cost_start`` (when the execute timer was created —
    single-heap ties between same-instant completions resolve by the
    seq order of those timers, i.e. by their creation instants),
    ``grant_time`` (when chains from several shards park at the pause
    gate, the single-heap resumes them in gate-subscription order =
    grant order), and ``busy_root`` (which classifies the grant: equal
    to ``grant_time`` for a fresh grant into an idle pipeline, strictly
    earlier when a release cascade granted it — in which case the
    single-heap order is inherited from the *parent* completion whose
    release did the granting, which the hub identifies by injection
    rank).  :meth:`ShardCoupler.begin_window` turns this chain back
    into the exact single-heap dispatch order.
    """

    __slots__ = ("lp", "idx", "cost", "grant_time", "busy_root",
                 "cost_start", "_req")

    def __init__(self, lp: _ShardLP, idx: int, cost: float,
                 deliver_at: float):
        self.lp = lp
        self.idx = idx
        self.cost = cost
        self.grant_time = 0.0
        self.busy_root = 0.0
        self.cost_start = 0.0
        self._req = None
        env = lp.env
        timer = env.timeout_at(deliver_at if deliver_at > env.now
                               else env.now)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        lp = self.lp
        if lp.pipeline.in_use == 0:
            lp.busy_root = lp.env.now   # fresh cascade: pipeline was idle
        req = self._req = lp.pipeline.request()
        subscribe(req, self._granted)

    def _granted(self, _ev: Event) -> None:
        lp = self.lp
        self.grant_time = lp.env.now
        self.busy_root = lp.busy_root
        subscribe(lp._wait_if_paused(), self._unpaused)

    def _unpaused(self, _ev: Event) -> None:
        env = self.lp.env
        self.cost_start = env.now
        timer = env.timeout(self.cost)
        timer.callbacks.append(self._served)

    def _served(self, _ev: Event) -> None:
        lp = self.lp
        lp.pipeline.release(self._req)
        lp.completions.append((self.idx, self.cost_start, self.grant_time,
                               self.busy_root, lp.env.now))


def _shard_worker_main(conn) -> None:
    """Worker entry point (module-level: spawn pickles it by reference).

    One long-lived loop over tagged frames: ``R`` rebuilds the hosted
    shard LPs for a new run (acked with ``A``), ``W`` delivers a window
    of arrivals and a run target, ``S`` stops the process.  Any
    exception ships its traceback to the hub as an ``X`` frame before
    the process exits — a crashed worker is a loud error at the next
    barrier, not a hang.
    """
    try:
        env: Optional[Environment] = None
        lps: dict[int, _ShardLP] = {}
        completions: list[tuple] = []
        while True:
            msg = conn.recv_bytes()
            tag = msg[:1]
            if tag == b"S":
                break
            if tag == b"R":
                params = pickle.loads(msg[1:])
                env = Environment()
                completions = []
                lps = {shard: _ShardLP(env, params["period"],
                                       params["pause"],
                                       params["periodic_reconfig"],
                                       completions)
                       for shard in params["shards"]}
                conn.send_bytes(b"A")
            elif tag == b"W":
                target, _n = _WIN_HDR.unpack_from(msg, 1)
                off = 1 + _WIN_HDR.size
                for shard, idx, deliver_at, cost in \
                        _ARRIVAL.iter_unpack(memoryview(msg)[off:]):
                    _WorkerExec(lps[shard], idx, cost, deliver_at)
                env.run(until=target)
                conn.send_bytes(b"".join(
                    (b"C", _CMP_HDR.pack(len(completions)),
                     *(_COMPLETION.pack(*c) for c in completions))))
                completions.clear()
            else:  # pragma: no cover - protocol trap
                raise ValueError(f"unknown frame tag {tag!r}")
    except EOFError:
        pass  # hub died mid-run; nothing left to report to
    except Exception:
        try:
            conn.send_bytes(b"X" + traceback.format_exc().encode())
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()
