"""Conservative-lookahead parallel execution for sharded topologies.

Classic Chandy–Misra–Bryant conservative parallel DES, specialised to
the one topology this simulator has that is both expensive and cleanly
decomposable: a hub (clients + coordinator + consensus committees) that
talks to per-shard serial execute pipelines only through the network.
:attr:`repro.sim.network.Network.min_delay` guarantees a message sent at
``t`` is invisible to its receiver before ``t + min_delay``, so that
delay is the lookahead window ``L``: the hub and every shard may each
advance a full window past the last barrier without any risk of a
straggler message arriving in their past.

Topology and protocol::

    hub Environment (driver, clients, 2PC coordinator, PBFT committee)
      | exec requests sent in window k  -> deliver in shard window k+1
      v
    one worker process per shard, each owning its own Environment plus
    a serial pipeline Resource and a replica of the reconfiguration
    pause schedule
      | completions finishing in window k -> deliver in hub window k+1
      v
    hub injects them as plain timers at their exact delivery instants

Each round is lock-step: the hub runs its window ``(kL, (k+1)L]``, sends
every worker the window boundary plus that worker's new arrivals, and
each worker runs to the same boundary and replies with its completions.
Determinism does not depend on process scheduling — workers are seeded
deterministic simulations of their own, messages are exchanged only at
barriers, and injections are sorted by ``(deliver_at, grant_time,
send_index)`` so the merged timeline is reproducible bit-for-bit.

The equivalence reference is the *single-heap lookahead mode* of the
same system (e.g. ``AhlSystem(shard_lookahead=True)``), which charges
the identical hub<->shard hops as plain timers in one heap; the
differential tests in ``tests/integration/test_parallel_kernel.py``
pin byte-identical :class:`~repro.workloads.driver.RunResult`\\ s.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Optional

from .kernel import Environment, Event, subscribe
from .resources import Resource

__all__ = ["ShardCoupler"]


class _Resolver:
    """Callback shim: resolve a hub-side done event with its value."""

    __slots__ = ("done", "value")

    def __init__(self, done: Event, value):
        self.done = done
        self.value = value

    def __call__(self, _ev: Event) -> None:
        self.done._resolve(self.value)


class ShardCoupler:
    """Hub-side half of the conservative kernel.

    The owning system routes every shard-execute request through
    :meth:`exec_event` instead of running it on a hub-heap pipeline;
    the driver loop (``run_closed_loop_windowed``) calls
    :meth:`begin_window` / :meth:`end_window` around each ``env.run``
    window.  Worker processes spawn lazily on the first barrier so a
    constructed-but-unused coupler costs nothing.
    """

    def __init__(self, env: Environment, num_shards: int, window: float,
                 period: float, pause: float,
                 periodic_reconfig: bool = True):
        if window <= 0:
            raise ValueError(f"lookahead window must be positive: {window!r}")
        self.env = env
        self.num_shards = num_shards
        self.window = window
        self.period = period
        self.pause = pause
        self.periodic_reconfig = periodic_reconfig
        self._next_idx = 0                     # global send index (tiebreak)
        self._pending: dict[int, tuple] = {}   # idx -> (done event, value)
        self._outbox: list[list] = [[] for _ in range(num_shards)]
        self._inbox: list[tuple] = []          # (deliver_at, grant_time, idx)
        self._conns: Optional[list] = None
        self._procs: Optional[list] = None

    # -- request side (called by the system's shard_exec_event) -----------

    def exec_event(self, shard: int, cost: float, value=None,
                   scheduled: bool = False) -> Event:
        """Run one serial-pipeline slot of ``cost`` seconds on ``shard``.

        Returns a hub-side event that resolves with ``value`` at the
        exact instant the single-heap lookahead chain would have: one
        ``window`` request hop, the shard's grant/pause-gate/execute
        sequence, one ``window`` completion hop.
        """
        done = Event(self.env)
        if scheduled:
            # Same deferred-start position as _ShardExec(scheduled=True).
            self.env._schedule_call(self._enqueue_deferred,
                                    (shard, cost, done, value))
        else:
            self._enqueue(shard, cost, done, value)
        return done

    def _enqueue_deferred(self, args) -> None:
        self._enqueue(*args)

    def _enqueue(self, shard: int, cost: float, done: Event, value) -> None:
        idx = self._next_idx
        self._next_idx += 1
        self._pending[idx] = (done, value)
        self._outbox[shard].append((idx, self.env.now + self.window, cost))

    # -- barrier protocol (called by the windowed driver loop) ------------

    def begin_window(self, boundary: float) -> None:
        """Inject completions due by ``boundary`` before running it.

        Each becomes a plain timer at its exact delivery instant, so it
        dispatches at the identical simulated time the single-heap
        completion hop fired.  Injection order is the lexicographic sort
        of ``(deliver_at, cost_start, grant_time, busy_root,
        send_index)`` — the causal-lineage key that reproduces the
        single-heap dispatch order for same-instant completions from
        different shards (see :class:`_WorkerExec`), deterministic
        across runs and independent of worker reply order.
        """
        inbox = self._inbox
        if not inbox:
            return
        due = [entry for entry in inbox if entry[0] <= boundary]
        if not due:
            return
        self._inbox = [entry for entry in inbox if entry[0] > boundary]
        env = self.env
        now = env.now
        for entry in sorted(due):
            done, value = self._pending.pop(entry[-1])
            deliver_at = entry[0]
            # deliver_at >= the last boundary by the lookahead guarantee;
            # the max() guards the one-ulp float corner at equality.
            timer = env.timeout_at(deliver_at if deliver_at > now else now)
            timer.callbacks.append(_Resolver(done, value))

    def end_window(self, boundary: float) -> None:
        """Lock-step barrier: flush outboxes, collect completions.

        Sends every worker ``("win", boundary, arrivals)`` — arrivals
        generated this window deliver strictly inside the *next* one —
        and blocks for each worker's completion batch, which becomes
        injectable at the next :meth:`begin_window`.
        """
        if self._conns is None:
            self._start()
        for shard, conn in enumerate(self._conns):
            conn.send(("win", boundary, self._outbox[shard]))
            self._outbox[shard] = []
        window = self.window
        inbox = self._inbox
        for conn in self._conns:
            for idx, cost_start, grant, busy_root, finish in conn.recv():
                inbox.append((finish + window, cost_start, grant,
                              busy_root, idx))

    # -- worker lifecycle -------------------------------------------------

    def _start(self) -> None:
        ctx = mp.get_context("spawn")
        params = {"period": self.period, "pause": self.pause,
                  "periodic_reconfig": self.periodic_reconfig}
        self._conns, self._procs = [], []
        for shard in range(self.num_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker_main,
                               args=(child, shard, params),
                               name=f"shard-lp-{shard}", daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def shutdown(self) -> None:
        """Stop and reap the worker processes (idempotent)."""
        conns, self._conns = self._conns, None
        procs, self._procs = self._procs, None
        if conns is None:
            return
        for conn in conns:
            try:
                conn.send(("stop", 0.0, []))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


# ---------------------------------------------------------------------------
# Worker side: one logical process per shard, in its own OS process
# ---------------------------------------------------------------------------


class _ShardLP:
    """A shard's logical process: serial pipeline + pause schedule.

    Pure *timing* replica of the shard-local portion of the hub's
    single-heap chain (grant -> pause gate -> execute cost -> release);
    all state mutation (VersionedStore applies, commit bookkeeping)
    stays hub-side, keyed off the completion instants reported here.
    """

    __slots__ = ("env", "pipeline", "completions", "busy_root", "_paused",
                 "_resume_signal")

    def __init__(self, env: Environment, period: float, pause: float,
                 periodic_reconfig: bool):
        self.env = env
        self.pipeline = Resource(env, 1)
        self.completions: list[tuple] = []
        self.busy_root = 0.0   # when the current continuous-busy run began
        self._paused = False
        self._resume_signal: Optional[Event] = None
        if periodic_reconfig:
            # Structural replica of AhlSystem._reconfig_loop: the same
            # alternating timeout(period - pause) / timeout(pause) sums,
            # so float-accumulated epoch boundaries match the hub's
            # exactly.  (Analytic k*period arithmetic would not.)
            env.process(self._pause_loop(period, pause), name="shard-pause")

    def _pause_loop(self, period: float, pause: float):
        while True:
            yield self.env.timeout(period - pause)
            self._paused = True
            yield self.env.timeout(pause)
            self._paused = False
            signal, self._resume_signal = self._resume_signal, None
            if signal is not None and not signal.triggered:
                signal.succeed()

    def _wait_if_paused(self) -> Event:
        if not self._paused:
            return self.env.resolved()
        if self._resume_signal is None:
            self._resume_signal = self.env.event()
        return self._resume_signal


class _WorkerExec:
    """One pipeline slot inside the worker — mirrors the hub's chain.

    Besides the finish time, each completion reports its *causal
    lineage*: ``cost_start`` (when the execute timer was created —
    single-heap ties between same-instant completions resolve by the
    seq order of those timers, i.e. by their creation instants),
    ``grant_time`` (when chains from several shards park at the pause
    gate, the single-heap resumes them in gate-subscription order =
    grant order), and ``busy_root`` (when both of those tie — shards
    marching in post-pause lockstep — the single-heap order is
    inherited, release cascade by release cascade, from the instant
    each shard's continuous-busy run began).  The hub sorts
    same-instant injections by exactly this chain.
    """

    __slots__ = ("lp", "idx", "cost", "grant_time", "busy_root",
                 "cost_start", "_req")

    def __init__(self, lp: _ShardLP, idx: int, cost: float,
                 deliver_at: float):
        self.lp = lp
        self.idx = idx
        self.cost = cost
        self.grant_time = 0.0
        self.busy_root = 0.0
        self.cost_start = 0.0
        self._req = None
        env = lp.env
        timer = env.timeout_at(deliver_at if deliver_at > env.now
                               else env.now)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        lp = self.lp
        if lp.pipeline.in_use == 0:
            lp.busy_root = lp.env.now   # fresh cascade: pipeline was idle
        req = self._req = lp.pipeline.request()
        subscribe(req, self._granted)

    def _granted(self, _ev: Event) -> None:
        lp = self.lp
        self.grant_time = lp.env.now
        self.busy_root = lp.busy_root
        subscribe(lp._wait_if_paused(), self._unpaused)

    def _unpaused(self, _ev: Event) -> None:
        env = self.lp.env
        self.cost_start = env.now
        timer = env.timeout(self.cost)
        timer.callbacks.append(self._served)

    def _served(self, _ev: Event) -> None:
        lp = self.lp
        lp.pipeline.release(self._req)
        lp.completions.append((self.idx, self.cost_start, self.grant_time,
                               self.busy_root, lp.env.now))


def _shard_worker_main(conn, shard_id: int, params: dict) -> None:
    """Worker entry point (module-level: spawn pickles it by reference)."""
    env = Environment()
    lp = _ShardLP(env, params["period"], params["pause"],
                  params["periodic_reconfig"])
    try:
        while True:
            tag, boundary, arrivals = conn.recv()
            if tag == "stop":
                break
            for idx, deliver_at, cost in arrivals:
                _WorkerExec(lp, idx, cost, deliver_at)
            env.run(until=boundary)
            conn.send(lp.completions)
            lp.completions = []
    except EOFError:
        pass  # hub died mid-run; nothing left to report to
    finally:
        conn.close()
