"""Measurement utilities: latency recorders, throughput meters, counters.

These are what the benchmark harness reads after a run; they deliberately
mirror what Caliper / YCSB / OLTPBench report (throughput in tps, average
and percentile latency, abort counts by reason).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LatencyRecorder", "ThroughputMeter", "TxnStats", "percentile"]


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted list (p in [0, 100])."""
    if not sorted_values:
        raise ValueError("percentile of empty list")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    k = max(0, math.ceil(p / 100 * len(sorted_values)) - 1)
    return sorted_values[k]


class LatencyRecorder:
    """Accumulates per-operation latencies (simulated seconds)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.samples.append(latency)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def pct(self, p: float) -> float:
        """Nearest-rank percentile over all recorded samples.

        The sorted view is cached across calls — a p50/p99/p99.9 report
        over a million open-loop samples costs one sort, not three.  The
        length check catches samples appended behind ``record``'s back.
        """
        if not self.samples:
            return 0.0
        srt = self._sorted
        if srt is None or len(srt) != len(self.samples):
            srt = self._sorted = sorted(self.samples)
        return percentile(srt, p)

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0


class ThroughputMeter:
    """Counts completions over a measurement window.

    ``start()`` marks the beginning of the measured interval (so warm-up
    completions are excluded), ``mark()`` counts one completion, and
    ``tps(now)`` reports the rate.
    """

    def __init__(self):
        self.started_at: Optional[float] = None
        self.completed = 0
        self.completed_before_start = 0

    def start(self, now: float) -> None:
        self.started_at = now
        self.completed_before_start += self.completed
        self.completed = 0

    def mark(self) -> None:
        self.completed += 1

    def tps(self, now: float) -> float:
        if self.started_at is None:
            raise RuntimeError("ThroughputMeter.start() was never called")
        elapsed = now - self.started_at
        return self.completed / elapsed if elapsed > 0 else 0.0


@dataclass
class TxnStats:
    """Aggregate transaction outcome statistics for one run."""

    committed: int = 0
    aborted: int = 0
    abort_reasons: Counter = field(default_factory=Counter)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    phase_latency: dict[str, LatencyRecorder] = field(default_factory=dict)

    def commit(self, latency: float) -> None:
        self.committed += 1
        self.latency.record(latency)

    def abort(self, reason: str) -> None:
        self.aborted += 1
        self.abort_reasons[reason] += 1

    def record_phase(self, phase: str, latency: float) -> None:
        rec = self.phase_latency.get(phase)
        if rec is None:
            rec = LatencyRecorder(phase)
            self.phase_latency[phase] = rec
        rec.record(latency)

    @property
    def total(self) -> int:
        return self.committed + self.aborted

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.total if self.total else 0.0
