"""Simulated message-passing network.

Models a switched LAN: each node owns an egress NIC (a serial resource, so a
leader broadcasting to N-1 followers pays per-follower serialization — the
O(N) leader cost the paper attributes to consensus), messages then spend a
propagation delay in flight and land in the destination mailbox.

Supports fault injection: network partitions (symmetric or one-way,
individually healable via :class:`PartitionHandle`), per-link drops,
per-link extra delay (gray/slow nodes), and crashed destinations silently
discarding traffic.  The chaos scenario DSL (:mod:`repro.chaos`) compiles
its partition/gray-node steps onto these primitives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .costs import CostModel, DEFAULT_COSTS
from .kernel import Environment
from .rng import RngRegistry

__all__ = ["Message", "Network", "PartitionHandle"]

_msg_counter = itertools.count()


@dataclass
class Message:
    """A network message between simulated nodes."""

    src: str
    dst: str
    kind: str
    payload: Any = None
    size: int = 256
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: float = 0.0


class PartitionHandle:
    """One active partition, healable independently of any other.

    Returned by :meth:`Network.partition`; overlapping scenario windows
    each hold their own handle, so healing one window never tears down a
    partition another window still owns.  ``symmetric=False`` severs only
    the ``group_a -> group_b`` direction (an asymmetric partition: A's
    traffic to B is lost while B can still reach A).
    """

    __slots__ = ("group_a", "group_b", "symmetric", "active")

    def __init__(self, group_a: frozenset, group_b: frozenset,
                 symmetric: bool = True):
        self.group_a = group_a
        self.group_b = group_b
        self.symmetric = symmetric
        self.active = True

    def blocks(self, src: str, dst: str) -> bool:
        if src in self.group_a and dst in self.group_b:
            return True
        return (self.symmetric
                and src in self.group_b and dst in self.group_a)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arrow = "<->" if self.symmetric else "->"
        state = "" if self.active else " (healed)"
        return (f"<Partition {sorted(self.group_a)} {arrow} "
                f"{sorted(self.group_b)}{state}>")


class _Delivery:
    """One in-flight message, driven as a flat callback chain.

    Stages mirror the old ``_deliver`` coroutine hop for hop — NIC
    egress (``serve_event``), drop checks, propagation timer, enqueue —
    issuing the identical schedule sequence, so event ordering is
    byte-identical to the process-per-message form (the retired
    delivery process's completion event carried no callbacks, so losing
    it is unobservable).
    """

    __slots__ = ("net", "msg", "src", "dst")

    def __init__(self, net: "Network", msg: Message):
        self.net = net
        self.msg = msg

    def begin(self, _arg: Any) -> None:
        net, msg = self.net, self.msg
        src = net.nodes.get(msg.src)
        dst = net.nodes.get(msg.dst)
        if src is None or dst is None:
            raise KeyError(f"unknown endpoint in {msg.src!r}->{msg.dst!r}")
        self.src = src
        self.dst = dst
        msg.sent_at = net.env.now
        net.messages_sent += 1
        net.bytes_sent += msg.size
        # Egress: sender CPU overhead + wire serialization, serialized
        # through the source NIC.
        cost = net.costs.net_send_overhead + net.costs.transfer_time(msg.size)
        src.nic_out.serve_event(cost).callbacks.append(self._egress_done)

    def _egress_done(self, _ev: Any) -> None:
        net, msg = self.net, self.msg
        if self.src.crashed or net._severed(msg.src, msg.dst):
            net.messages_dropped += 1
            return
        rate = net._drop_rate.get((msg.src, msg.dst), 0.0)
        if rate > 0 and net.rng.random() < rate:
            net.messages_dropped += 1
            return
        delay = net.costs.net_latency
        if net.jitter > 0:
            delay += net.rng.expovariate(1.0 / net.jitter)
        if net._link_delay:  # gray/slow link (chaos); empty on clean runs
            delay += net._link_delay.get((msg.src, msg.dst), 0.0)
        net.env.timeout(delay).callbacks.append(self._arrive)

    def _arrive(self, _ev: Any) -> None:
        if self.dst.crashed:
            self.net.messages_dropped += 1
            return
        self.dst.enqueue(self.msg)


class Network:
    """Connects :class:`repro.sim.node.Node` objects."""

    def __init__(
        self,
        env: Environment,
        costs: CostModel = DEFAULT_COSTS,
        rng: Optional[RngRegistry] = None,
        jitter: float = 0.0,
    ):
        self.env = env
        self.costs = costs
        self.rng = (rng or RngRegistry(0)).stream("network")
        self.jitter = jitter
        self.nodes: dict[str, "Any"] = {}
        self._partitions: list[PartitionHandle] = []
        self._drop_rate: dict[tuple[str, str], float] = {}
        self._link_delay: dict[tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    @property
    def min_delay(self) -> float:
        """Lower bound on any in-flight delivery delay, in seconds.

        Every delivery pays at least ``costs.net_latency`` on the wire;
        jitter and per-link gray delays only *add* to it.  This is the
        conservative-lookahead authority for parallel execution
        (:mod:`repro.sim.parallel`): a message sent at ``t`` cannot be
        seen by its receiver before ``t + min_delay``, so logical
        processes may safely advance ``min_delay`` past the last barrier
        without waiting for each other.
        """
        return self.costs.net_latency

    # -- topology ---------------------------------------------------------

    def attach(self, node: Any) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def partition(self, group_a: set[str], group_b: set[str],
                  symmetric: bool = True) -> PartitionHandle:
        """Disconnect ``group_a`` from ``group_b``.

        Returns a :class:`PartitionHandle` that can be passed to
        :meth:`heal` to remove just this partition; with
        ``symmetric=False`` only ``group_a -> group_b`` traffic is lost.
        """
        handle = PartitionHandle(frozenset(group_a), frozenset(group_b),
                                 symmetric=symmetric)
        self._partitions.append(handle)
        return handle

    def heal(self, handle: Optional[PartitionHandle] = None) -> None:
        """Remove one partition (by handle) or, with no argument, all."""
        if handle is None:
            for h in self._partitions:
                h.active = False
            self._partitions.clear()
            return
        handle.active = False
        try:
            self._partitions.remove(handle)
        except ValueError:
            pass  # already healed (e.g. by a prior heal-all)

    def set_drop_rate(self, src: str, dst: str, rate: float) -> None:
        self._drop_rate[(src, dst)] = rate

    def set_link_delay(self, src: str, dst: str, extra: float) -> None:
        """Add ``extra`` seconds of one-way delay on the ``src->dst`` link.

        The gray/slow-node primitive: a non-zero extra delay makes the
        link (and hence the node behind it) slow without severing it.
        ``extra=0`` removes the entry so healed links leave no residue.
        """
        if extra:
            self._link_delay[(src, dst)] = extra
        else:
            self._link_delay.pop((src, dst), None)

    def _severed(self, src: str, dst: str) -> bool:
        for handle in self._partitions:
            if handle.blocks(src, dst):
                return True
        return False

    # -- sending ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Fire-and-forget asynchronous send.

        Delivery is a flat callback chain (:class:`_Delivery`), not a
        coroutine: the bootstrap callback below lands at the same
        scheduler position a per-message delivery *process* used to
        bootstrap at, then NIC egress, propagation, and enqueue are
        plain timer callbacks — one small object per message instead of
        a generator resumed through the process trampoline at each hop.
        """
        self.env._schedule_call(_Delivery(self, msg).begin, None)

    def broadcast(self, src: str, dsts: list[str], kind: str, payload: Any,
                  size: int = 256) -> None:
        """Send the same payload to every destination (separate messages)."""
        for dst in dsts:
            if dst != src:
                self.send(Message(src=src, dst=dst, kind=kind,
                                  payload=payload, size=size))
