"""Simulated message-passing network.

Models a switched LAN: each node owns an egress NIC (a serial resource, so a
leader broadcasting to N-1 followers pays per-follower serialization — the
O(N) leader cost the paper attributes to consensus), messages then spend a
propagation delay in flight and land in the destination mailbox.

Supports fault injection: network partitions, per-link drops, and crashed
destinations silently discarding traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .costs import CostModel, DEFAULT_COSTS
from .kernel import Environment
from .rng import RngRegistry

__all__ = ["Message", "Network"]

_msg_counter = itertools.count()


@dataclass
class Message:
    """A network message between simulated nodes."""

    src: str
    dst: str
    kind: str
    payload: Any = None
    size: int = 256
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: float = 0.0


class _Delivery:
    """One in-flight message, driven as a flat callback chain.

    Stages mirror the old ``_deliver`` coroutine hop for hop — NIC
    egress (``serve_event``), drop checks, propagation timer, enqueue —
    issuing the identical schedule sequence, so event ordering is
    byte-identical to the process-per-message form (the retired
    delivery process's completion event carried no callbacks, so losing
    it is unobservable).
    """

    __slots__ = ("net", "msg", "src", "dst")

    def __init__(self, net: "Network", msg: Message):
        self.net = net
        self.msg = msg

    def begin(self, _arg: Any) -> None:
        net, msg = self.net, self.msg
        src = net.nodes.get(msg.src)
        dst = net.nodes.get(msg.dst)
        if src is None or dst is None:
            raise KeyError(f"unknown endpoint in {msg.src!r}->{msg.dst!r}")
        self.src = src
        self.dst = dst
        msg.sent_at = net.env.now
        net.messages_sent += 1
        net.bytes_sent += msg.size
        # Egress: sender CPU overhead + wire serialization, serialized
        # through the source NIC.
        cost = net.costs.net_send_overhead + net.costs.transfer_time(msg.size)
        src.nic_out.serve_event(cost).callbacks.append(self._egress_done)

    def _egress_done(self, _ev: Any) -> None:
        net, msg = self.net, self.msg
        if self.src.crashed or net._severed(msg.src, msg.dst):
            net.messages_dropped += 1
            return
        rate = net._drop_rate.get((msg.src, msg.dst), 0.0)
        if rate > 0 and net.rng.random() < rate:
            net.messages_dropped += 1
            return
        delay = net.costs.net_latency
        if net.jitter > 0:
            delay += net.rng.expovariate(1.0 / net.jitter)
        net.env.timeout(delay).callbacks.append(self._arrive)

    def _arrive(self, _ev: Any) -> None:
        if self.dst.crashed:
            self.net.messages_dropped += 1
            return
        self.dst.enqueue(self.msg)


class Network:
    """Connects :class:`repro.sim.node.Node` objects."""

    def __init__(
        self,
        env: Environment,
        costs: CostModel = DEFAULT_COSTS,
        rng: Optional[RngRegistry] = None,
        jitter: float = 0.0,
    ):
        self.env = env
        self.costs = costs
        self.rng = (rng or RngRegistry(0)).stream("network")
        self.jitter = jitter
        self.nodes: dict[str, "Any"] = {}
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []
        self._drop_rate: dict[tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- topology ---------------------------------------------------------

    def attach(self, node: Any) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Disconnect ``group_a`` from ``group_b`` (both directions)."""
        self._partitions.append((frozenset(group_a), frozenset(group_b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()

    def set_drop_rate(self, src: str, dst: str, rate: float) -> None:
        self._drop_rate[(src, dst)] = rate

    def _severed(self, src: str, dst: str) -> bool:
        for a, b in self._partitions:
            if (src in a and dst in b) or (src in b and dst in a):
                return True
        return False

    # -- sending ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Fire-and-forget asynchronous send.

        Delivery is a flat callback chain (:class:`_Delivery`), not a
        coroutine: the bootstrap callback below lands at the same
        scheduler position a per-message delivery *process* used to
        bootstrap at, then NIC egress, propagation, and enqueue are
        plain timer callbacks — one small object per message instead of
        a generator resumed through the process trampoline at each hop.
        """
        self.env._schedule_call(_Delivery(self, msg).begin, None)

    def broadcast(self, src: str, dsts: list[str], kind: str, payload: Any,
                  size: int = 256) -> None:
        """Send the same payload to every destination (separate messages)."""
        for dst in dsts:
            if dst != src:
                self.send(Message(src=src, dst=dst, kind=kind,
                                  payload=payload, size=size))
