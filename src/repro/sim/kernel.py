"""Discrete-event simulation kernel.

A dependency-free, SimPy-flavoured event loop.  Simulated components are
generator coroutines ("processes") that ``yield`` events; the kernel resumes
each process when the event it waits on fires.  Time is a float in simulated
seconds, and a run is fully deterministic for a given seed (randomness comes
only from :mod:`repro.sim.rng` streams, never from the kernel itself).

Hot-path design notes
---------------------
The kernel is the inner loop of every measurement point, so it trades a
little generality for speed:

* heap entries are 5-tuples ``(when, prio, seq, func, arg)`` where
  ``func is None`` marks a plain event dispatch that :meth:`Environment.run`
  inlines instead of paying a function call per event;
* :class:`Timeout` is *cancellable*: a timer that lost its race (e.g. the
  driver's per-transaction timeout) is dropped lazily from the heap and its
  object recycled through a free list, so dead timers neither grow the heap
  nor allocate;
* :class:`Process` resumes *immediately* (same timestep, no heap round
  trip) when it yields an event that has already been processed.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name):
...     yield env.timeout(1.0)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a"))
>>> _ = env.process(worker(env, "b"))
>>> env.run()
>>> log
[(1.0, 'a'), (1.0, 'b')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the kernel (e.g. running a finished process)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either successfully (with a
    ``value``) or with a failure exception that propagates into waiters.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_scheduled", "_cancelled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    It only becomes *triggered* when the clock reaches its due time — a
    pending timeout inside ``AnyOf``/``AllOf`` does not count as occurred.

    A pending timeout can be :meth:`cancel`-led; a cancelled timeout never
    triggers, its heap entry is dropped lazily, and the object may be
    recycled by :meth:`Environment.timeout`.  **Contract:** after a
    successful cancel() the handle is dead — do not inspect it and do not
    call cancel() on it again.  Once the object has been recycled, a stale
    handle aliases an unrelated live timer, so a second cancel() through
    it would withdraw someone else's timeout.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay)

    def cancel(self) -> bool:
        """Withdraw a pending timeout; returns False if it already fired.

        Cancelling is O(1): the heap entry is skipped when popped (or
        removed wholesale when cancelled entries pile up) and the object
        goes back to the environment's free list for reuse.
        """
        if self._triggered or self._cancelled:
            return False
        self._cancelled = True
        env = self.env
        env._cancelled_count += 1
        if env._cancelled_count > 64 \
                and env._cancelled_count * 2 > len(env._queue):
            env._compact()
        return True


class Process(Event):
    """A running generator coroutine.

    A process is itself an event: it triggers when the generator returns
    (with the generator's return value) or raises (with the exception).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        init = Event(env)
        init._triggered = True
        init.callbacks = None
        env._schedule_call(self._resume, init)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        fake = Event(self.env)
        fake._triggered = True
        fake._ok = False
        fake._value = Interrupt(cause)
        fake.callbacks = None
        self.env._schedule_call(self._resume, fake)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        generator = self.generator
        while True:
            self._target = None
            try:
                if event._ok:
                    nxt = generator.send(event._value)
                else:
                    exc = event._value
                    nxt = generator.throw(exc)
            except StopIteration as stop:
                self._triggered = True
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                return
            except BaseException as exc:  # propagate into waiters, or crash
                self._triggered = True
                self._ok = False
                self._value = exc
                if self.callbacks:
                    self.env._schedule(self)
                else:
                    self.callbacks = None
                    raise
                return
            if not isinstance(nxt, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded non-event: {nxt!r}"
                )
            callbacks = nxt.callbacks
            if callbacks is None:
                # Already processed: resume immediately (same timestep),
                # skipping the heap round-trip.
                event = nxt
                continue
            self._target = nxt
            callbacks.append(self._resume)
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        check = self._check
        for ev in self.events:
            if ev.callbacks is None:
                check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(check)
        self._post_init()

    def _post_init(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered.

    Its value is the list of component values, in the order given.
    """

    __slots__ = ()

    def _post_init(self) -> None:
        # _pending can be negative here (already-processed components
        # decremented it via _check before pending ones incremented it),
        # so the authoritative barrier is all-triggered, not the counter.
        if not self._triggered and self._pending <= 0 \
                and all(ev._triggered for ev in self.events):
            self.succeed([ev._value for ev in self.events])

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0 and all(ev._triggered for ev in self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first component event triggers.

    Its value is that first event's value.
    """

    __slots__ = ()

    def _post_init(self) -> None:
        for ev in self.events:
            if ev._triggered and not self._triggered:
                if ev._ok:
                    self.succeed(ev._value)
                else:
                    self.fail(ev._value)
                return

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)


#: Cap on recycled Timeout objects kept per environment.
_TIMEOUT_POOL_MAX = 4096


class Environment:
    """The simulation clock and scheduler."""

    def __init__(self, initial_time: float = 0.0):
        self.now: float = initial_time
        self._queue: list[tuple[float, int, int, Optional[Callable], Any]] = []
        self._seq = 0
        self._cancelled_count = 0
        self._timeout_pool: list[Timeout] = []

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue,
                       (self.now + delay, 0, self._seq, None, event))

    def _schedule_call(self, func: Callable, arg: Any, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, 1, self._seq, func, arg))

    @staticmethod
    def _dispatch(event: Event) -> None:
        event._triggered = True  # Timeouts trigger at their due time.
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def _reap(self, event: Event) -> None:
        """Account a cancelled entry dropped from the heap; recycle it."""
        self._cancelled_count -= 1
        pool = self._timeout_pool
        if type(event) is Timeout and len(pool) < _TIMEOUT_POOL_MAX:
            pool.append(event)

    def _compact(self) -> None:
        """Remove all cancelled entries from the heap in one pass.

        Mutates the queue in place: ``run()`` holds a local alias to the
        list, so rebinding ``self._queue`` would desynchronize them.
        """
        queue = self._queue
        keep = []
        for item in queue:
            event = item[4]
            if item[3] is None and event._cancelled:
                self._reap(event)
            else:
                keep.append(item)
        queue[:] = keep
        heapq.heapify(queue)

    # -- public API -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay: {delay!r}")
            timer = pool.pop()
            timer.callbacks = []
            timer._value = value
            timer._ok = True
            timer._triggered = False
            timer._scheduled = False
            timer._cancelled = False
            timer.delay = delay
            self._schedule(timer, delay)
            return timer
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None,
            stop: Optional[Event] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        If ``stop`` is given, the loop also exits as soon as that event has
        triggered (checked after every callback); in that case ``now`` stays
        at the current event time instead of jumping to ``until``.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})"
            )
        queue = self._queue
        pop = heapq.heappop
        while queue:
            item = queue[0]
            when = item[0]
            if until is not None and when > until:
                break
            pop(queue)
            func = item[3]
            if func is None:
                event = item[4]
                if event._cancelled:
                    self._reap(event)
                    continue
                self.now = when
                event._triggered = True
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
            else:
                self.now = when
                func(item[4])
            if stop is not None and stop._triggered:
                return
        if until is not None:
            self.now = until

    def step(self) -> None:
        """Process a single scheduled callback (mostly for tests)."""
        queue = self._queue
        while queue:
            when, _prio, _seq, func, arg = heapq.heappop(queue)
            if func is None and arg._cancelled:
                self._reap(arg)
                continue
            self.now = when
            if func is None:
                self._dispatch(arg)
            else:
                func(arg)
            return
        raise SimulationError("empty schedule")

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled entries."""
        return len(self._queue) - self._cancelled_count
