"""Discrete-event simulation kernel.

A dependency-free, SimPy-flavoured event loop.  Simulated components are
generator coroutines ("processes") that ``yield`` events; the kernel resumes
each process when the event it waits on fires.  Time is a float in simulated
seconds, and a run is fully deterministic for a given seed (randomness comes
only from :mod:`repro.sim.rng` streams, never from the kernel itself).

Hot-path design notes
---------------------
The kernel is the inner loop of every measurement point, so it trades a
little generality for speed:

* the scheduler is an **event-slab** heap: consecutive schedules sharing
  the same ``(time, priority)`` append to one flat slab behind a single
  heap entry, so a same-time burst (broadcast fan-out, a batch commit
  resolving hundreds of waiters) costs two heap pushes total instead of
  one ``heappush``/``heappop`` pair per event.  Slabs are consumed in
  insertion order, which is exactly the ``(when, prio, seq)`` order the
  tuple-per-event scheduler produced — event ordering is bit-identical;
* :class:`Timeout` is *cancellable*: a timer that lost its race (e.g. the
  driver's per-transaction timeout) is dropped lazily from its slab and
  the object recycled through a free list, so dead timers neither grow
  the schedule nor allocate.  Because recycling aliases object identity,
  long-lived cancel sites should hold a generation-checked
  :class:`CancelToken` (see :meth:`Timeout.token`) instead of the bare
  object;
* :class:`Process` resumes *immediately* (same timestep, no heap round
  trip) when it yields an event that has already been processed; the
  resume loop is an iterative **trampoline**, so a chain of
  already-processed events of any length costs O(1) Python stack;
* the **flat-event calling convention**: helpers on the hot path hand
  back a single :class:`Event` (``yield helper()``) instead of a
  sub-generator (``yield from helper()``), so a wait costs one parked
  callback instead of a nested generator frame walked on every resume.
  Helpers that may complete without waiting return
  :meth:`Environment.resolved`, which the trampoline short-circuits.
  Completion callbacks resume waiters inline via
  :meth:`Event._resolve` — a direct continuation with no scheduler
  re-entry, falling back to the heap past ``_MAX_INLINE_DEPTH`` nested
  resolutions;
* :class:`WakeableQueue` is the producer/consumer primitive behind
  wake-on-proposal consensus loops: ``put()`` fires a parked consumer's
  waiter at the *same* simulated time, and threshold waiters reproduce
  max-batch kicks without any polling timer.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name):
...     yield env.timeout(1.0)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a"))
>>> _ = env.process(worker(env, "b"))
>>> env.run()
>>> log
[(1.0, 'a'), (1.0, 'b')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "CancelToken",
    "Process",
    "AllOf",
    "AnyOf",
    "Countdown",
    "Interrupt",
    "SimulationError",
    "WakeableQueue",
    "subscribe",
]


def subscribe(ev: "Event", callback: Callable[["Event"], None]) -> None:
    """Park ``callback`` on ``ev``, or invoke it now if already processed.

    The chain-object continuation idiom: a stage that waits on an event
    of uncertain state (a propose result, a join, another chain's done)
    must mirror the process trampoline's already-processed short-circuit
    — if the event has been dispatched, the continuation runs inline at
    the current cascade position instead of being parked forever.
    """
    callbacks = ev.callbacks
    if callbacks is None:
        callback(ev)
    else:
        callbacks.append(callback)


class SimulationError(Exception):
    """Raised for misuse of the kernel (e.g. running a finished process)."""


#: Nested inline resolutions allowed before :meth:`Event._resolve` falls
#: back to the heap.  Inline resolution only nests when a resumed waiter
#: synchronously resolves another event *within the same callback cascade*
#: (a service completion whose continuation completes another service at
#: the same instant), so real chains are a handful deep; the guard exists
#: to bound Python stack growth on pathological synthetic chains, where
#: the fallback trades the inline ordering guarantee for safety.
_MAX_INLINE_DEPTH = 64


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either successfully (with a
    ``value``) or with a failure exception that propagates into waiters.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_scheduled", "_cancelled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _resolve(self, value: Any = None) -> None:
        """Trigger and dispatch inline — a direct continuation.

        Runs waiter callbacks synchronously at the current simulated
        time instead of scheduling the event through the heap, which is
        exactly where a ``yield from`` sub-generator would have resumed
        its caller: the flat fast paths use this so their completion
        lands at the identical position in the dispatch cascade as the
        generator form's resume did.  Past :data:`_MAX_INLINE_DEPTH`
        nested resolutions the event falls back to a scheduled
        :meth:`succeed` (same time, later in the cascade) to bound
        Python stack depth.
        """
        env = self.env
        if env._inline_depth >= _MAX_INLINE_DEPTH:
            self.succeed(value)
            return
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            env._inline_depth += 1
            try:
                for callback in callbacks:
                    callback(self)
            finally:
                env._inline_depth -= 1


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    It only becomes *triggered* when the clock reaches its due time — a
    pending timeout inside ``AnyOf``/``AllOf`` does not count as occurred.

    A pending timeout can be :meth:`cancel`-led; a cancelled timeout never
    triggers, its slab entry is dropped lazily, and the object may be
    recycled by :meth:`Environment.timeout`.  **Contract:** after a
    successful cancel() the bare handle is dead — do not inspect it and do
    not call cancel() on it again.  Once the object has been recycled, a
    stale handle aliases an unrelated live timer; any site that may
    outlive the timer's lease must go through :meth:`token`, whose
    generation check turns a stale cancel into a no-op.
    """

    __slots__ = ("delay", "_generation")

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 _when: Optional[float] = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._generation = 0
        env._schedule(self, delay, _when)

    def cancel(self) -> bool:
        """Withdraw a pending timeout; returns False if it already fired.

        Cancelling is O(1): the slab entry is skipped when consumed (or
        removed wholesale when cancelled entries pile up) and the object
        goes back to the environment's free list for reuse.
        """
        if self._triggered or self._cancelled:
            return False
        self._cancelled = True
        env = self.env
        env._cancelled_count += 1
        if env._cancelled_count > 64 \
                and env._cancelled_count > env._compact_watermark:
            env._compact()
        return True

    def token(self) -> "CancelToken":
        """Return a generation-checked cancel handle for this lease.

        Unlike the bare object, the token stays safe after the timeout
        fires *and* after the object is recycled to a new lease: a stale
        ``token.cancel()`` is a no-op instead of withdrawing whatever
        unrelated timer now inhabits the object.
        """
        return CancelToken(self)


class CancelToken:
    """A single-lease cancel handle for a pooled :class:`Timeout`.

    Captures the timeout's pool generation at creation; ``cancel()``
    compares generations before acting, so a handle that outlived its
    lease (the timer fired or was cancelled, and the object was recycled
    to an unrelated caller) can never kill the new lease's timer.
    """

    __slots__ = ("_timer", "_generation")

    def __init__(self, timer: Timeout):
        self._timer = timer
        self._generation = timer._generation

    @property
    def active(self) -> bool:
        """True while this lease's timer is still pending."""
        timer = self._timer
        return (timer is not None
                and timer._generation == self._generation
                and not timer._triggered
                and not timer._cancelled)

    def cancel(self) -> bool:
        """Cancel this lease's timer; False if fired, stale, or re-used."""
        timer = self._timer
        if timer is None or timer._generation != self._generation:
            return False
        self._timer = None
        return timer.cancel()


class Process(Event):
    """A running generator coroutine.

    A process is itself an event: it triggers when the generator returns
    (with the generator's return value) or raises (with the exception).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        init = Event(env)
        init._triggered = True
        init.callbacks = None
        env._schedule_call(self._resume, init)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        fake = Event(self.env)
        fake._triggered = True
        fake._ok = False
        fake._value = Interrupt(cause)
        fake.callbacks = None
        self.env._schedule_call(self._resume, fake)

    def _resume(self, event: Event) -> None:
        # Iterative trampoline: a chain of already-processed events (the
        # `callbacks is None` short-circuit below) re-enters neither the
        # scheduler nor this function — it loops, costing O(1) stack for
        # a chain of any length.
        if self._triggered:
            return
        generator = self.generator
        while True:
            self._target = None
            try:
                if event._ok:
                    nxt = generator.send(event._value)
                else:
                    exc = event._value
                    nxt = generator.throw(exc)
            except StopIteration as stop:
                self._triggered = True
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                return
            except BaseException as exc:  # propagate into waiters, or crash
                self._triggered = True
                self._ok = False
                self._value = exc
                if self.callbacks:
                    self.env._schedule(self)
                else:
                    self.callbacks = None
                    raise
                return
            if not isinstance(nxt, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded non-event: {nxt!r}"
                )
            callbacks = nxt.callbacks
            if callbacks is None:
                # Already processed: resume immediately (same timestep),
                # skipping the heap round-trip.
                event = nxt
                continue
            self._target = nxt
            callbacks.append(self._resume)
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        check = self._check
        for ev in self.events:
            if ev.callbacks is None:
                check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(check)
        self._post_init()

    def _post_init(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered.

    Its value is the list of component values, in the order given.
    """

    __slots__ = ()

    def _post_init(self) -> None:
        # _pending can be negative here (already-processed components
        # decremented it via _check before pending ones incremented it),
        # so the authoritative barrier is all-triggered, not the counter.
        if not self._triggered and self._pending <= 0 \
                and all(ev._triggered for ev in self.events):
            self.succeed([ev._value for ev in self.events])

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0 and all(ev._triggered for ev in self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first component event triggers.

    Its value is that first event's value.
    """

    __slots__ = ()

    def _post_init(self) -> None:
        for ev in self.events:
            if ev._triggered and not self._triggered:
                if ev._ok:
                    self.succeed(ev._value)
                else:
                    self.fail(ev._value)
                return

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)


class Countdown(Event):
    """A join event that fires after ``n`` branch completions.

    The fan-out/quorum primitive behind flat 2PC chains (prepare fan-out
    -> countdown of votes -> commit/abort fan-out) and any other
    known-size fan-out a chain object must join without parking a
    process on :class:`AllOf`.  Branches report in either by calling
    :meth:`hit` directly from their completion callback, or by
    subscribing the countdown to the branch's event with :meth:`watch`.

    Dispatch equivalence with ``AllOf``: ``watch`` parks exactly one
    callback per branch event, and the n-th completion triggers the
    countdown through the scheduler (:meth:`Event.succeed`) — the
    identical cascade position ``AllOf``'s last-component succeed
    occupied — so swapping one for the other cannot reorder a seeded
    run.  The value is the list of branch values in *completion* order
    (AllOf reports construction order; every current caller folds the
    list with an order-insensitive reduction).

    Fault contract: a watched event that fails fails the countdown at
    once (fail-fast, like AllOf), and every hit/miss after the
    countdown has triggered is ignored.  That last clause is the guard
    against the double-completion race this repo's chains must survive:
    two branches dying at the same simulated instant — or a straggler
    completing after the join already aborted — must not re-trigger a
    settled event.
    """

    __slots__ = ("remaining", "values")

    def __init__(self, env: "Environment", n: int):
        super().__init__(env)
        self.remaining = n
        self.values: list[Any] = []
        if n <= 0:
            self.succeed(self.values)

    def hit(self, value: Any = None) -> None:
        """Record one branch completion; fires the join on the n-th."""
        if self._triggered:
            return
        self.values.append(value)
        self.remaining -= 1
        if self.remaining <= 0:
            self.succeed(self.values)

    def miss(self, exception: BaseException) -> None:
        """Fail the join (a branch died); ignored once triggered."""
        if self._triggered:
            return
        self.fail(exception)

    def _branch_done(self, ev: Event) -> None:
        if ev._ok:
            self.hit(ev._value)
        else:
            self.miss(ev._value)

    def watch(self, ev: Event) -> "Countdown":
        """Subscribe this countdown to a branch completion event."""
        subscribe(ev, self._branch_done)
        return self


class WakeableQueue:
    """A FIFO of pending work whose consumer parks until ``put()`` wakes it.

    The primitive behind wake-on-proposal consensus loops.  Contract:

    * :meth:`put` appends an item and fires every armed waiter whose
      threshold is met, **at the same simulated time** — a parked
      consumer observes the item with zero polling delay;
    * :meth:`wait` arms a one-shot event that fires at the first
      *subsequent* ``put()`` bringing the queue length to at least
      ``threshold``.  It never fires retroactively for items already
      queued (callers check ``len(queue)`` first) — this deliberately
      mirrors the max-batch "kick" contract of the old leader loops,
      where a backlog above the batch size does not re-kick until a new
      proposal arrives;
    * :meth:`cancel_wait` disarms a waiter that lost its race to a
      batch-window or heartbeat timer;
    * :meth:`take` pops up to ``n`` items in FIFO order; :meth:`drain`
      empties the queue (used when a deposed leader fails its backlog).
    """

    __slots__ = ("env", "_items", "_waiters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque[Any] = deque()
        self._waiters: list[tuple[int, Event]] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self):
        return iter(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wake armed waiters whose threshold is met."""
        items = self._items
        items.append(item)
        waiters = self._waiters
        if waiters:
            n = len(items)
            ready = [w for w in waiters if w[0] <= n]
            if ready:
                if len(ready) == len(waiters):
                    waiters.clear()
                else:
                    self._waiters = [w for w in waiters if w[0] > n]
                for _threshold, ev in ready:
                    if not ev._triggered:
                        ev.succeed(item)

    def wait(self, threshold: int = 1) -> Event:
        """Arm a waiter fired by the first put() reaching ``threshold``."""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        ev = Event(self.env)
        self._waiters.append((threshold, ev))
        return ev

    def cancel_wait(self, ev: Event) -> None:
        """Disarm a waiter returned by :meth:`wait` (no-op if it fired)."""
        self._waiters = [w for w in self._waiters if w[1] is not ev]

    def take(self, n: int) -> list[Any]:
        """Pop and return up to ``n`` items in FIFO order."""
        items = self._items
        if len(items) <= n:
            out = list(items)
            items.clear()
            return out
        popleft = items.popleft
        return [popleft() for _ in range(n)]

    def drain(self) -> list[Any]:
        """Pop and return every queued item."""
        out = list(self._items)
        self._items.clear()
        return out


#: Cap on recycled Timeout objects kept per environment.
_TIMEOUT_POOL_MAX = 4096

class Environment:
    """The simulation clock and scheduler.

    Scheduling is slab-hybrid: a lone entry is a plain 5-tuple
    ``(when, prio, seq, func, arg)`` exactly as the tuple-per-event
    scheduler pushed it, but consecutive schedules for the same
    ``(when, prio)`` key — a broadcast fan-out, a batch commit resolving
    hundreds of waiters, a window of identical network delays — append
    to one mutable *slab* ``[when, prio, seq, idx, func0, arg0, ...]``
    behind a single heap entry (``idx`` is the consumption cursor).  A
    burst of N events therefore costs two heap pushes instead of N.
    Correctness never depends on coalescing: heap items dispatch in
    ``(when, prio, seq)`` order (tuples and slabs never reach the
    uncomparable tail positions because ``seq`` is unique) and entries
    within a slab dispatch in insertion order, which together reproduce
    exactly the tuple-per-event ``(when, prio, seq)`` order however the
    entries happen to be grouped.
    """

    def __init__(self, initial_time: float = 0.0):
        self.now: float = initial_time
        # heap of 5-tuples and slab items (see class docstring)
        self._queue: list = []
        # coalescing memo: key of the most recent push, plus the open
        # slab's entries list when that push upgraded to a slab (None
        # while the key still maps to a lone tuple)
        self._last_when: Optional[float] = None
        self._last_prio = 0
        self._last: Optional[list] = None
        self._seq = 0
        self._cancelled_count = 0
        # compaction threshold: the live-entry count observed by the
        # last _compact (updated there for free).  The trigger must
        # scale with *entries*, not heap items — slabs collapse bursts
        # into single items, and comparing against len(_queue) would
        # fire full-queue scans every ~64 cancels.  Scanning only after
        # ~live-size cancels keeps compaction amortized O(1) per cancel
        # without maintaining a per-event counter on the hot path.
        self._compact_watermark = 64
        self._timeout_pool: list[Timeout] = []
        self._inline_depth = 0

    # -- scheduling -------------------------------------------------------
    # _schedule and _schedule_call inline the same slab-push sequence:
    # they are the two hottest functions in the simulator and a shared
    # helper costs a Python call frame per event.

    def _schedule(self, event: Event, delay: float = 0.0,
                  when: Optional[float] = None) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        if when is None:
            when = self.now + delay
        if self._last_when == when and self._last_prio == 0:
            entries = self._last
            if type(entries) is list:
                entries.append(None)
                entries.append(event)
                return
            # second entry for this key: open a slab for it (and any
            # further same-key arrivals); it sorts after the lone tuple
            seq = self._seq = self._seq + 1
            entries = [1, None, event]
            self._last = entries
            heapq.heappush(self._queue, (when, 0, seq, entries))
            return
        seq = self._seq = self._seq + 1
        self._last_when = when
        self._last_prio = 0
        self._last = None
        heapq.heappush(self._queue, (when, 0, seq, None, event))

    def _schedule_call(self, func: Callable, arg: Any, delay: float = 0.0) -> None:
        when = self.now + delay
        if self._last_when == when and self._last_prio == 1:
            entries = self._last
            if type(entries) is list:
                entries.append(func)
                entries.append(arg)
                return
            seq = self._seq = self._seq + 1
            entries = [1, func, arg]
            self._last = entries
            heapq.heappush(self._queue, (when, 1, seq, entries))
            return
        seq = self._seq = self._seq + 1
        self._last_when = when
        self._last_prio = 1
        self._last = None
        heapq.heappush(self._queue, (when, 1, seq, func, arg))

    def _schedule_call_at(self, func: Callable, arg: Any, when: float) -> None:
        """Schedule ``func(arg)`` at the absolute simulated time ``when``.

        The timing wheel drains its slots through this: entries carry the
        exact instant they were filed for, and re-deriving it as
        ``now + (when - now)`` can land one ulp away from the stored
        float — enough to flip dispatch order against a heap-scheduled
        event at the same instant.
        """
        if when < self.now:
            raise SimulationError(
                f"_schedule_call_at({when!r}) is in the past "
                f"(now={self.now!r})")
        if self._last_when == when and self._last_prio == 1:
            entries = self._last
            if type(entries) is list:
                entries.append(func)
                entries.append(arg)
                return
            seq = self._seq = self._seq + 1
            entries = [1, func, arg]
            self._last = entries
            heapq.heappush(self._queue, (when, 1, seq, entries))
            return
        seq = self._seq = self._seq + 1
        self._last_when = when
        self._last_prio = 1
        self._last = None
        heapq.heappush(self._queue, (when, 1, seq, func, arg))

    def _schedule_call_last(self, func: Callable, arg: Any) -> None:
        """Schedule ``func(arg)`` at the current instant, *after* every
        event and priority-1 call already due at it.

        Priority 2 is a rendezvous slot for cross-build determinism: a
        callback whose dispatch position at a tied instant would
        otherwise depend on *when its trigger was created* (a network
        hop timer made one lookahead earlier vs. a barrier injection
        made at the window start) runs here instead, so single-heap and
        parallel builds place it identically.  Relative order among
        same-instant priority-2 entries is creation order, as usual.
        No slab coalescing: these are rare (one per cross-domain
        delivery instant), and leaving the ``_last`` memo untouched
        keeps the priority-1 fast path unperturbed.
        """
        seq = self._seq = self._seq + 1
        heapq.heappush(self._queue, (self.now, 2, seq, func, arg))

    @staticmethod
    def _dispatch(event: Event) -> None:
        event._triggered = True  # Timeouts trigger at their due time.
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def _reap(self, event: Event) -> None:
        """Account a cancelled entry dropped from its slab; recycle it."""
        self._cancelled_count -= 1
        pool = self._timeout_pool
        if type(event) is Timeout and len(pool) < _TIMEOUT_POOL_MAX:
            pool.append(event)

    def _compact(self) -> None:
        """Remove all cancelled entries from the schedule in one pass.

        Mutates the queue in place: ``run()`` holds a local alias to the
        list, so rebinding ``self._queue`` would desynchronize them.
        """
        queue = self._queue
        keep = []
        live = 0
        for item in queue:
            entries = item[3]
            if type(entries) is not list:
                event = item[4]
                if entries is None and event._cancelled:
                    self._reap(event)
                else:
                    live += 1
                    keep.append(item)
                continue
            kept: list = [1]
            for i in range(entries[0], len(entries), 2):
                func = entries[i]
                arg = entries[i + 1]
                if func is None and arg._cancelled:
                    self._reap(arg)
                else:
                    kept.append(func)
                    kept.append(arg)
            if len(kept) > 1:
                live += (len(kept) - 1) // 2
                entries[:] = kept
                keep.append(item)
            elif self._last is entries:
                self._last = None
        queue[:] = keep
        heapq.heapify(queue)
        self._compact_watermark = max(64, live)

    # -- public API -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def resolved(self, value: Any = None) -> Event:
        """An already-processed event carrying ``value``.

        The return type of the flat-event ("awaitable call") protocol
        for a helper that completed without waiting: the caller's
        ``yield`` of it short-circuits in the :class:`Process`
        trampoline — no heap entry, no callback, no scheduler re-entry.
        """
        ev = Event(self)
        ev._triggered = True
        ev.callbacks = None
        ev._value = value
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if self._timeout_pool:
            if delay < 0:
                raise ValueError(f"negative delay: {delay!r}")
            return self._revive(delay, self.now + delay, value)
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """A timeout pinned to the absolute simulated time ``when``.

        ``timeout(when - now)`` can land on a float one ulp away from a
        previously computed boundary; wake-on-proposal loops use this to
        hit batch-window grid points exactly.
        """
        if when < self.now:
            raise ValueError(f"timeout_at({when!r}) is in the past "
                             f"(now={self.now!r})")
        if self._timeout_pool:
            return self._revive(when - self.now, when, value)
        return Timeout(self, when - self.now, value, _when=when)

    def _revive(self, delay: float, when: float, value: Any) -> Timeout:
        timer = self._timeout_pool.pop()
        timer.callbacks = []
        timer._value = value
        timer._ok = True
        timer._triggered = False
        timer._scheduled = False
        timer._cancelled = False
        timer._generation += 1
        timer.delay = delay
        self._schedule(timer, when=when)
        return timer

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None,
            stop: Optional[Event] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        If ``stop`` is given, the loop also exits as soon as that event has
        triggered (checked after every callback); in that case ``now`` stays
        at the current event time instead of jumping to ``until``.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})"
            )
        queue = self._queue
        pop = heapq.heappop
        while queue:
            item = queue[0]
            when = item[0]
            entries = item[3]
            if type(entries) is not list:
                # lone entry: the classic tuple fast path (a stale memo
                # is harmless — a later same-key push opens a slab that
                # sorts by seq exactly where the entry would have gone)
                if until is not None and when > until:
                    break
                pop(queue)
                func = entries
                arg = item[4]
            else:
                idx = entries[0]
                n = len(entries)
                if idx >= n:
                    # emptied behind run's back (step(), _compact());
                    # consumption retires slabs eagerly below
                    pop(queue)
                    if self._last is entries:
                        self._last = None
                    continue
                if until is not None and when > until:
                    break
                if idx + 2 >= n:
                    # last entry: retire the slab before dispatching, so
                    # a same-key schedule from the callback opens a fresh
                    # one (= runs after everything already queued)
                    func = entries[idx]
                    arg = entries[idx + 1]
                    pop(queue)
                    if self._last is entries:
                        self._last = None
                else:
                    entries[0] = idx + 2
                    func = entries[idx]
                    arg = entries[idx + 1]
                    entries[idx] = entries[idx + 1] = None
            if func is None:
                if arg._cancelled:
                    self._reap(arg)
                    continue
                self.now = when
                arg._triggered = True
                callbacks, arg.callbacks = arg.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(arg)
            else:
                self.now = when
                func(arg)
            if stop is not None and stop._triggered:
                return
        if until is not None:
            self.now = until

    def step(self) -> None:
        """Process a single scheduled callback (mostly for tests)."""
        queue = self._queue
        while queue:
            item = queue[0]
            entries = item[3]
            if type(entries) is not list:
                heapq.heappop(queue)
                func = entries
                arg = item[4]
            else:
                idx = entries[0]
                if idx >= len(entries):
                    heapq.heappop(queue)
                    if self._last is entries:
                        self._last = None
                    continue
                entries[0] = idx + 2
                func = entries[idx]
                arg = entries[idx + 1]
                entries[idx] = entries[idx + 1] = None
            if func is None and arg._cancelled:
                self._reap(arg)
                continue
            self.now = item[0]
            if func is None:
                self._dispatch(arg)
            else:
                func(arg)
            return
        raise SimulationError("empty schedule")

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled entries.

        O(heap items) per access — it walks the slabs.  This is a
        diagnostic for tests and debugging; maintaining a per-event
        counter instead costs ~15% on the dispatch hot path (measured),
        so do not poll this property inside simulation loops.
        """
        total = 0
        for item in self._queue:
            entries = item[3]
            if type(entries) is list:
                total += (len(entries) - entries[0]) // 2
            else:
                total += 1
        return total - self._cancelled_count
