"""Deterministic random-number streams.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so adding a new component never perturbs the draws
seen by existing ones and whole runs replay bit-identically.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated node)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
