"""Discrete-event simulation substrate (kernel, network, nodes, costs)."""

from .costs import DEFAULT_COSTS, CostModel
from .kernel import (AllOf, AnyOf, Countdown, Environment, Event, Interrupt,
                     Process, Timeout)
from .metrics import LatencyRecorder, ThroughputMeter, TxnStats, percentile
from .network import Message, Network
from .node import Node
from .resources import Resource, Store
from .rng import RngRegistry
from .wheel import TimingWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "CostModel",
    "Countdown",
    "DEFAULT_COSTS",
    "Environment",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "Message",
    "Network",
    "Node",
    "Process",
    "Resource",
    "RngRegistry",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "TimingWheel",
    "TxnStats",
    "percentile",
]
