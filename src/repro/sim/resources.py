"""Shared resources for simulated processes.

``Resource`` models a capacity-limited server (a CPU core pool, a disk);
``Store`` models an unbounded FIFO queue between producers and consumers
(a mailbox, a replication stream).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .kernel import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO resource with integer capacity.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)

    or, equivalently, ``yield from resource.serve(service_time)``.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: Deque[Event] = deque()
        # instrumentation
        self.total_requests = 0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    def request(self) -> Event:
        """Return an event that fires once a slot is granted."""
        self.total_requests += 1
        req = self.env.event()
        if self.in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def _take_slot(self) -> None:
        """Slot-acquisition bookkeeping shared by every grant path."""
        if self.in_use == 0:
            self._busy_since = self.env.now
        self.in_use += 1

    def _grant(self, req: Event) -> None:
        self._take_slot()
        req.succeed(req)

    def release(self, req: Event) -> None:
        """Release a previously granted slot."""
        self.in_use -= 1
        if self.in_use < 0:
            raise RuntimeError("release() without matching request()")
        if self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        while self._waiting and self.in_use < self.capacity:
            nxt = self._waiting.popleft()
            self._grant(nxt)

    def serve(self, service_time: float) -> Generator[Event, Any, None]:
        """Acquire a slot, hold it for ``service_time``, release it.

        When a slot is free and nobody queues ahead, the grant is folded
        into the service timeout (no request event, no extra scheduler
        round-trip) — the common case on an uncontended resource.
        """
        if self.in_use < self.capacity and not self._waiting:
            self.total_requests += 1
            self._take_slot()
            try:
                yield self.env.timeout(service_time)
            finally:
                self.release(None)
            return
        req = self.request()
        yield req
        try:
            yield self.env.timeout(service_time)
        finally:
            self.release(req)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy (any slot occupied)."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        span = elapsed if elapsed is not None else self.env.now
        return busy / span if span > 0 else 0.0


class Store:
    """An unbounded FIFO channel of items.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is queued).
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get_all(self) -> list[Any]:
        """Drain and return all currently queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)
