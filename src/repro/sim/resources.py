"""Shared resources for simulated processes.

``Resource`` models a capacity-limited server (a CPU core pool, a disk);
``Store`` models an unbounded FIFO queue between producers and consumers
(a mailbox, a replication stream).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .kernel import Environment, Event

__all__ = ["Resource", "Store"]


class _ServeRequest(Event):
    """A queued flat-path serve: grant -> service timer -> release -> done.

    The event itself is the slot request sitting in ``Resource._waiting``;
    when the grant dispatches it schedules the service timer, and the
    timer's completion releases the slot and resolves ``done`` *inline* —
    the caller resumes at the identical position in the dispatch cascade
    as the generator form's ``finally: release()`` resume did.
    """

    __slots__ = ("resource", "service_time", "done")

    def __init__(self, resource: "Resource", service_time: float):
        super().__init__(resource.env)
        self.resource = resource
        self.service_time = service_time
        self.done = Event(resource.env)
        self.callbacks.append(self._granted)

    def _granted(self, _ev: Event) -> None:
        timer = self.env.timeout(self.service_time)
        timer.callbacks.append(self._served)

    def _served(self, _ev: Event) -> None:
        self.resource.release(self)
        self.done._resolve()


class Resource:
    """A FIFO resource with integer capacity.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)

    or, equivalently, ``yield from resource.serve(service_time)``.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: Deque[Event] = deque()
        # instrumentation
        self.total_requests = 0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    def request(self) -> Event:
        """Return an event that fires once a slot is granted."""
        self.total_requests += 1
        req = self.env.event()
        if self.in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def _take_slot(self) -> None:
        """Slot-acquisition bookkeeping shared by every grant path."""
        if self.in_use == 0:
            self._busy_since = self.env.now
        self.in_use += 1

    def _grant(self, req: Event) -> None:
        self._take_slot()
        req.succeed(req)

    def release(self, req: Optional[Event]) -> None:
        """Release a previously granted slot.

        Validates *before* mutating: an unmatched release raises without
        corrupting ``in_use`` or the busy-time bookkeeping, so the
        resource stays usable after the error.
        """
        if self.in_use <= 0:
            raise RuntimeError("release() without matching request()")
        self.in_use -= 1
        if self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        while self._waiting and self.in_use < self.capacity:
            nxt = self._waiting.popleft()
            self._grant(nxt)

    def serve_event(self, service_time: float) -> Event:
        """Flat fast path: acquire, hold for ``service_time``, release.

        Returns a single :class:`Event` for the caller to ``yield`` —
        the flat-event calling convention — instead of the sub-generator
        :meth:`serve` hands back for ``yield from``.  Uncontended, the
        grant, service timeout, and release fold into one scheduled
        timer whose completion callback releases the slot immediately
        before the waiter resumes; contended, a :class:`_ServeRequest`
        queues, its grant schedules the timer, and the timer resolves
        the caller inline.  Both paths issue the identical schedule
        sequence as :meth:`serve`, so event ordering is byte-identical.

        Contract difference vs the generator form: interrupting a waiter
        mid-service no longer releases the slot early — the slot is held
        until the scheduled service end regardless (the service itself
        is not cancelled by the waiter's demise).
        """
        self.total_requests += 1
        if self.in_use < self.capacity and not self._waiting:
            self._take_slot()
            done = self.env.timeout(service_time)
            done.callbacks.append(self._finish_serve)
            return done
        req = _ServeRequest(self, service_time)
        self._waiting.append(req)
        return req.done

    def _finish_serve(self, _ev: Event) -> None:
        self.release(None)

    def serve(self, service_time: float) -> Generator[Event, Any, None]:
        """Acquire a slot, hold it for ``service_time``, release it.

        When a slot is free and nobody queues ahead, the grant is folded
        into the service timeout (no request event, no extra scheduler
        round-trip) — the common case on an uncontended resource.

        Prefer :meth:`serve_event` on hot paths: it returns a single
        event (``yield`` it) and skips the sub-generator frame this form
        costs on every resume.
        """
        if self.in_use < self.capacity and not self._waiting:
            self.total_requests += 1
            self._take_slot()
            try:
                yield self.env.timeout(service_time)
            finally:
                self.release(None)
            return
        req = self.request()
        yield req
        try:
            yield self.env.timeout(service_time)
        finally:
            self.release(req)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy (any slot occupied)."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        span = elapsed if elapsed is not None else self.env.now
        return busy / span if span > 0 else 0.0


class Store:
    """An unbounded FIFO channel of items.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is queued).
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get_all(self) -> list[Any]:
        """Drain and return all currently queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items

    def clear(self) -> None:
        """Drop all queued items, keeping parked getters armed.

        Crash-restart support: a recovering node discards pre-crash
        in-flight messages, but perpetual receiver chains (e.g. a Raft
        replica's message pump) stay parked on their ``get()`` and must
        resume on the *next* post-restart item, so ``_getters`` is left
        untouched.
        """
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)
