"""Spanner-like system model: sharded NewSQL with pessimistic locking.

For the Figure 14 sharding study: data is range/hash partitioned over
shards of 3 nodes, each shard a Paxos group; read-write transactions take
strict two-phase locks and commit through Paxos, with cross-shard
transactions coordinated by trusted 2PC plus a commit-wait.

The cross-shard commit is the real 2PC shape: the coordinator fans the
prepare out to every participant shard **in parallel** (each a Paxos
round at that shard), joins the votes with a countdown, replicates the
commit decision at the coordinator shard, then fans the commit record
out to the other participants — again in parallel.  All of it runs as
flat callback chains (:class:`_PaxosWrite` per consensus round, a
:class:`repro.sim.kernel.Countdown` per fan-out), no Process per
transaction or per participant.

The performance-relevant contrast with TiDB (Section 5.5): conflicting
transactions *contend for locks* under pessimistic concurrency control —
under a skewed workload they queue on hot keys for the full lock span —
whereas TiDB aborts instantly on conflict.  Hence Spanner trails TiDB as
shards scale.
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.twopl import LockDenied, LockManager, LockMode
from ..sharding.partitioner import HashPartitioner
from ..sim.kernel import Countdown, Environment, Event, subscribe
from ..sim.resources import Resource
from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["SpannerSystem"]


class _PaxosWrite:
    """One modelled Paxos consensus round at a shard, as a flat chain.

    Serialized log-pipeline slot at the shard leader -> NIC egress for
    the replication fan-out -> one LAN round trip.  ``start`` begins
    inline (no scheduled slot) at the caller's cascade position — the
    same place the old ``yield from _paxos_write`` entered the helper —
    and ``done`` is succeeded through the scheduler where the helper's
    final timeout resumed its caller.
    """

    __slots__ = ("system", "shard", "size", "done")

    def __init__(self, system: "SpannerSystem", shard: int, size: int):
        self.system = system
        self.shard = shard
        self.size = size
        self.done = Event(system.env)

    def start(self) -> Event:
        system = self.system
        leader = system.shard_leaders[self.shard]
        ev = system.log_threads[leader.name].serve_event(
            system.costs.raft_propose + system.costs.raft_apply
            + system.costs.store_put)
        ev.callbacks.append(self._logged)
        return self.done

    def _logged(self, _ev: Event) -> None:
        system = self.system
        leader = system.shard_leaders[self.shard]
        ev = leader.nic_out.serve_event(
            2 * (system.costs.net_send_overhead
                 + system.costs.transfer_time(self.size)))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(2 * self.system.costs.net_latency)
        timer.callbacks.append(self._round_tripped)

    def _round_tripped(self, _ev: Event) -> None:
        self.done.succeed(self.shard)


class _Txn:
    """One strict-2PL read-write transaction as a flat chain.

    Mirror of the retained ``_do_txn_gen``/``_locked_attempt``
    coroutines: lock acquisition in key order (reads S, writes X),
    reads + logic, then the commit protocol — a single Paxos round for
    one-shard transactions, or the parallel 2PC countdown chain
    (prepare fan-out -> vote countdown -> decision round -> commit
    fan-out) across shards — followed by the commit wait with locks
    still held.  Locks are released at every exit exactly once.
    """

    __slots__ = ("system", "txn", "done", "held", "sorted_ops", "reads",
                 "write_set", "shards", "_idx")

    def __init__(self, system: "SpannerSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done
        self.held: list[str] = []
        self.sorted_ops: list = []
        self.reads: dict[str, bytes] = {}
        self.write_set: dict[str, bytes] = {}
        self.shards: list[int] = []
        self._idx = 0

    def start(self) -> None:
        self.system.env._schedule_call(self._begin, None)

    def _begin(self, _arg) -> None:
        system = self.system
        txn = self.txn
        txn.submitted_at = system.env.now
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead
            + system.costs.transfer_time(128 + txn.payload_size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        system = self.system
        coordinator_shard = system._shard_of(self.txn.ops[0].key)
        coordinator = system.shard_leaders[coordinator_shard]
        ev = coordinator.compute(system.costs.spanner_request_cpu)
        ev.callbacks.append(self._coord_ready)

    # -- strict 2PL lock acquisition ---------------------------------------

    def _coord_ready(self, _ev: Event) -> None:
        self.sorted_ops = sorted(self.txn.ops, key=lambda o: o.key)
        self._idx = 0
        self._next_lock()

    def _next_lock(self) -> None:
        if self._idx >= len(self.sorted_ops):
            self._read_and_execute()
            return
        system = self.system
        op = self.sorted_ops[self._idx]
        mode = (LockMode.EXCLUSIVE if op.is_write else LockMode.SHARED)
        req = system.locks.acquire(self.txn.txn_id, op.key, mode)
        subscribe(req, self._locked)

    def _locked(self, ev: Event) -> None:
        if not ev._ok:               # LockDenied (wait-die style policies)
            self.system.lock_aborts += 1
            self.txn.mark_aborted(AbortReason.LOCK_TIMEOUT)
            self._finish(False)
            return
        self.held.append(self.sorted_ops[self._idx].key)
        self._idx += 1
        self._next_lock()

    # -- execution ---------------------------------------------------------

    def _read_and_execute(self) -> None:
        system = self.system
        txn = self.txn
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, version = system.state.get(op.key)
                txn.read_set[op.key] = version
                self.reads[op.key] = value if value is not None else b""
        write_set = self.write_set
        if txn.logic is not None:
            derived = txn.logic(self.reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                self._finish(False)
                return
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.write_set = write_set
        if not write_set:
            txn.mark_committed()
            self._finish(True)
            return
        self.shards = sorted({system._shard_of(k) for k in write_set})
        if len(self.shards) == 1:
            ev = system._paxos_write_event(self.shards[0],
                                           128 + txn.payload_size)
            ev.callbacks.append(self._commit_replicated)
        else:
            # 2PC phase 1: prepare Paxos rounds at every participant
            # shard in parallel; the countdown joins the votes.
            join = system._paxos_fanout(self.shards, 96)
            join.callbacks.append(self._prepared)

    def _prepared(self, _ev: Event) -> None:
        # Unanimous prepare: replicate the commit decision at the
        # coordinator shard (carries the transaction payload).
        system = self.system
        ev = system._paxos_write_event(self.shards[0],
                                       128 + self.txn.payload_size)
        ev.callbacks.append(self._decided)

    def _decided(self, _ev: Event) -> None:
        # 2PC phase 2: fan the commit record out to the other
        # participants, again in parallel.
        join = self.system._paxos_fanout(self.shards[1:], 96)
        subscribe(join, self._commit_replicated)

    def _commit_replicated(self, _ev: Event) -> None:
        # Commit wait (TrueTime uncertainty) plus the lock span through
        # result delivery and cleanup — all with locks still held, which
        # is what queues conflicting transactions behind a hot key.
        system = self.system
        timer = system.env.timeout(
            system._commit_wait_time(self.shards[0]))
        timer.callbacks.append(self._commit_waited)

    def _commit_waited(self, _ev: Event) -> None:
        system = self.system
        txn = self.txn
        system._version += 1
        system.state.apply_write_set(self.write_set, system._version)
        txn.commit_version = system._version
        txn.mark_committed()
        self._finish(True)

    def _finish(self, committed: bool) -> None:
        system = self.system
        txn = self.txn
        held, self.held = self.held, []
        for key in held:
            system.locks.release(txn.txn_id, key)
        if not committed and txn.abort_reason is None:
            txn.mark_aborted(AbortReason.LOCK_TIMEOUT)
        self.done.succeed(txn)


class SpannerSystem(TransactionalSystem):
    name = "spanner"

    NODES_PER_SHARD = 3  # Fig. 14 setup

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        super().__init__(env, config)
        if self.config.num_nodes % self.NODES_PER_SHARD:
            raise ValueError("num_nodes must be a multiple of 3 (Fig. 14)")
        self.num_shards = self.config.num_nodes // self.NODES_PER_SHARD
        self.shard_leaders = self._new_nodes(self.num_shards, "spanner-leader")
        # followers exist for cost symmetry; Paxos is charged as a modelled
        # round on the leader (2 followers ack within the LAN RTT)
        self._new_nodes(self.config.num_nodes - self.num_shards,
                        "spanner-follower")
        self.partitioner = HashPartitioner(self.num_shards)
        self.state = VersionedStore()
        # Sorted key acquisition makes plain FIFO queueing deadlock-free;
        # conflicting transactions *wait* (Section 5.5's contrast with
        # TiDB's abort-fast behaviour).
        self.locks = LockManager(env, policy="queue")
        # serialized Paxos-log pipeline per shard leader
        self.log_threads = {n.name: Resource(env, 1)
                            for n in self.shard_leaders}
        self._version = 0
        self.lock_aborts = 0

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self.state.put(key, value, 0)

    def shard_domains(self) -> dict:
        """Decomposition metadata for the conservative parallel kernel.

        One domain per Paxos shard.  Lookahead is zero: 2PL holds locks
        across shards through a shared :class:`LockManager` (grants and
        releases are same-instant cross-shard effects, not messages), so
        the domains are not network-isolated and per-shard parallel
        execution is not licensed for this topology.
        """
        return {
            "domains": [f"spanner-shard-{i}"
                        for i in range(self.num_shards)],
            "lookahead": 0.0,
        }

    # -- helpers ----------------------------------------------------------------

    def _shard_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def _commit_wait_time(self, shard: int) -> float:
        """Commit-wait plus lock span, stretched by the coordinator
        leader's clock-uncertainty skew.

        TrueTime commit-wait is "sleep out the uncertainty bound": a
        chaos ClockSkew step raises :attr:`Node.clock_skew` on a shard
        leader and every commit it coordinates waits that much longer —
        correctness holds, latency pays.  The unskewed path returns the
        exact historical float (no ``+ 0.0`` drift).
        """
        wait = self.costs.spanner_commit_wait + self.costs.spanner_lock_hold
        skew = self.shard_leaders[shard].clock_skew
        return wait + skew if skew else wait

    def _paxos_write_event(self, shard: int, size: int) -> Event:
        """One Paxos consensus round at a shard (flat chain)."""
        return _PaxosWrite(self, shard, size).start()

    def _paxos_fanout(self, shards: list[int], size: int) -> Countdown:
        """Parallel Paxos rounds at ``shards``, joined by a countdown."""
        join = Countdown(self.env, len(shards))
        for shard in shards:
            join.watch(_PaxosWrite(self, shard, size).start())
        return join

    # -- transactions -------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _Txn(self, txn, done).start()
        return done

    def submit_gen(self, txn: Transaction) -> Event:
        """Generator-form transaction path, kept for differential testing."""
        done = self.env.event()
        self.spawn(self._do_txn_gen(txn, done), name="spanner-txn")
        return done

    def _do_txn_gen(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(128 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        coordinator_shard = self._shard_of(txn.ops[0].key)
        coordinator = self.shard_leaders[coordinator_shard]
        yield coordinator.compute(self.costs.spanner_request_cpu)
        held: list[str] = []
        try:
            committed = yield from self._locked_attempt(txn, held)
        finally:
            for key in held:
                self.locks.release(txn.txn_id, key)
        if not committed and txn.abort_reason is None:
            txn.mark_aborted(AbortReason.LOCK_TIMEOUT)
        done.succeed(txn)

    def _locked_attempt(self, txn: Transaction, held: list[str]):
        # Acquire strict 2PL locks in key order (reads S, writes X).
        reads: dict[str, bytes] = {}
        for op in sorted(txn.ops, key=lambda o: o.key):
            mode = (LockMode.EXCLUSIVE if op.is_write else LockMode.SHARED)
            req = self.locks.acquire(txn.txn_id, op.key, mode)
            try:
                yield req
            except LockDenied:
                self.lock_aborts += 1
                txn.mark_aborted(AbortReason.LOCK_TIMEOUT)
                return False
            held.append(op.key)
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, version = self.state.get(op.key)
                txn.read_set[op.key] = version
                reads[op.key] = value if value is not None else b""
        write_set: dict[str, bytes] = {}
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                return False
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.write_set = write_set
        if not write_set:
            txn.mark_committed()
            return True
        shards = sorted({self._shard_of(k) for k in write_set})
        if len(shards) == 1:
            yield self._paxos_write_event(shards[0], 128 + txn.payload_size)
        else:
            # 2PC: parallel prepare rounds, the decision round at the
            # coordinator shard, then the parallel commit fan-out.
            yield self._paxos_fanout(shards, 96)
            yield self._paxos_write_event(shards[0], 128 + txn.payload_size)
            yield self._paxos_fanout(shards[1:], 96)
        # Commit wait (TrueTime uncertainty) plus the lock span through
        # result delivery and cleanup — all with locks still held, which
        # is what queues conflicting transactions behind a hot key.
        yield self.env.timeout(self._commit_wait_time(shards[0]))
        self._version += 1
        self.state.apply_write_set(write_set, self._version)
        txn.commit_version = self._version
        txn.mark_committed()
        return True

    # -- queries -----------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="spanner-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(96))
        yield self.env.timeout(self.costs.net_latency)
        for op in txn.ops:
            leader = self.shard_leaders[self._shard_of(op.key)]
            yield leader.compute(self.costs.store_get)
            self.state.get(op.key)
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
