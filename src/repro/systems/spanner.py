"""Spanner-like system model: sharded NewSQL with pessimistic locking.

For the Figure 14 sharding study: data is range/hash partitioned over
shards of 3 nodes, each shard a Paxos group; read-write transactions take
strict two-phase locks and commit through Paxos, with cross-shard
transactions coordinated by trusted 2PC plus a commit-wait.

The performance-relevant contrast with TiDB (Section 5.5): conflicting
transactions *contend for locks* under pessimistic concurrency control —
under a skewed workload they queue on hot keys for the full lock span —
whereas TiDB aborts instantly on conflict.  Hence Spanner trails TiDB as
shards scale.
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.twopl import LockDenied, LockManager, LockMode
from ..sharding.partitioner import HashPartitioner
from ..sim.kernel import Environment, Event
from ..sim.resources import Resource
from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["SpannerSystem"]


class SpannerSystem(TransactionalSystem):
    name = "spanner"

    NODES_PER_SHARD = 3  # Fig. 14 setup

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        super().__init__(env, config)
        if self.config.num_nodes % self.NODES_PER_SHARD:
            raise ValueError("num_nodes must be a multiple of 3 (Fig. 14)")
        self.num_shards = self.config.num_nodes // self.NODES_PER_SHARD
        self.shard_leaders = self._new_nodes(self.num_shards, "spanner-leader")
        # followers exist for cost symmetry; Paxos is charged as a modelled
        # round on the leader (2 followers ack within the LAN RTT)
        self._new_nodes(self.config.num_nodes - self.num_shards,
                        "spanner-follower")
        self.partitioner = HashPartitioner(self.num_shards)
        self.state = VersionedStore()
        # Sorted key acquisition makes plain FIFO queueing deadlock-free;
        # conflicting transactions *wait* (Section 5.5's contrast with
        # TiDB's abort-fast behaviour).
        self.locks = LockManager(env, policy="queue")
        # serialized Paxos-log pipeline per shard leader
        self.log_threads = {n.name: Resource(env, 1)
                            for n in self.shard_leaders}
        self._version = 0
        self.lock_aborts = 0

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self.state.put(key, value, 0)

    # -- helpers ----------------------------------------------------------------

    def _shard_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def _paxos_write(self, shard: int, size: int):
        """One Paxos consensus round at a shard (modelled)."""
        leader = self.shard_leaders[shard]
        yield self.log_threads[leader.name].serve_event(
            self.costs.raft_propose + self.costs.raft_apply
            + self.costs.store_put)
        yield leader.nic_out.serve_event(
            2 * (self.costs.net_send_overhead
                 + self.costs.transfer_time(size)))
        yield self.env.timeout(2 * self.costs.net_latency)  # round trip

    # -- transactions -------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_txn(txn, done), name="spanner-txn")
        return done

    def _do_txn(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(128 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        coordinator_shard = self._shard_of(txn.ops[0].key)
        coordinator = self.shard_leaders[coordinator_shard]
        yield coordinator.compute(self.costs.spanner_request_cpu)
        held: list[str] = []
        try:
            committed = yield from self._locked_attempt(txn, held)
        finally:
            for key in held:
                self.locks.release(txn.txn_id, key)
        if not committed and txn.abort_reason is None:
            txn.mark_aborted(AbortReason.LOCK_TIMEOUT)
        done.succeed(txn)

    def _locked_attempt(self, txn: Transaction, held: list[str]):
        # Acquire strict 2PL locks in key order (reads S, writes X).
        reads: dict[str, bytes] = {}
        for op in sorted(txn.ops, key=lambda o: o.key):
            mode = (LockMode.EXCLUSIVE if op.is_write else LockMode.SHARED)
            req = self.locks.acquire(txn.txn_id, op.key, mode)
            try:
                yield req
            except LockDenied:
                self.lock_aborts += 1
                txn.mark_aborted(AbortReason.LOCK_TIMEOUT)
                return False
            held.append(op.key)
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, version = self.state.get(op.key)
                txn.read_set[op.key] = version
                reads[op.key] = value if value is not None else b""
        write_set: dict[str, bytes] = {}
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                return False
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.write_set = write_set
        if not write_set:
            txn.mark_committed()
            return True
        shards = sorted({self._shard_of(k) for k in write_set})
        if len(shards) == 1:
            yield from self._paxos_write(shards[0],
                                         128 + txn.payload_size)
        else:
            # trusted 2PC: prepare Paxos write at every shard, then commit.
            for shard in shards:
                yield from self._paxos_write(shard, 96)
            yield from self._paxos_write(shards[0],
                                         128 + txn.payload_size)
        # Commit wait (TrueTime uncertainty) plus the lock span through
        # result delivery and cleanup — all with locks still held, which
        # is what queues conflicting transactions behind a hot key.
        yield self.env.timeout(self.costs.spanner_commit_wait
                               + self.costs.spanner_lock_hold)
        self._version += 1
        self.state.apply_write_set(write_set, self._version)
        txn.commit_version = self._version
        txn.mark_committed()
        return True

    # -- queries -----------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="spanner-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(96))
        yield self.env.timeout(self.costs.net_latency)
        for op in txn.ops:
            leader = self.shard_leaders[self._shard_of(op.key)]
            yield leader.compute(self.costs.store_get)
            self.state.get(op.key)
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
