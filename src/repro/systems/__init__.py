"""Simulated system models (Section 4.1 plus Fig. 14 and hybrid systems)."""

from .ahl import AhlSystem
from .base import SystemConfig, TransactionalSystem
from .etcd import EtcdSystem
from .fabric import FabricSystem
from .hybrids import HYBRID_SPECS, HybridSystem, build_hybrid
from .quorum import QuorumSystem
from .spanner import SpannerSystem
from .tidb import TiDBSystem
from .tikv import TikvCluster, TikvSystem

__all__ = [
    "AhlSystem",
    "EtcdSystem",
    "HYBRID_SPECS",
    "HybridSystem",
    "SpannerSystem",
    "build_hybrid",
    "FabricSystem",
    "QuorumSystem",
    "SystemConfig",
    "TiDBSystem",
    "TikvCluster",
    "TikvSystem",
    "TransactionalSystem",
]
