"""Quorum system model: order-execute permissioned blockchain.

Quorum is a geth fork that swaps PoW for Raft (CFT) or Istanbul BFT and
keeps the EVM and the Merkle Patricia Trie state (Section 4.1).
Lifecycle (Fig. 3a): transactions enter the leader's txpool; every block
interval the leader *serially pre-executes* a batch at the ledger tip,
assembles a block, and runs consensus on it; after consensus the block is
serially executed again (validation + MPT reconstruction) before the next
block can be proposed — the "double execution" plus "sequential
validation of in-block transactions" the paper blames for Quorum's
record-size sensitivity (Fig. 11: 1547 tps at 10-byte records falling to
58 tps at 5000 bytes, as EVM and MPT hashing costs grow with the record).

The MPT is charged through the calibrated cost model by default (Fig. 11b:
56 us at 10 B -> 2.5 ms at 5000 B per reconstruction); tests can supply a
real :class:`repro.adt.mpt.MerklePatriciaTrie` to check state-root
behaviour end to end.
"""

from __future__ import annotations

from typing import Optional

from ..adt.mpt import MerklePatriciaTrie
from ..concurrency.rc import ReadCommittedScheduler
from ..concurrency.serial import SerialExecutor
from ..concurrency.si import SnapshotScheduler, isolation_level
from ..consensus.ibft import IbftConfig, IbftGroup
from ..consensus.raft import RaftConfig, RaftGroup
from ..sim.kernel import Environment, Event, WakeableQueue
from ..sim.resources import Resource, Store
from ..storage.engine import MptEngine, engine_from_config
from ..txn.ledger import Ledger
from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, Transaction, TxnStatus
from .base import SystemConfig, TransactionalSystem

__all__ = ["QuorumSystem"]


class _Submission:
    """Client submission to the leader txpool, as a flat chain.

    Client NIC egress -> propagation -> leader txpool CPU -> mempool
    put, one parked callback per stage — the identical schedule sequence
    the spawned ``_do_submit`` coroutine issued (whose completion event
    carried no waiters, so dropping it is unobservable).
    """

    __slots__ = ("system", "txn", "done")

    def __init__(self, system: "QuorumSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done

    def start(self) -> None:
        self.system.env._schedule_call(self._send, None)

    def _send(self, _arg) -> None:
        system = self.system
        self.txn.submitted_at = system.env.now
        size = 192 + self.txn.payload_size
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        system = self.system
        timer = system.env.timeout(system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        system = self.system
        ev = system.servers[0].compute(system.costs.quorum_txpool_cpu)
        ev.callbacks.append(self._pooled)

    def _pooled(self, _ev: Event) -> None:
        self.system.mempool.put((self.txn, self.done))


class QuorumSystem(TransactionalSystem):
    name = "quorum"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None,
                 consensus: str = "raft", real_state: bool = False,
                 batched_validation: bool = False):
        super().__init__(env, config)
        if consensus not in ("raft", "ibft"):
            raise ValueError(f"unknown consensus {consensus!r}")
        if batched_validation and not real_state:
            raise ValueError("batched_validation requires real_state=True")
        self.consensus = consensus
        self.servers = self._new_nodes(self.config.num_nodes, "quorum")
        if consensus == "raft":
            self.group = RaftGroup(
                env, self.servers, self.network, self.costs,
                RaftConfig(batch_window=0.002, max_batch=8,
                           message_kind="raft:quorum"),
                rng=self.rng)
        else:
            self.group = IbftGroup(
                env, self.servers, self.network, self.costs,
                IbftConfig(block_interval=self.costs.quorum_block_interval,
                           message_kind="ibft:quorum"),
                rng=self.rng)
        # Storage engine (Table 2 index column): an explicit
        # ``extras["index"]`` choice runs the real structure and charges
        # its *measured* commit deltas (EVM-only per-txn cost, one
        # index_commit_time charge per block — zero for plain indexes:
        # the Fig. 12 ablation).  Without it, the legacy modes apply:
        # the per-record Fig. 11b MPT fit (optionally maintaining a real
        # trie under real_state), or the Sec. 6 batched_validation
        # ablation (fit at proposal, measured deltas at validation).
        self.engine = engine_from_config(self.config.extras)
        self._engine_mode = self.engine is not None
        if self._engine_mode:
            self._fit_index = False    # EVM-only per-txn costs
            self._measured = self.engine.authenticated
        else:
            self.engine = MptEngine() if real_state else None
            self._fit_index = True     # per-record Fig. 11b reconstruction
            self._measured = batched_validation
        self.state = VersionedStore(engine=self.engine)
        # One group-committed fsync share per sealed block when the
        # extras["wal"] journal is attached (DB-side systems charge it
        # per applied entry instead).
        self._wal_cost = (self.costs.wal_sync
                          if self.engine is not None
                          and self.engine.wal is not None else 0.0)
        self.executor = SerialExecutor(self.state)
        # real_state=True maintains an actual MPT alongside the calibrated
        # cost model: writes are staged per transaction and batch-committed
        # once per sealed block, stamping a verifiable state root into each
        # block header (timing is still charged via mpt_update_time).
        self.real_state = real_state
        # Sec. 6 ablation: charge block validation's MPT crypto per
        # *measured* hash (batched commit over shared prefixes) instead
        # of the per-record Fig. 11b reconstruction fit.
        self.batched_validation = batched_validation
        self.mpt_hashes_charged = 0
        # Followers re-validate with the same batched crypto model: the
        # leader publishes each block's measured hash delta and a
        # follower blocks on its stream until the delta is available.
        self._delta_streams: dict[str, Store] = {}
        self.state_trie = (self.engine.trie
                           if isinstance(self.engine, MptEngine) else None)
        self.ledger = Ledger()
        # Wake-on-proposal ingress: the block producer parks on this
        # queue while the txpool is empty and is woken by the first
        # arriving transaction at the same simulated time.
        self.mempool: WakeableQueue = WakeableQueue(env)
        # Single-threaded EVM per node.
        self.evm_threads = {n.name: Resource(env, 1) for n in self.servers}
        self._version = 0
        self.blocks_minted = 0
        # Isolation spectrum (extras["isolation"]): the default
        # order-execute pipeline is serializable (serial double
        # execution in block order).  Weakened levels execute a block's
        # transactions against one block-start snapshot — intra-block
        # order no longer matters, so both execution phases fan out
        # across the leader's cores instead of the single EVM thread:
        # "snapshot" validates first-committer-wins at apply,
        # "read_committed" installs blindly (lost updates admitted).
        self.isolation = isolation_level(self.config.extras)
        self.scheduler = None
        self.history = None
        if self.isolation == "snapshot":
            self.scheduler = SnapshotScheduler(self.state)
        elif self.isolation == "read_committed":
            self.scheduler = ReadCommittedScheduler(self.state)
        if "isolation" in self.config.extras:
            from ..analysis.serializability import HistoryChecker
            self.history = HistoryChecker()
        producer = (self._block_producer_weak if self.scheduler is not None
                    else self._block_producer)
        self.spawn(producer(), name="quorum-producer")
        for node in self.servers[1:]:
            if self._measured:
                self._delta_streams[node.name] = Store(env)
            self.spawn(self._follower_exec_loop(node),
                       name=f"quorum-exec:{node.name}")

    # -- loading -------------------------------------------------------------------

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self.state.put(key, value, 0)
        # writes mirrored into the engine above; one batched genesis commit
        self.state.commit(0)

    # -- cost helpers ------------------------------------------------------------------

    def _exec_cost(self, txn: Transaction) -> float:
        """Serial EVM execution (+ fitted MPT path rebuild) per transaction.

        With a configured engine the index cost is *measured* at the
        block commit instead, so only the EVM term is charged here.
        """
        cost = self.costs.evm_exec_time(txn.payload_size)
        if not self._fit_index:
            return cost
        writes = txn.write_keys or [op.key for op in txn.ops]
        per_key_payload = (txn.payload_size // max(1, len(writes))
                           if txn.payload_size else 8)
        for _key in writes:
            cost += self.costs.mpt_update_time(per_key_payload)
        return cost

    # -- submission -----------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _Submission(self, txn, done).start()
        return done

    # -- block production (order-execute) ----------------------------------------------------

    def _block_producer(self):
        leader = self.servers[0]
        evm = self.evm_threads[leader.name]
        while True:
            if not self.mempool:
                yield self.mempool.wait()
            yield self.env.timeout(self.costs.quorum_block_interval)
            batch = self.mempool.take(self.costs.quorum_max_block_txns)
            if not batch:
                continue
            proposal_start = self.env.now
            # Phase 1: serial pre-execution at the tip (proposal).
            for txn, _done in batch:
                yield evm.serve_event(self._exec_cost(txn))
            for txn, _done in batch:
                txn.phases["proposal"] = self.env.now - proposal_start
            # Phase 2: consensus on the assembled block.
            consensus_start = self.env.now
            block_txns = [txn for txn, _done in batch]
            size = 512 + sum(192 + t.payload_size for t in block_txns)
            try:
                yield self.group.propose(block_txns, size=size)
            except Exception:
                for txn, done in batch:
                    txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
                    self._finish(done, txn)
                continue
            for txn, _done in batch:
                txn.phases["consensus"] = self.env.now - consensus_start
            # Phase 3: serial commit — validation re-execution + index
            # maintenance (the state transition becomes final here).
            commit_start = self.env.now
            measured = self._measured
            # Engine-mode clients (plain or authenticated) get their
            # receipt at the block boundary — both Fig. 12 ablation arms
            # release at the same point, so the A/B gap is *only* the
            # measured index-commit charge.  The legacy fit modes keep
            # the seed's per-transaction release.
            late_release = measured or self._engine_mode
            for txn, done in batch:
                # Per-record-fit path charges EVM + per-write MPT
                # reconstruction; the measured paths (batched-validation
                # ablation / configured engine) charge EVM only here and
                # the index as one measured batch commit below (Sec. 6:
                # each touched path hashed once per block, not once per
                # write).  Writes mirror into the engine via the state
                # facade as the executor applies them.
                index_cost = (self.costs.evm_exec_time(txn.payload_size)
                              if measured else self._exec_cost(txn))
                yield evm.serve_event(self.costs.sig_verify + index_cost)
                self._version += 1
                self.executor.execute(txn, self._version)
                if self.history is not None:
                    self.history.observe(txn)
                if not late_release:
                    txn.phases["commit"] = self.env.now - commit_start
                    self._finish(done, txn)
            # ONE batched engine commit per block (no simulated cost in
            # the fit modes — the per-record fit already charged it).
            result = self.state.commit(self._version)
            if measured:
                # Simulated cost wired from the engine's measured
                # hashes_computed delta (zero for a plain engine — the
                # authenticated-vs-plain Fig. 12 gap is exactly this).
                delta = result.hashes_computed
                self.mpt_hashes_charged += delta
                for stream in self._delta_streams.values():
                    stream.put((delta, result.node_ops))
                if self._engine_mode:
                    yield evm.serve_event(
                        self.costs.index_commit_time(delta, result.node_ops)
                        + self._wal_cost)
                else:
                    # legacy Sec. 6 ablation: crypto-only charge
                    yield evm.serve_event(self.costs.mpt_commit_time(delta))
            elif self._engine_mode and self._wal_cost:
                # plain engine + WAL flag: the block's group commit
                yield evm.serve_event(self._wal_cost)
            if late_release:
                for txn, done in batch:
                    txn.phases["commit"] = self.env.now - commit_start
                    self._finish(done, txn)
            root = result.root if (result is not None
                                   and self.engine.authenticated) else None
            if root is not None:
                self.ledger.append_block(block_txns, timestamp=self.env.now,
                                         state_root=root)
            else:
                self.ledger.append_block(block_txns, timestamp=self.env.now)
            self.blocks_minted += 1

    def _block_producer_weak(self):
        """Order-execute pipeline under weakened isolation.

        Every transaction in a block executes against the *block-start
        snapshot*, so intra-block data dependencies vanish and both
        execution phases (pre-execution at proposal, validation
        re-execution at commit) run in parallel across the leader's
        cores — the throughput the serializable pipeline's serial
        double execution gives up.  Semantics after consensus: stage
        all reads at one committed instant, then serially
        validate+apply in block order — first-committer-wins under
        "snapshot" (conflicting writers abort with
        ``WRITE_WRITE_CONFLICT``), blind last-writer-wins under
        "read_committed" (lost updates admitted, counted post-hoc by
        the anomaly detector).  Followers keep the serial re-execution
        loop — they are off the client's critical path.
        """
        leader = self.servers[0]
        evm = self.evm_threads[leader.name]
        scheduler = self.scheduler
        history = self.history
        while True:
            if not self.mempool:
                yield self.mempool.wait()
            yield self.env.timeout(self.costs.quorum_block_interval)
            batch = self.mempool.take(self.costs.quorum_max_block_txns)
            if not batch:
                continue
            proposal_start = self.env.now
            # Phase 1: snapshot pre-execution, parallel across cores.
            yield self.env.all_of([
                leader.compute(self._exec_cost(txn)) for txn, _done in batch])
            for txn, _done in batch:
                txn.phases["proposal"] = self.env.now - proposal_start
            # Phase 2: consensus on the assembled block (identical to
            # the serializable pipeline).
            consensus_start = self.env.now
            block_txns = [txn for txn, _done in batch]
            size = 512 + sum(192 + t.payload_size for t in block_txns)
            try:
                yield self.group.propose(block_txns, size=size)
            except Exception:
                for txn, done in batch:
                    txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
                    self._finish(done, txn)
                continue
            for txn, _done in batch:
                txn.phases["consensus"] = self.env.now - consensus_start
            # Phase 3: parallel validation re-execution, then the
            # zero-cost snapshot commit — stage every transaction's
            # reads at the block tip, validate+install serially.
            commit_start = self.env.now
            measured = self._measured
            yield self.env.all_of([
                leader.compute(self.costs.sig_verify
                               + (self.costs.evm_exec_time(txn.payload_size)
                                  if measured else self._exec_cost(txn)))
                for txn, _done in batch])
            for txn, _done in batch:
                scheduler.stage(txn)      # all reads: one block snapshot
            for txn, _done in batch:
                if txn.status is not TxnStatus.ABORTED:
                    self._version += 1
                    scheduler.apply(txn, self._version)
                if history is not None:
                    history.observe(txn)
            # ONE batched engine commit per block, same as serializable.
            result = self.state.commit(self._version)
            if measured:
                delta = result.hashes_computed
                self.mpt_hashes_charged += delta
                for stream in self._delta_streams.values():
                    stream.put((delta, result.node_ops))
                if self._engine_mode:
                    yield evm.serve_event(
                        self.costs.index_commit_time(delta, result.node_ops)
                        + self._wal_cost)
                else:
                    yield evm.serve_event(self.costs.mpt_commit_time(delta))
            elif self._engine_mode and self._wal_cost:
                yield evm.serve_event(self._wal_cost)
            for txn, done in batch:
                txn.phases["commit"] = self.env.now - commit_start
                self._finish(done, txn)
            root = result.root if (result is not None
                                   and self.engine.authenticated) else None
            if root is not None:
                self.ledger.append_block(block_txns, timestamp=self.env.now,
                                         state_root=root)
            else:
                self.ledger.append_block(block_txns, timestamp=self.env.now)
            self.blocks_minted += 1

    def _follower_exec_loop(self, node):
        """Every other node re-executes committed blocks serially.

        Under ``batched_validation`` the follower charges the same
        ablation model as the leader: per-txn EVM re-execution plus one
        batched MPT commit per block at the leader's *measured* hash
        delta (consumed in block order from the delta stream).
        """
        applied = self.group.replicas[node.name].applied
        evm = self.evm_threads[node.name]
        deltas = self._delta_streams.get(node.name)
        # engine mode charges node I/O per measured hash (plus node_ops
        # at index_node_op, mirroring the leader); the legacy
        # batched_validation ablation charges the crypto share only
        if self._engine_mode:
            def charge(hashes, node_ops):
                return self.costs.index_commit_time(hashes, node_ops)
        else:
            def charge(hashes, node_ops):
                return self.costs.mpt_commit_time(hashes)
        while True:
            _index, item = yield applied.get()
            blocks = item if isinstance(item, list) and item \
                and isinstance(item[0], list) else [item]
            for block_txns in blocks:
                if not isinstance(block_txns, list):
                    continue
                if deltas is None:
                    for txn in block_txns:
                        yield evm.serve_event(self.costs.sig_verify
                                              + self._exec_cost(txn))
                else:
                    for txn in block_txns:
                        yield evm.serve_event(
                            self.costs.sig_verify
                            + self.costs.evm_exec_time(txn.payload_size))
                    delta, node_ops = yield deltas.get()
                    yield evm.serve_event(charge(delta, node_ops))

    # -- queries ---------------------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="quorum-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(192))
        yield self.env.timeout(self.costs.net_latency)
        pool = getattr(server, "_query_pool", None)
        if pool is None:
            pool = Resource(self.env, self.costs.quorum_query_pool)
            server._query_pool = pool
        req = pool.request()
        yield req
        try:
            yield self.env.timeout(self.costs.quorum_query_time)
            for op in txn.ops:
                self.state.get(op.key)
        finally:
            pool.release(req)
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(128 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
