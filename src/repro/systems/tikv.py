"""TiKV system model: multi-Raft replicated key-value store.

TiKV splits the key space into regions, each its own Raft group; region
*leaders* are balanced across nodes, so — unlike etcd — writes are
consensus-sequenced on every node in parallel.  Under the paper's full
replication mode every region replicates to all nodes, so each node also
carries follower and apply work for every other node's regions: adding
nodes adds capacity (more leaders, hot-spot alleviation) *and* overhead
(more followers per group) — the interplay behind Table 5.

We model one Raft group per node (the aggregate of all regions whose
leader lives there) and a serialized per-node "raftstore/apply" thread,
which is TiKV's actual architecture (batched raftstore and apply threads).
"""

from __future__ import annotations

from typing import Optional

from ..consensus.raft import RaftConfig, RaftGroup
from ..sharding.partitioner import HashPartitioner
from ..sim.kernel import Environment, Event
from ..sim.resources import Resource
from ..storage.lsm import LSMTree
from ..txn.state import VersionedStore
from ..txn.transaction import Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["TikvCluster", "TikvSystem"]


class TikvCluster:
    """The storage cluster: N nodes, N raft groups, shared state.

    Used standalone by :class:`TikvSystem` and as the storage layer of
    :class:`repro.systems.tidb.TiDBSystem`.
    """

    def __init__(self, system: TransactionalSystem, num_nodes: int,
                 prefix: str = "tikv"):
        self.system = system
        self.env = system.env
        self.costs = system.costs
        self.nodes = system._new_nodes(num_nodes, prefix)
        self.partitioner = HashPartitioner(num_nodes)
        self.state = VersionedStore()
        self.lsm = LSMTree(memtable_limit=4096)   # RocksDB stand-in (bytes)
        self._version = 0
        names = [n.name for n in self.nodes]
        self.groups: list[RaftGroup] = []
        for i, leader in enumerate(self.nodes):
            ordered = [leader] + [n for n in self.nodes if n is not leader]
            group = RaftGroup(
                self.env, ordered, system.network, self.costs,
                RaftConfig(batch_window=self.costs.raft_batch_window,
                           max_batch=self.costs.raft_max_batch,
                           message_kind=f"raft:{prefix}:{i}"),
                rng=system.rng)
            self.groups.append(group)
        # Serialized apply/raftstore thread and read path per node.
        self.store_threads = {n.name: Resource(self.env, 1)
                              for n in self.nodes}
        self.read_paths = {n.name: Resource(self.env, 1) for n in self.nodes}
        self._waiters: dict[tuple[int, int], Event] = {}
        # Full replication: every node applies every group's entries on its
        # serialized store thread (the paper's Section 5.2.2 observation
        # that more TiKV nodes mean more consensus/apply overhead per node).
        for i, group in enumerate(self.groups):
            for node in self.nodes:
                self.env.process(
                    self._apply_loop(i, node.name,
                                     is_leader=(node is self.nodes[i])),
                    name=f"{prefix}-apply:{i}:{node.name}")

    # -- placement ---------------------------------------------------------------

    def leader_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def leader_node(self, key: str):
        return self.nodes[self.leader_of(key)]

    # -- writes ---------------------------------------------------------------------

    def kv_write(self, key: str, value: bytes, meta: Optional[dict] = None) -> Event:
        """Replicate one write through the key's region group.

        The event fires once the write is committed *and applied* on the
        leader (TiKV acknowledges after apply).
        """
        done = self.env.event()
        self.env.process(self._do_write(key, value, meta, done),
                         name="tikv-write")
        return done

    def _do_write(self, key: str, value: bytes, meta: Optional[dict],
                  done: Event):
        group_id = self.leader_of(key)
        group = self.groups[group_id]
        node = self.nodes[group_id]
        # gRPC + scheduler work (parallel across cores)
        yield node.compute(self.costs.tikv_request_cpu)
        record = {"key": key, "value": value, "meta": meta or {}}
        ev = group.propose(record, size=96 + len(key) + len(value))
        try:
            index, _item = yield ev
        except Exception as exc:
            done.fail(exc)
            return
        waiter = self.env.event()
        self._waiters[(group_id, index)] = waiter
        yield waiter
        done.succeed((group_id, index))

    def _apply_loop(self, group_id: int, node_name: str, is_leader: bool):
        """Serialized apply on this node's store thread.

        Only the leader's apply publishes state and resolves waiters (the
        logical state is shared because full replication keeps replicas
        identical); followers still pay the apply cost.
        """
        applied = self.groups[group_id].replicas[node_name].applied
        thread = self.store_threads[node_name]
        while True:
            index, record = yield applied.get()
            yield thread.serve_event(self.costs.tikv_apply
                                     + self.costs.store_put)
            if not is_leader:
                continue
            self._version += 1
            self.state.put(record["key"], record["value"], self._version)
            waiter = self._waiters.pop((group_id, index), None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(index)

    # -- reads ------------------------------------------------------------------------

    def kv_read(self, key: str) -> Event:
        """Leaseholder point get at the region leader."""
        done = self.env.event()
        self.env.process(self._do_read(key, done), name="tikv-read")
        return done

    def _do_read(self, key: str, done: Event):
        node = self.leader_node(key)
        yield self.read_paths[node.name].serve_event(self.costs.tikv_read_cpu)
        value, version = self.state.get(key)
        done.succeed((value, version))

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self._version += 1
            self.state.put(key, value, self._version)
        # storage-bytes accounting for the Fig. 12 comparison
        for key, value in records.items():
            self.lsm.put(key.encode(), value)

    def storage_bytes(self) -> int:
        return self.lsm.total_bytes()


class TikvSystem(TransactionalSystem):
    """Standalone TiKV benchmarked as in Fig. 4 ("TiKV" bars)."""

    name = "tikv"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        super().__init__(env, config)
        self.cluster = TikvCluster(self, self.config.num_nodes)

    def load(self, records: dict[str, bytes]) -> None:
        self.cluster.load(records)

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_update(txn, done), name="tikv-update")
        return done

    def _do_update(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        size = 64 + txn.payload_size
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        for op in txn.ops:
            if op.is_write:
                try:
                    yield self.cluster.kv_write(op.key, op.value)
                except Exception:
                    txn.mark_aborted(txn.abort_reason)
                    done.succeed(txn)
                    return
        node = self.cluster.leader_node(txn.ops[0].key)
        yield node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="tikv-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(96))
        yield self.env.timeout(self.costs.net_latency)
        for op in txn.ops:
            yield self.cluster.kv_read(op.key)
        node = self.cluster.leader_node(txn.ops[0].key)
        yield node.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(64 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
