"""TiKV system model: multi-Raft replicated key-value store.

TiKV splits the key space into regions, each its own Raft group; region
*leaders* are balanced across nodes, so — unlike etcd — writes are
consensus-sequenced on every node in parallel.  Under the paper's full
replication mode every region replicates to all nodes, so each node also
carries follower and apply work for every other node's regions: adding
nodes adds capacity (more leaders, hot-spot alleviation) *and* overhead
(more followers per group) — the interplay behind Table 5.

We model one Raft group per node (the aggregate of all regions whose
leader lives there) and a serialized per-node "raftstore/apply" thread,
which is TiKV's actual architecture (batched raftstore and apply threads).
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.rc import ReadCommittedScheduler
from ..concurrency.si import SnapshotScheduler, isolation_level
from ..consensus.raft import RaftConfig, RaftGroup
from ..sharding.partitioner import HashPartitioner
from ..sim.kernel import Environment, Event, subscribe
from ..sim.resources import Resource
from ..storage.engine import engine_from_config
from ..txn.state import VersionedStore
from ..txn.transaction import OpType, Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["TikvCluster", "TikvSystem"]


class _ApplyLoop:
    """One node's serialized raftstore/apply thread for one group, as a
    perpetual flat chain.

    Full replication runs ``groups x nodes`` of these (every node pays
    apply work for every group), so the two ``Process._resume`` walks
    per applied entry the coroutine loop cost were the dominant resume
    source on DB-side BENCH points.  Only the leader's instance
    publishes state and resolves write waiters; followers just pay the
    serve cost — exactly the retained coroutine's behaviour.
    """

    __slots__ = ("cluster", "group_id", "is_leader", "applied", "thread",
                 "record", "index")

    def __init__(self, cluster: "TikvCluster", group_id: int,
                 node_name: str, is_leader: bool):
        self.cluster = cluster
        self.group_id = group_id
        self.is_leader = is_leader
        self.applied = cluster.groups[group_id].replicas[node_name].applied
        self.thread = cluster.store_threads[node_name]
        self.record = None
        self.index = 0

    def start(self) -> None:
        self.cluster.env._schedule_call(self._next, None)

    def _next(self, _arg) -> None:
        subscribe(self.applied.get(), self._got)

    def _got(self, ev: Event) -> None:
        self.index, self.record = ev._value
        serve = self.thread.serve_event(self.cluster._apply_cost)
        serve.callbacks.append(self._applied)

    def _applied(self, _ev: Event) -> None:
        if self.is_leader:
            cluster = self.cluster
            record = self.record
            cluster._version += 1
            # The engine mirror happens on the leader only (replicas
            # would build the identical structure — wall-clock waste).
            cluster.state.put(record["key"], record["value"],
                              cluster._version)
            # Stamp the installed version into the (shared) meta dict so
            # client sessions can learn each write's version — the
            # per-key commit stamps weakened-isolation histories need.
            record["meta"]["applied_version"] = cluster._version
            result = cluster.state.commit(cluster._version)
            index_cost = cluster.costs.index_commit_time(
                result.hashes_computed, result.node_ops)
            if index_cost > 0.0:
                # Authenticated index: measured digest work extends the
                # serialized apply before the write is acknowledged.
                serve = self.thread.serve_event(index_cost)
                serve.callbacks.append(self._index_folded)
                return
            self._resolve()
            return
        self._next(None)

    def _index_folded(self, _ev: Event) -> None:
        self._resolve()

    def _resolve(self) -> None:
        cluster = self.cluster
        waiter = cluster._waiters.pop((self.group_id, self.index), None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(self.index)
        self._next(None)


class _KvWrite:
    """One replicated write through a region group, as a flat chain.

    Mirrors the retained ``_do_write`` coroutine stage for stage:
    scheduler CPU on the leader -> Raft commit -> leader apply waiter ->
    done.  This is the participant leg of TiDB's percolator 2PC (one per
    prewrite key, one per commit), so killing the Process-per-write here
    is what removes the coroutine tax from the DB-side fan-outs.
    """

    __slots__ = ("cluster", "key", "value", "meta", "done",
                 "group_id", "index")

    def __init__(self, cluster: "TikvCluster", key: str, value: bytes,
                 meta: Optional[dict], done: Event):
        self.cluster = cluster
        self.key = key
        self.value = value
        self.meta = meta
        self.done = done
        self.group_id = 0
        self.index = 0

    def start(self) -> None:
        self.cluster.env._schedule_call(self._begin, None)

    def _begin(self, _arg) -> None:
        cluster = self.cluster
        self.group_id = cluster.leader_of(self.key)
        node = cluster.nodes[self.group_id]
        ev = node.compute(cluster.costs.tikv_request_cpu)
        ev.callbacks.append(self._scheduled)

    def _scheduled(self, _ev: Event) -> None:
        cluster = self.cluster
        record = {"key": self.key, "value": self.value,
                  "meta": self.meta or {}}
        ev = cluster.groups[self.group_id].propose(
            record, size=96 + len(self.key) + len(self.value))
        subscribe(ev, self._proposed)

    def _proposed(self, ev: Event) -> None:
        if not ev._ok:
            self.done.fail(ev._value)
            return
        self.index, _item = ev._value
        waiter = self.cluster.env.event()
        self.cluster._waiters[(self.group_id, self.index)] = waiter
        waiter.callbacks.append(self._applied)

    def _applied(self, _ev: Event) -> None:
        self.done.succeed((self.group_id, self.index))


class _KvRead:
    """Leaseholder point get at the region leader, as a flat chain."""

    __slots__ = ("cluster", "key", "done")

    def __init__(self, cluster: "TikvCluster", key: str, done: Event):
        self.cluster = cluster
        self.key = key
        self.done = done

    def start(self) -> None:
        self.cluster.env._schedule_call(self._begin, None)

    def _begin(self, _arg) -> None:
        cluster = self.cluster
        node = cluster.leader_node(self.key)
        ev = cluster.read_paths[node.name].serve_event(
            cluster.costs.tikv_read_cpu)
        ev.callbacks.append(self._served)

    def _served(self, _ev: Event) -> None:
        value, version = self.cluster.state.get(self.key)
        self.done.succeed((value, version))


class TikvCluster:
    """The storage cluster: N nodes, N raft groups, shared state.

    Used standalone by :class:`TikvSystem` and as the storage layer of
    :class:`repro.systems.tidb.TiDBSystem`.
    """

    def __init__(self, system: TransactionalSystem, num_nodes: int,
                 prefix: str = "tikv"):
        self.system = system
        self.env = system.env
        self.costs = system.costs
        self.nodes = system._new_nodes(num_nodes, prefix)
        self.partitioner = HashPartitioner(num_nodes)
        # Storage engine (Table 2: TiKV = LSM / RocksDB).  The default
        # wraps the LSM the model always carried for byte accounting —
        # now mirrored on every leader apply, not just at load;
        # ``extras["index"]`` swaps in any other Table 2 choice and
        # ``extras["wal"]`` charges the group-committed fsync share per
        # applied entry.
        self.engine = engine_from_config(system.config.extras, default="lsm")
        self.lsm = self.engine.tree           # RocksDB stand-in
        wal = self.engine.wal is not None
        self.state = VersionedStore(engine=self.engine)
        self._apply_cost = (self.costs.tikv_apply + self.costs.store_put
                            + (self.costs.wal_sync if wal else 0.0))
        self._version = 0
        names = [n.name for n in self.nodes]
        self.groups: list[RaftGroup] = []
        for i, leader in enumerate(self.nodes):
            ordered = [leader] + [n for n in self.nodes if n is not leader]
            group = RaftGroup(
                self.env, ordered, system.network, self.costs,
                RaftConfig(batch_window=self.costs.raft_batch_window,
                           max_batch=self.costs.raft_max_batch,
                           message_kind=f"raft:{prefix}:{i}"),
                rng=system.rng)
            self.groups.append(group)
        # Serialized apply/raftstore thread and read path per node.
        self.store_threads = {n.name: Resource(self.env, 1)
                              for n in self.nodes}
        self.read_paths = {n.name: Resource(self.env, 1) for n in self.nodes}
        self._waiters: dict[tuple[int, int], Event] = {}
        # Full replication: every node applies every group's entries on its
        # serialized store thread (the paper's Section 5.2.2 observation
        # that more TiKV nodes mean more consensus/apply overhead per node).
        for i, group in enumerate(self.groups):
            for node in self.nodes:
                _ApplyLoop(self, i, node.name,
                           is_leader=(node is self.nodes[i])).start()

    # -- placement ---------------------------------------------------------------

    def leader_of(self, key: str) -> int:
        return self.partitioner.shard_of(key)

    def leader_node(self, key: str):
        return self.nodes[self.leader_of(key)]

    # -- writes ---------------------------------------------------------------------

    def kv_write(self, key: str, value: bytes, meta: Optional[dict] = None) -> Event:
        """Replicate one write through the key's region group.

        The event fires once the write is committed *and applied* on the
        leader (TiKV acknowledges after apply).
        """
        done = self.env.event()
        _KvWrite(self, key, value, meta, done).start()
        return done

    def kv_write_gen(self, key: str, value: bytes,
                     meta: Optional[dict] = None) -> Event:
        """Generator-form write path, kept for differential testing."""
        done = self.env.event()
        self.env.process(self._do_write(key, value, meta, done),
                         name="tikv-write")
        return done

    def _do_write(self, key: str, value: bytes, meta: Optional[dict],
                  done: Event):
        group_id = self.leader_of(key)
        group = self.groups[group_id]
        node = self.nodes[group_id]
        # gRPC + scheduler work (parallel across cores)
        yield node.compute(self.costs.tikv_request_cpu)
        record = {"key": key, "value": value, "meta": meta or {}}
        ev = group.propose(record, size=96 + len(key) + len(value))
        try:
            index, _item = yield ev
        except Exception as exc:
            done.fail(exc)
            return
        waiter = self.env.event()
        self._waiters[(group_id, index)] = waiter
        yield waiter
        done.succeed((group_id, index))

    # -- reads ------------------------------------------------------------------------

    def kv_read(self, key: str) -> Event:
        """Leaseholder point get at the region leader."""
        done = self.env.event()
        _KvRead(self, key, done).start()
        return done

    def kv_read_gen(self, key: str) -> Event:
        """Generator-form read path, kept for differential testing."""
        done = self.env.event()
        self.env.process(self._do_read(key, done), name="tikv-read")
        return done

    def _do_read(self, key: str, done: Event):
        node = self.leader_node(key)
        yield self.read_paths[node.name].serve_event(self.costs.tikv_read_cpu)
        value, version = self.state.get(key)
        done.succeed((value, version))

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self._version += 1
            self.state.put(key, value, self._version)
        # writes mirrored into the engine above; one batched genesis commit
        self.state.commit(self._version)

    def storage_bytes(self) -> int:
        """Engine bytes on disk (the Fig. 12 state-storage comparison)."""
        return self.engine.data_bytes()


class _Update:
    """One client update transaction against the cluster, as a flat chain.

    Client NIC egress -> propagation -> one replicated ``kv_write`` per
    write op (sequential, as the retained coroutine issued them) ->
    response NIC egress -> propagation -> done.

    Under weakened isolation (``extras["isolation"]``) the chain grows a
    client-driven read-compute-write session: leaseholder reads of every
    input key, the transaction's logic against those values, then the
    write-back of the derived write set.  "snapshot" holds
    first-updater-wins write intents from reservation to the last apply
    (conflicts abort with ``WRITE_WRITE_CONFLICT``); "read_committed"
    writes back blindly.  Each applied write's version is collected into
    ``txn.write_versions`` — per-key commit stamps for the MVSG checker.
    The default (serializable) path is the seed's blind-write pipeline,
    untouched.
    """

    __slots__ = ("system", "txn", "done", "_idx", "_reads", "_wkeys",
                 "_metas")

    def __init__(self, system: "TikvSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done
        self._idx = 0
        self._reads = None
        self._wkeys = None
        self._metas = None

    def start(self) -> None:
        self.system.env._schedule_call(self._begin, None)

    def _begin(self, _arg) -> None:
        system = self.system
        txn = self.txn
        txn.submitted_at = system.env.now
        size = 64 + txn.payload_size
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        if self.system.scheduler is not None:
            self._reads = {}
            self._next_session_read()
            return
        self._next_write()

    # -- weakened-isolation session (read -> logic -> write-back) ----------

    def _next_session_read(self) -> None:
        ops = self.txn.ops
        idx = self._idx
        while idx < len(ops) and ops[idx].op_type not in (OpType.READ,
                                                          OpType.UPDATE):
            idx += 1
        if idx >= len(ops):
            self._derive()
            return
        self._idx = idx
        subscribe(self.system.cluster.kv_read(ops[idx].key),
                  self._session_read_done)

    def _session_read_done(self, ev: Event) -> None:
        key = self.txn.ops[self._idx].key
        value, version = ev._value
        self.txn.read_set[key] = version
        self._reads[key] = value if value is not None else b""
        self._idx += 1
        self._next_session_read()

    def _derive(self) -> None:
        system = self.system
        txn = self.txn
        scheduler = system.scheduler
        if not scheduler.derive(txn, self._reads):
            self._respond()     # LOGIC abort at the session snapshot
            return
        if not txn.write_set:
            txn.mark_committed()
            self._respond()
            return
        if not scheduler.reserve(txn):
            # snapshot isolation: a conflicting intent or superseded
            # read — first-updater-wins aborts before any consensus
            self._respond()
            return
        self._wkeys = sorted(txn.write_set)
        self._metas = {}
        self._idx = 0
        self._next_session_write()

    def _next_session_write(self) -> None:
        system = self.system
        txn = self.txn
        if self._idx >= len(self._wkeys):
            txn.write_versions = {
                key: meta["applied_version"]
                for key, meta in self._metas.items()}
            txn.commit_version = max(txn.write_versions.values())
            system.scheduler.release(txn)
            txn.mark_committed()
            self._respond()
            return
        key = self._wkeys[self._idx]
        # Seed the stamp so the dict is truthy: ``_KvWrite`` keeps a
        # truthy meta as the shared record dict the leader's apply loop
        # stamps ``applied_version`` into.
        meta: dict = {"applied_version": 0}
        self._metas[key] = meta
        subscribe(system.cluster.kv_write(key, txn.write_set[key], meta=meta),
                  self._session_wrote)

    def _session_wrote(self, ev: Event) -> None:
        txn = self.txn
        if not ev._ok:
            self.system.scheduler.release(txn)
            txn.mark_aborted(txn.abort_reason)
            self.done.succeed(txn)
            return
        self._idx += 1
        self._next_session_write()

    # -- default (serializable) blind-write pipeline -----------------------

    def _next_write(self) -> None:
        ops = self.txn.ops
        idx = self._idx
        while idx < len(ops) and not ops[idx].is_write:
            idx += 1
        if idx >= len(ops):
            self._respond()
            return
        self._idx = idx
        op = ops[idx]
        subscribe(self.system.cluster.kv_write(op.key, op.value),
                  self._wrote)

    def _wrote(self, ev: Event) -> None:
        txn = self.txn
        if not ev._ok:
            txn.mark_aborted(txn.abort_reason)
            self.done.succeed(txn)
            return
        self._idx += 1
        self._next_write()

    def _respond(self) -> None:
        system = self.system
        node = system.cluster.leader_node(self.txn.ops[0].key)
        ev = node.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(128))
        ev.callbacks.append(self._responded)

    def _responded(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._finish)

    def _finish(self, _ev: Event) -> None:
        system = self.system
        txn = self.txn
        if system.scheduler is None:
            # Blind-write pipeline: commit is implied by the last apply.
            # Weak sessions arrive with their status already decided.
            txn.mark_committed()
        if system.history is not None:
            system.history.observe(txn)
        self.done.succeed(txn)


class TikvSystem(TransactionalSystem):
    """Standalone TiKV benchmarked as in Fig. 4 ("TiKV" bars)."""

    name = "tikv"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        super().__init__(env, config)
        self.cluster = TikvCluster(self, self.config.num_nodes)
        # Isolation spectrum (extras["isolation"]): the default pipeline
        # is the seed's blind-write path (each op consensus-sequenced;
        # serializable for single-key transactions).  Weakened levels
        # run a client read-compute-write session per transaction —
        # "snapshot" with first-updater-wins write intents,
        # "read_committed" with blind write-back.  Multi-key reads are
        # per-leaseholder (not one atomic snapshot), so weak levels are
        # honest only for single-key transactions; the ablation pins
        # ops_per_txn=1.
        self.isolation = isolation_level(self.config.extras)
        self.scheduler = None
        self.history = None
        if self.isolation == "snapshot":
            self.scheduler = SnapshotScheduler(self.cluster.state)
        elif self.isolation == "read_committed":
            self.scheduler = ReadCommittedScheduler(self.cluster.state)
        if "isolation" in self.config.extras:
            from ..analysis.serializability import HistoryChecker
            self.history = HistoryChecker()

    def load(self, records: dict[str, bytes]) -> None:
        self.cluster.load(records)

    def shard_domains(self) -> dict:
        """Decomposition metadata for the conservative parallel kernel.

        One domain per Raft group.  Lookahead is zero: every node hosts
        a replica of every group (full replication), so the domains
        share apply threads and are not network-isolated — this topology
        is *not* eligible for per-shard parallel execution.
        """
        return {
            "domains": [f"tikv-group-{i}"
                        for i in range(len(self.cluster.nodes))],
            "lookahead": 0.0,
        }

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _Update(self, txn, done).start()
        return done

    def submit_gen(self, txn: Transaction) -> Event:
        """Generator-form update path, kept for differential testing."""
        done = self.env.event()
        self.spawn(self._do_update_gen(txn, done), name="tikv-update")
        return done

    def _do_update_gen(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        size = 64 + txn.payload_size
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        for op in txn.ops:
            if op.is_write:
                try:
                    yield self.cluster.kv_write_gen(op.key, op.value)
                except Exception:
                    txn.mark_aborted(txn.abort_reason)
                    done.succeed(txn)
                    return
        node = self.cluster.leader_node(txn.ops[0].key)
        yield node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="tikv-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(96))
        yield self.env.timeout(self.costs.net_latency)
        for op in txn.ops:
            yield self.cluster.kv_read(op.key)
        node = self.cluster.leader_node(txn.ops[0].key)
        yield node.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(64 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
