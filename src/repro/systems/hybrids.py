"""Hybrid blockchain-database systems, composed from taxonomy choices.

This is the constructive half of the paper's fusion analysis (Sections
3.5 and 5.6): given a :class:`repro.core.taxonomy.SystemProfile`, build a
*runnable simulated system* out of the same substrates the four
benchmarked systems use — a replication backend (Raft, PBFT, Tendermint,
PoW, or a shared-log ordering service), a concurrency mode (serial / OCC
concurrent-execute-serial-commit / concurrent), an index cost (plain,
MPT, Merkle), and a ledger.  Measuring these hybrids and placing them in
the Figure 15 grid validates the forecast framework against its inputs.

Per-system calibration constants live in ``HYBRID_SPECS`` with the
reported numbers they approximate (see ``core.forecast``).
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.occ import OccSimulator, OccValidator
from ..consensus.pbft import PbftConfig, PbftGroup
from ..consensus.pow import PowConfig, PowNetwork
from ..consensus.raft import RaftConfig, RaftGroup
from ..consensus.sharedlog import OrderingService, SharedLogConfig
from ..consensus.tendermint import TendermintConfig, TendermintGroup
from ..core.taxonomy import (ConcurrencyModel, SystemProfile,
                             profile as lookup_profile)
from ..crypto.hashing import NULL_HASH
from ..sim.kernel import Environment, Event, subscribe
from ..sim.resources import Resource, Store
from ..storage.engine import engine_from_config
from ..txn.ledger import Ledger
from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction, TxnStatus
from .base import SystemConfig, TransactionalSystem

__all__ = ["HybridSystem", "HYBRID_SPECS", "KNOWN_SPEC_KEYS", "build_hybrid"]


class _Submission:
    """Client submission into the hybrid's ordering backend, flat chain.

    Client NIC egress -> propagation -> entry-node CPU -> (optional
    speculative OCC simulation) -> backend ordering -> hand-off to the
    serial commit loop.  Stage-for-stage mirror of the retained
    ``_do_submit_gen`` coroutine; ``done`` travels into the commit
    stream exactly as before, so the commit loop's succeed position is
    untouched.
    """

    __slots__ = ("system", "txn", "done", "size")

    def __init__(self, system: "HybridSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done
        self.size = 0

    def start(self) -> None:
        self.system.env._schedule_call(self._begin, None)

    def _begin(self, _arg) -> None:
        system = self.system
        txn = self.txn
        txn.submitted_at = system.env.now
        self.size = 256 + txn.payload_size
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead
            + system.costs.transfer_time(self.size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        system = self.system
        entry = system._pick_round_robin(system.servers)
        ev = entry.compute(system.costs.store_get)
        ev.callbacks.append(self._entered)

    def _entered(self, _ev: Event) -> None:
        system = self.system
        txn = self.txn
        if system.profile.concurrency is \
                ConcurrencyModel.CONCURRENT_EXECUTION_SERIAL_COMMIT:
            # speculative execution before ordering (Fabric/Veritas style)
            system.simulator.simulate(txn)
            if txn.abort_reason is AbortReason.LOGIC:
                self.done.succeed(txn)
                return
        try:
            ordered = system._proposer(txn, self.size)
        except Exception:
            self._order_failed()
            return
        subscribe(ordered, self._ordered)

    def _ordered(self, ev: Event) -> None:
        if not ev._ok:
            self._order_failed()
            return
        self.system._commit_stream.put((self.txn, self.done))

    def _order_failed(self) -> None:
        txn = self.txn
        txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
        self.done.succeed(txn)


#: Backend + commit-path calibration per hybrid (anchored to the numbers
#: the systems' own papers report; see core.forecast.REPORTED_THROUGHPUT).
HYBRID_SPECS: dict[str, dict] = {
    "veritas": {
        "backend": "sharedlog",            # Kafka
        "commit_serial_cost": 40e-6,       # Redis apply + ledger append
        "block_max_items": 256, "block_timeout": 0.05,
    },
    "chainifydb": {
        "backend": "sharedlog",            # Kafka
        "commit_serial_cost": 160e-6,      # whatever-LedgerConsensus replay
        "block_max_items": 128, "block_timeout": 0.1,
    },
    "brd": {
        "backend": "pbft",                 # Kafka + BFT-SMaRt ordering
        "commit_serial_cost": 360e-6,      # PostgreSQL stored-proc replay,
        #   serializable in ledger order
        "batch_window": 0.02, "max_batch": 64,
    },
    "bigchaindb": {
        "backend": "tendermint",
        "commit_serial_cost": 900e-6,      # MongoDB JSON txn apply
        "block_interval": 0.15, "max_block_txns": 512,
    },
    "falcondb": {
        "backend": "tendermint",
        "commit_serial_cost": 170e-6,      # MySQL apply + IntegriDB update
        "block_interval": 0.06, "max_block_txns": 256,
    },
    "blockchaindb": {
        "backend": "pow",
        "commit_serial_cost": 120e-6,      # LevelDB apply behind the chain
        "block_interval": 2.0, "max_block_txns": 400,
    },
}

#: Every key a hybrid ``spec`` may carry (union across backends).  A
#: typo'd key used to run silently with defaults; it now raises.
KNOWN_SPEC_KEYS = frozenset({
    "backend", "commit_serial_cost", "index",
    # sharedlog
    "block_max_items", "block_timeout",
    # pbft
    "batch_window", "max_batch",
    # tendermint / pow
    "block_interval", "max_block_txns", "skip_empty_blocks",
})


class HybridSystem(TransactionalSystem):
    """A taxonomy-profile-driven simulated transactional system."""

    def __init__(self, env: Environment, profile: SystemProfile,
                 config: Optional[SystemConfig] = None,
                 spec: Optional[dict] = None):
        super().__init__(env, config)
        self.profile = profile
        self.name = profile.name
        self.spec = dict(HYBRID_SPECS.get(profile.name, {}))
        if spec:
            unknown = sorted(set(spec) - KNOWN_SPEC_KEYS)
            if unknown:
                raise ValueError(
                    f"unknown hybrid spec key(s) {unknown}; "
                    f"known: {sorted(KNOWN_SPEC_KEYS)}")
            self.spec.update(spec)
        self.servers = self._new_nodes(self.config.num_nodes, "node")
        # Storage engine from the profile's Table 2 index column (the
        # builder honouring the storage dimension); ``spec["index"]`` or
        # ``extras["index"]`` swap it per run.  The engine's *measured*
        # commit deltas replace the old per-payload index-cost
        # calibration constants: plain indexes charge nothing (their
        # apply work is inside commit_serial_cost), authenticated ones
        # charge index_commit_time(hashes) once per sealed block.
        default_index = self.spec.get("index", profile.index)
        self.engine = engine_from_config(self.config.extras,
                                         default=default_index)
        self.state = VersionedStore(engine=self.engine)
        self._wal_cost = (self.costs.wal_sync
                          if self.engine.wal is not None else 0.0)
        self.simulator = OccSimulator(self.state)
        self.validator = OccValidator(self.state)
        self.ledger = Ledger()
        self.commit_threads = {n.name: Resource(env, 1)
                               for n in self.servers}
        self._version = 0
        self._commit_stream: Store = Store(env)
        self._build_backend()
        self.spawn(self._commit_loop(), name=f"{self.name}-commit")

    # -- backend construction ---------------------------------------------------

    def _build_backend(self) -> None:
        kind = self.spec.get("backend", "raft")
        if kind == "raft":
            self.backend = RaftGroup(
                self.env, self.servers, self.network, self.costs,
                RaftConfig(message_kind=f"raft:{self.name}"), rng=self.rng)
            self._proposer = self.backend.propose
        elif kind == "pbft":
            self.backend = PbftGroup(
                self.env, self.servers, self.network, self.costs,
                PbftConfig(batch_window=self.spec.get("batch_window", 0.01),
                           max_batch=self.spec.get("max_batch", 64),
                           message_kind=f"pbft:{self.name}"),
                rng=self.rng)
            self._proposer = self.backend.propose
        elif kind == "tendermint":
            self.backend = TendermintGroup(
                self.env, self.servers, self.network, self.costs,
                TendermintConfig(
                    block_interval=self.spec.get("block_interval", 0.1),
                    max_block_txns=self.spec.get("max_block_txns", 512),
                    skip_empty_blocks=self.spec.get("skip_empty_blocks",
                                                    False)),
                rng=self.rng)
            self._proposer = self.backend.propose
        elif kind == "pow":
            self.backend = PowNetwork(
                self.env, self.servers, self.network,
                PowConfig(block_interval=self.spec.get("block_interval", 4.0),
                          max_block_txns=self.spec.get("max_block_txns", 500)),
                rng=self.rng)
            self._proposer = self.backend.propose
        elif kind == "sharedlog":
            orderers = self._new_nodes(3, "orderer")
            self.backend = OrderingService(
                self.env, orderers, self.network, self.costs,
                SharedLogConfig(
                    block_max_items=self.spec.get("block_max_items", 128),
                    block_timeout=self.spec.get("block_timeout", 0.1)),
                rng=self.rng)
            self._proposer = self.backend.append
        else:
            raise ValueError(f"unknown backend {kind!r}")

    # -- loading -------------------------------------------------------------------

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self.state.put(key, value, 0)
        # writes mirrored into the engine above; one batched genesis commit
        self.state.commit(0)

    # -- submission -------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _Submission(self, txn, done).start()
        return done

    def submit_gen(self, txn: Transaction) -> Event:
        """Generator-form submission path, kept for differential testing."""
        done = self.env.event()
        self.spawn(self._do_submit_gen(txn, done), name=f"{self.name}-submit")
        return done

    def _do_submit_gen(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        size = 256 + txn.payload_size
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        entry = self._pick_round_robin(self.servers)
        yield entry.compute(self.costs.store_get)
        if self.profile.concurrency is \
                ConcurrencyModel.CONCURRENT_EXECUTION_SERIAL_COMMIT:
            # speculative execution before ordering (Fabric/Veritas style)
            self.simulator.simulate(txn)
            if txn.abort_reason is AbortReason.LOGIC:
                done.succeed(txn)
                return
        try:
            ordered = self._proposer(txn, size)
            yield ordered
        except Exception:
            txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
            done.succeed(txn)
            return
        self._commit_stream.put((txn, done))

    # -- commit pipeline -----------------------------------------------------------------

    def _commit_loop(self):
        """Apply ordered transactions on the local database, in order.

        Committed writes mirror into the storage engine via the state
        facade; every 64 versions the engine folds in one batched commit
        whose *measured* digest delta is charged on the commit thread —
        zero for plain indexes, so the authenticated-vs-plain gap is
        exactly the engine's hash work (Fig. 12 on any backend).
        """
        node = self.servers[0]
        thread = self.commit_threads[node.name]
        serial_cost = self.spec.get("commit_serial_cost", 100e-6)
        while True:
            txn, done = yield self._commit_stream.get()
            yield thread.serve_event(serial_cost)
            self._version += 1
            if self.profile.concurrency is \
                    ConcurrencyModel.CONCURRENT_EXECUTION_SERIAL_COMMIT:
                self.validator.validate_and_commit(txn, self._version)
            else:
                self._execute(txn, self._version)
            if self._version % 64 == 0:
                result = self.state.commit(self._version)
                index_cost = (self.costs.index_commit_time(
                    result.hashes_computed, result.node_ops)
                    + self._wal_cost)  # block's group-committed sync
                if index_cost > 0.0:
                    yield thread.serve_event(index_cost)
                self.ledger.append_block(
                    [txn], timestamp=self.env.now,
                    state_root=(result.root if self.engine.authenticated
                                else NULL_HASH))
            if txn.status is TxnStatus.PENDING:
                txn.mark_committed()
            done.succeed(txn)

    def _execute(self, txn: Transaction, version: int) -> None:
        reads: dict[str, bytes] = {}
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, ver = self.state.get(op.key)
                txn.read_set[op.key] = ver
                reads[op.key] = value if value is not None else b""
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                return
            txn.write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                txn.write_set.setdefault(op.key, op.value)
        self.state.apply_write_set(txn.write_set, version)
        txn.mark_committed()

    # -- queries -------------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name=f"{self.name}-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        yield self.env.timeout(2 * self.costs.net_latency)
        for op in txn.ops:
            yield server.compute(self.costs.store_get)
            self.state.get(op.key)
        txn.mark_committed()
        done.succeed(txn)


def build_hybrid(env: Environment, name: str,
                 config: Optional[SystemConfig] = None,
                 spec: Optional[dict] = None) -> HybridSystem:
    """Build one of the Table 2 hybrids by name."""
    return HybridSystem(env, lookup_profile(name), config, spec)
