"""AHL (Attested HyperLedger) system model: sharded permissioned blockchain.

Dang et al.'s design, summarized in the paper's Section 5.5: trusted
hardware (TEE attestation) lets shards stay small while preserving the
Byzantine-fraction assumption; each shard is a Fabric-v0.6-style PBFT
cluster executing serially; cross-shard transactions go through a 2PC
coordinator implemented as a *BFT-replicated state machine* (a dedicated
reference committee); shards are periodically re-formed to defeat
adaptive adversaries, pausing transaction processing (the paper measures
~30% throughput loss from reconfiguration).

Each shard's serial PBFT execute pipeline is modelled as a calibrated
serialized resource (AHL reports O(100) tps per small PBFT shard);
cross-shard coordination runs the real BFT-2PC machinery from
:mod:`repro.sharding.bft2pc` against a PBFT reference committee.
"""

from __future__ import annotations

from typing import Optional

from ..consensus.pbft import PbftConfig, PbftGroup
from ..sharding.bft2pc import BftCoordinator
from ..sharding.formation import ReconfigurationSchedule, ShardFormation
from ..sharding.partitioner import HashPartitioner, HotSplitPartitioner
from ..sharding.twopc import Vote
from ..sim.kernel import Environment, Event, subscribe
from ..sim.resources import Resource
from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["AhlSystem"]


class _ShardExec:
    """One serial slot of a shard's PBFT execute pipeline, as a flat chain.

    Pipeline grant -> reconfiguration-pause gate (checked while the slot
    is held, so an epoch boundary really does stop the shard) -> the
    calibrated execute/commit cost -> release.  ``done`` resolves inline
    (:meth:`Event._resolve`) at the release position — the identical
    cascade slot the retained ``shard_exec_gen`` resumed its caller at.
    """

    __slots__ = ("system", "shard", "cost", "value", "done", "_req")

    def __init__(self, system: "AhlSystem", shard: int, cost: float,
                 value=None):
        self.system = system
        self.shard = shard
        self.cost = cost
        self.value = value
        self.done = Event(system.env)
        self._req = None

    def start(self, scheduled: bool = False) -> Event:
        if scheduled:
            self.system.env._schedule_call(self._begin, None)
        else:
            self._begin(None)
        return self.done

    def _begin(self, _arg) -> None:
        req = self._req = self.system.shard_pipelines[self.shard].request()
        subscribe(req, self._granted)

    def _granted(self, _ev: Event) -> None:
        subscribe(self.system._wait_if_paused(), self._unpaused)

    def _unpaused(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.cost)
        timer.callbacks.append(self._served)

    def _served(self, _ev: Event) -> None:
        self.system.shard_pipelines[self.shard].release(self._req)
        self.done._resolve(self.value)


class _ShardExecLA:
    """Lookahead-mode shard exec: same pipeline chain plus the two
    hub<->shard network hops the default model elides.

    One ``net_latency`` request hop before the pipeline and one
    completion hop after release — physically real edges (the client
    gateway and the shard are distinct machines) that make the shard a
    *logical process* reachable only through the network, which is what
    licenses conservative parallel execution: with every edge charged,
    ``Network.min_delay`` bounds how far hub and shard may diverge.
    This single-heap form is the equivalence reference the parallel
    kernel (:class:`repro.sim.parallel.ShardCoupler`) must match
    byte-for-byte.
    """

    __slots__ = ("system", "shard", "cost", "value", "done", "_req")

    def __init__(self, system: "AhlSystem", shard: int, cost: float,
                 value=None):
        self.system = system
        self.shard = shard
        self.cost = cost
        self.value = value
        self.done = Event(system.env)
        self._req = None

    def start(self, scheduled: bool = False) -> Event:
        if scheduled:
            self.system.env._schedule_call(self._request_hop, None)
        else:
            self._request_hop(None)
        return self.done

    def _request_hop(self, _arg) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._begin)

    def _begin(self, _ev: Event) -> None:
        req = self._req = self.system.shard_pipelines[self.shard].request()
        subscribe(req, self._granted)

    def _granted(self, _ev: Event) -> None:
        subscribe(self.system._wait_if_paused(), self._unpaused)

    def _unpaused(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.cost)
        timer.callbacks.append(self._served)

    def _served(self, _ev: Event) -> None:
        self.system.shard_pipelines[self.shard].release(self._req)
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._completed)

    def _completed(self, _ev: Event) -> None:
        # Resolve in the priority-2 rendezvous slot, not inline: this hop
        # timer's seq dates from one lookahead ago, so its position among
        # other events at this instant is an accident of creation time —
        # and the parallel kernel, injecting the same completion from a
        # barrier, could never reproduce it.  Both builds resolving at
        # priority 2 makes tied instants order identically.
        self.system.env._schedule_call_last(self._finish, None)

    def _finish(self, _arg) -> None:
        self.done._resolve(self.value)


class _AhlTxn:
    """One AHL transaction as a flat chain.

    Single-shard transactions take one serial slot of their shard's
    execute pipeline; cross-shard transactions run BFT-2PC through the
    reference committee (whose participant legs are :class:`_ShardExec`
    chains — no Process per participant).
    """

    __slots__ = ("system", "txn", "done")

    def __init__(self, system: "AhlSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done

    def start(self) -> None:
        self.system.env._schedule_call(self._begin, None)

    def _begin(self, _arg) -> None:
        system = self.system
        txn = self.txn
        txn.submitted_at = system.env.now
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead
            + system.costs.transfer_time(256 + txn.payload_size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        system = self.system
        txn = self.txn
        shards = sorted({system.partitioner.shard_of(op.key)
                         for op in txn.ops})
        if len(shards) == 1:
            subscribe(system.shard_exec_event(shards[0]), self._executed)
            return
        # Cross-shard: BFT-2PC through the reference committee.
        system.cross_shard_txns += 1
        participants = [_ShardParticipant(system, s) for s in shards]
        ev = system.coordinator.run(txn.txn_id, participants,
                                    {"txn": txn})
        ev.callbacks.append(self._decided)

    def _executed(self, _ev: Event) -> None:
        self.system._apply(self.txn)
        self.done.succeed(self.txn)

    def _decided(self, ev: Event) -> None:
        txn = self.txn
        decision = ev._value
        if decision.value != "commit":
            txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
        else:
            self.system._apply(txn)
        self.done.succeed(txn)


class _ShardParticipant:
    """Adapter: one shard acting as a 2PC participant (flat chains)."""

    def __init__(self, system: "AhlSystem", shard: int):
        self.system = system
        self.shard = shard

    def prepare(self, txn_id: int, payload: dict) -> Event:
        return self.system.shard_exec_event(self.shard, value=Vote.YES,
                                            scheduled=True)

    def finalize(self, txn_id: int, decision) -> Event:
        return self.system.shard_exec_event(self.shard, commit=True,
                                            value=True, scheduled=True)


class AhlSystem(TransactionalSystem):
    name = "ahl"

    NODES_PER_SHARD = 3  # Fig. 14 setup (TEEs allow small shards)

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None,
                 periodic_reconfig: bool = True,
                 shard_lookahead: bool = False, parallel: bool = False,
                 hot_split: bool = False):
        """``shard_lookahead`` charges the hub<->shard network hops
        (one ``net_latency`` each way per shard slot), making each shard
        a network-isolated logical process; ``parallel`` additionally
        runs each shard's pipeline in its own worker process behind a
        :class:`~repro.sim.parallel.ShardCoupler` (implies
        ``shard_lookahead`` — the hop model is what makes the two
        execution strategies equivalent).  ``hot_split`` swaps the hash
        partitioner for a load-aware
        :class:`~repro.sharding.partitioner.HotSplitPartitioner` that
        splits the hottest key range at each reconfig epoch boundary
        (elastic resharding under the same pause that drains in-flight
        work).  All default off: the seeded fingerprints pin the default
        (hopless, single-heap, static-hash) model.
        """
        super().__init__(env, config)
        if self.config.num_nodes % self.NODES_PER_SHARD:
            raise ValueError("num_nodes must be a multiple of 3 (Fig. 14)")
        self.num_shards = self.config.num_nodes // self.NODES_PER_SHARD
        self.hot_split = hot_split
        if hot_split:
            self.partitioner = HotSplitPartitioner(self.num_shards)
        else:
            self.partitioner = HashPartitioner(self.num_shards)
        self.state = VersionedStore()
        self._version = 0
        # Per-shard serial PBFT execute pipeline (calibrated).
        self._shard_nodes = self._new_nodes(self.config.num_nodes, "ahl")
        self.shard_pipelines = [Resource(env, 1)
                                for _ in range(self.num_shards)]
        self._txn_cost = 1.0 / self.costs.ahl_shard_tps
        # Reference committee: BFT-replicated 2PC coordinator.
        committee = self._new_nodes(4, "ahl-ref")
        self.committee = PbftGroup(
            env, committee, self.network, self.costs,
            PbftConfig(batch_window=0.02, max_batch=64,
                       message_kind="pbft:ahl-ref"),
            rng=self.rng)
        self.coordinator = BftCoordinator(env, self.committee)
        self.formation = ShardFormation(num_shards=self.num_shards)
        self.periodic_reconfig = periodic_reconfig
        self.reconfig = ReconfigurationSchedule(
            period=self.costs.ahl_reconfig_period,
            pause=self.costs.ahl_reconfig_pause)
        self._paused = False
        self._resume_signal: Optional[Event] = None
        if periodic_reconfig:
            self.spawn(self._reconfig_loop(), name="ahl-reconfig")
        self.cross_shard_txns = 0
        self.shard_lookahead = shard_lookahead or parallel
        self.coupler = None
        if parallel:
            from ..sim.parallel import ShardCoupler
            self.coupler = ShardCoupler(
                env, self.num_shards, window=self.network.min_delay,
                period=self.reconfig.period, pause=self.reconfig.pause,
                periodic_reconfig=periodic_reconfig)

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self.state.put(key, value, 0)

    # -- reconfiguration epochs ---------------------------------------------------

    def _reconfig_loop(self):
        while True:
            yield self.env.timeout(self.reconfig.period - self.reconfig.pause)
            # Epoch boundary: shards re-form; processing pauses.
            self._paused = True
            self.formation.reconfigure(
                [n.name for n in self._shard_nodes])
            if self.hot_split:
                # Elastic resharding rides the epoch pause: the pipeline
                # is drained, so re-homing half a key range cannot strand
                # an in-flight transaction.  Routing is hub-side (the
                # partitioner never leaves this process), so the split is
                # identical under serial, lookahead, and parallel builds.
                self.partitioner.maybe_split()
            yield self.env.timeout(self.reconfig.pause)
            self._paused = False
            signal, self._resume_signal = self._resume_signal, None
            if signal is not None and not signal.triggered:
                signal.succeed()

    def _wait_if_paused(self) -> Event:
        """Awaitable call: resolved now unless a reconfig pause is active.

        Flat-event protocol — the caller always ``yield``s the result;
        when the shard is not paused that costs nothing (the process
        trampoline short-circuits the resolved event).
        """
        if not self._paused:
            return self.env.resolved()
        if self._resume_signal is None:
            self._resume_signal = self.env.event()
        return self._resume_signal

    # -- shard execution ------------------------------------------------------------

    def shard_exec_event(self, shard: int, commit: bool = False,
                         value=None, scheduled: bool = False) -> Event:
        """One serial slot of the shard's PBFT execute pipeline (flat).

        The reconfiguration pause stalls the *server* (checked while the
        slot is held), so an epoch boundary really does stop the shard —
        queued work cannot ride through it.
        """
        cost = self._txn_cost * (0.3 if commit else 1.0)
        if self.coupler is not None:
            return self.coupler.exec_event(shard, cost, value=value,
                                           scheduled=scheduled)
        if self.shard_lookahead:
            return _ShardExecLA(self, shard, cost, value).start(scheduled)
        return _ShardExec(self, shard, cost, value).start(scheduled)

    def shard_domains(self) -> dict:
        """Decomposition metadata for the conservative parallel kernel.

        Names the event domains that interact only through the network
        and the lookahead window separating them.  The lookahead is zero
        unless ``shard_lookahead`` charges the hub<->shard hops — in the
        default model a shard slot starts the instant it is requested,
        so there is no window to exploit.
        """
        return {
            "domains": [f"ahl-shard-{i}" for i in range(self.num_shards)],
            "lookahead": self.network.min_delay if self.shard_lookahead
            else 0.0,
        }

    def shard_exec_gen(self, shard: int, txn: Optional[Transaction],
                       commit: bool = False):
        """Generator form of :meth:`shard_exec_event` (differential tests)."""
        cost = self._txn_cost * (0.3 if commit else 1.0)
        pipeline = self.shard_pipelines[shard]
        req = pipeline.request()
        yield req
        try:
            yield self._wait_if_paused()
            yield self.env.timeout(cost)
        finally:
            pipeline.release(req)

    # -- transactions --------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _AhlTxn(self, txn, done).start()
        return done

    def submit_gen(self, txn: Transaction) -> Event:
        """Generator-form transaction path, kept for differential testing."""
        done = self.env.event()
        self.spawn(self._do_txn_gen(txn, done), name="ahl-txn")
        return done

    def _do_txn_gen(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(256 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        shards = sorted({self.partitioner.shard_of(op.key)
                         for op in txn.ops})
        if len(shards) == 1:
            yield from self.shard_exec_gen(shards[0], txn)
            self._apply(txn)
        else:
            # Cross-shard: BFT-2PC through the reference committee (the
            # generator-form coordinator, so the differential test really
            # compares the chain 2PC against the coroutine 2PC; the
            # participant legs are _ShardExec chains on both paths).
            self.cross_shard_txns += 1
            participants = [_ShardParticipant(self, s) for s in shards]
            decision = yield self.coordinator.run_gen(txn.txn_id, participants,
                                                      {"txn": txn})
            if decision.value != "commit":
                txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
                done.succeed(txn)
                return
            self._apply(txn)
        done.succeed(txn)

    def _apply(self, txn: Transaction) -> None:
        self._version += 1
        for op in txn.ops:
            if op.is_write:
                self.state.put(op.key, op.value, self._version)
        txn.mark_committed()

    # -- queries -----------------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="ahl-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        yield self.env.timeout(2 * self.costs.net_latency)
        for op in txn.ops:
            if op.op_type is OpType.READ:
                self.state.get(op.key)
        txn.mark_committed()
        done.succeed(txn)
