"""Hyperledger Fabric v2.x system model: execute-order-validate.

Transaction lifecycle (Fig. 3b): the client sends its proposal to every
endorsing peer (the paper's policy endorses at **all** peers); peers
simulate the chaincode concurrently against their *local* committed state
and sign the result; the client compares the returned read sets (aborting
on mismatch — peers commit blocks at different rates, so their states
diverge transiently); the endorsed envelope goes to a 3-orderer Raft
ordering service that cuts blocks of up to 100 transactions or 700 ms;
peers pull blocks and validate serially — per transaction, one signature
verification per endorsement (VSCC) plus the optimistic MVCC read-set
check — then commit the survivors to ledger and state.

Performance mechanics reproduced here:

* peak throughput bounded by the **serial validation pipeline**, whose
  per-transaction cost grows with the endorsement count — hence Table 4's
  decline as peers are added (1560 tps at 3 -> 528 at 19);
* saturated latency explodes as blocks pile up ahead of the serial
  validator (Fig. 8a);
* skew and multi-op transactions abort via read-write conflicts and
  inconsistent endorsements (Figs. 9-10);
* the ledger keeps every envelope: block storage amplification (Fig. 12).
"""

from __future__ import annotations

from typing import Optional

from ..adt.mbt import MerkleBucketTree
from ..concurrency.occ import OccSimulator, OccValidator, endorsements_consistent
from ..storage.engine import MbtEngine, engine_from_config
from ..consensus.sharedlog import OrderingService, SharedLogConfig
from ..crypto.hashing import NULL_HASH
from ..sim.kernel import Environment, Event
from ..sim.resources import Resource
from ..txn.ledger import Ledger, envelope_size
from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, Transaction, TxnStatus
from .base import SystemConfig, TransactionalSystem

__all__ = ["FabricSystem"]


class _Peer:
    """One endorsing/committing peer with its own state and ledger."""

    def __init__(self, system: "FabricSystem", node, engine=None):
        self.system = system
        self.node = node
        # Writes mirror into the peer's storage engine (Table 2 index
        # choice) via the versioned facade; the engine folds once per
        # committed block.
        self.engine = engine
        self.state = VersionedStore(engine=engine)
        self.simulator = OccSimulator(self.state)
        self.validator = OccValidator(self.state)
        # Back-compat alias: the real Merkle Bucket Tree when the peer
        # runs the Fabric v0.6 state organization (real_state mode).
        self.state_tree = getattr(engine, "tree", None) \
            if engine is not None and engine.authenticated else None
        self.ledger = Ledger()
        self.validation_thread = Resource(system.env, 1)
        self.query_pool = Resource(system.env,
                                   system.costs.fabric_query_pool)
        self.blocks_committed = 0


class _Endorsement:
    """Proposal simulation + endorsement at one peer, as a flat chain.

    The hottest fan-out in the Fabric model (one per transaction per
    endorsing peer).  Each stage parks a single callback on its event —
    client NIC egress, propagation, peer CPU, response NIC egress,
    propagation — issuing the identical schedule sequence the spawned
    ``_endorse_at`` coroutine did; :attr:`done` is succeeded through the
    scheduler exactly where the endorsement process's completion event
    landed, so the client's ``AllOf`` barrier sees no difference.
    """

    __slots__ = ("system", "peer", "txn", "out", "done", "result")

    def __init__(self, system: "FabricSystem", peer: _Peer,
                 txn: Transaction, out: list):
        self.system = system
        self.peer = peer
        self.txn = txn
        self.out = out
        self.done = Event(system.env)
        self.result = None

    def start(self) -> Event:
        self.system.env._schedule_call(self._send_proposal, None)
        return self.done

    def _send_proposal(self, _arg) -> None:
        system = self.system
        size = 256 + self.txn.payload_size
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(size))
        ev.callbacks.append(self._proposal_sent)

    def _proposal_sent(self, _ev: Event) -> None:
        system = self.system
        timer = system.env.timeout(system.costs.net_latency)
        timer.callbacks.append(self._proposal_arrived)

    def _proposal_arrived(self, _ev: Event) -> None:
        system = self.system
        ev = self.peer.node.compute(system.costs.sig_verify
                                    + system.costs.fabric_simulate
                                    + system.costs.fabric_endorse)
        ev.callbacks.append(self._simulated)

    def _simulated(self, _ev: Event) -> None:
        # Simulate against this peer's local committed state.
        system = self.system
        txn = self.txn
        probe = Transaction(ops=txn.ops, client=txn.client, logic=txn.logic)
        read_set = self.peer.simulator.simulate(probe)
        self.result = (read_set, probe)
        ev = self.peer.node.nic_out.serve_event(
            system.costs.net_send_overhead
            + system.costs.transfer_time(512 + txn.payload_size))
        ev.callbacks.append(self._response_sent)

    def _response_sent(self, _ev: Event) -> None:
        system = self.system
        timer = system.env.timeout(system.costs.net_latency)
        timer.callbacks.append(self._response_arrived)

    def _response_arrived(self, _ev: Event) -> None:
        # Appended here — not at simulation time — because completion
        # order decides which endorsement's rw-set the client adopts.
        self.out.append(self.result)
        self.done.succeed()


class FabricSystem(TransactionalSystem):
    name = "fabric"

    NUM_ORDERERS = 3  # fixed while peers scale (Section 4.2)

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None,
                 endorsement_policy: Optional[int] = None,
                 serial_validation: bool = True,
                 real_state: bool = False):
        super().__init__(env, config)
        self.real_state = real_state
        peer_nodes = self._new_nodes(self.config.num_nodes, "peer")
        # Storage engine (Table 2: Fabric v2 = plain LSM, v0.6 = LSM+MBT).
        # An explicit ``extras["index"]`` choice runs the real structure
        # and charges its measured commit deltas once per block; legacy
        # ``real_state=True`` maintains the v0.6 MBT silently (roots
        # only, no charge), preserving the seed behaviour.  Only the
        # reference peer carries the engine (replicas would compute the
        # identical structure — pure wall-clock waste).
        ref_engine = engine_from_config(self.config.extras)
        self._measured_index = ref_engine is not None
        if ref_engine is None and real_state:
            ref_engine = MbtEngine(tree=MerkleBucketTree())
        self._wal_cost = (self.costs.wal_sync
                          if ref_engine is not None
                          and ref_engine.wal is not None else 0.0)
        self.engine = ref_engine
        self.peers = [_Peer(self, node,
                            engine=(ref_engine if i == 0 else None))
                      for i, node in enumerate(peer_nodes)]
        # Endorsement policy: how many peers must endorse (default: all).
        self.endorsement_policy = (endorsement_policy
                                   if endorsement_policy is not None
                                   else len(self.peers))
        self.serial_validation = serial_validation
        orderer_nodes = self._new_nodes(self.NUM_ORDERERS, "orderer")
        self.ordering = OrderingService(
            env, orderer_nodes, self.network, self.costs,
            SharedLogConfig(
                block_max_items=self.costs.fabric_block_cut_count,
                block_timeout=self.costs.fabric_block_cut_timeout),
            rng=self.rng)
        # Each peer consumes the block stream (we use local streams plus an
        # explicit per-peer delivery NIC charge, standing in for the
        # gossip-based dissemination of real Fabric).
        self._streams = {}
        for peer in self.peers:
            stream = self.ordering.subscribe_local()
            self._streams[peer.node.name] = stream
            self.spawn(self._peer_commit_loop(peer, stream),
                       name=f"fabric-commit:{peer.node.name}")
        self._waiters: dict[int, Event] = {}
        self.inconsistent_aborts = 0
        self.mvcc_aborts = 0

    # -- loading ------------------------------------------------------------------

    def load(self, records: dict[str, bytes]) -> None:
        for peer in self.peers:
            for key, value in records.items():
                peer.state.put(key, value, 0)
            # writes mirrored into the engine; one batched genesis commit
            peer.state.commit(0)

    # -- update path -------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_update(txn, done), name="fabric-update")
        return done

    def _do_update(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        execute_start = self.env.now
        endorsers = self.peers[:self.endorsement_policy]
        results: list = []
        jobs = [_Endorsement(self, peer, txn, results).start()
                for peer in endorsers]
        yield self.env.all_of(jobs)
        txn.phases["execute"] = self.env.now - execute_start
        read_sets = [rs for rs, _probe in results]
        if not endorsements_consistent(read_sets):
            self.inconsistent_aborts += 1
            txn.mark_aborted(AbortReason.INCONSISTENT_READ)
            done.succeed(txn)
            return
        # Adopt the endorsed rw-set; a logic abort surfaces here too.
        _rs, probe = results[0]
        if probe.abort_reason is AbortReason.LOGIC:
            txn.mark_aborted(AbortReason.LOGIC)
            done.succeed(txn)
            return
        txn.read_set = dict(probe.read_set)
        txn.write_set = dict(probe.write_set)
        order_start = self.env.now
        wire = envelope_size(txn, self.endorsement_policy,
                             self.costs.certificate_size,
                             self.costs.signature_size)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(wire))
        yield self.env.timeout(self.costs.net_latency)
        commit_ev = self.env.event()
        self._waiters[txn.txn_id] = commit_ev
        txn.phases["_order_start"] = order_start
        try:
            yield self.ordering.append(txn, size=wire)
        except Exception:
            self._waiters.pop(txn.txn_id, None)
            txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
            done.succeed(txn)
            return
        yield commit_ev
        done.succeed(txn)

    # -- peer block validation ----------------------------------------------------------

    def _peer_commit_loop(self, peer: _Peer, stream):
        is_reference = peer is self.peers[0]
        while True:
            block = yield stream.get()
            txns: list[Transaction] = block["items"]
            # Block transfer from orderer to this peer (gossip stand-in).
            wire = 256 + sum(
                envelope_size(t, self.endorsement_policy,
                              self.costs.certificate_size,
                              self.costs.signature_size) for t in txns)
            yield self.env.timeout(self.costs.net_latency
                                   + self.costs.transfer_time(wire))
            deliver_time = self.env.now
            block_version = peer.ledger.height + 1
            committed = []
            vscc = (self.costs.fabric_vscc_per_endorsement
                    * self.endorsement_policy)
            if not self.serial_validation:
                # Ablation: verify the block's endorsements concurrently
                # across the peer's cores (the paper notes serial
                # validation is an implementation choice).
                def one_vscc(txn_):
                    yield peer.node.compute(
                        vscc + self.costs.fabric_mvcc_check)
                jobs = [self.spawn(one_vscc(t), name="fabric-vscc")
                        for t in txns]
                if jobs:
                    yield self.env.all_of(jobs)
            for txn in txns:
                if self.serial_validation:
                    yield peer.validation_thread.serve_event(
                        vscc + self.costs.fabric_mvcc_check)
                if is_reference:
                    ok = peer.validator.validate_and_commit(txn, block_version)
                else:
                    # replicas validate their own copy
                    copy = Transaction(ops=txn.ops, client=txn.client)
                    copy.read_set = dict(txn.read_set)
                    copy.write_set = dict(txn.write_set)
                    ok = peer.validator.validate_and_commit(copy, block_version)
                if ok:
                    committed.append(txn)
                    yield peer.validation_thread.serve_event(
                        self.costs.fabric_commit_per_txn)
            # One batched engine commit per block (committed writes were
            # mirrored through the validator); a configured authenticated
            # index charges its measured digest delta on the serialized
            # validation thread — the Fig. 12 gap on the Fabric path.
            result = peer.state.commit(block_version)
            if result is not None and self._measured_index:
                index_cost = (self.costs.index_commit_time(
                    result.hashes_computed, result.node_ops)
                    + self._wal_cost)  # block's group-committed sync
                if index_cost > 0.0:
                    yield peer.validation_thread.serve_event(index_cost)
            state_root = (result.root
                          if result is not None and peer.engine.authenticated
                          else NULL_HASH)
            peer.ledger.append_block(
                txns, timestamp=self.env.now, state_root=state_root,
                endorsements_per_txn=self.endorsement_policy)
            peer.blocks_committed += 1
            if is_reference:
                for txn in txns:
                    order_start = txn.phases.pop("_order_start", None)
                    if order_start is not None:
                        txn.phases["order"] = deliver_time - order_start
                    txn.phases["validate"] = self.env.now - deliver_time
                    if txn.status is not TxnStatus.COMMITTED:
                        if txn.abort_reason is None:
                            txn.mark_aborted(AbortReason.READ_WRITE_CONFLICT)
                        self.mvcc_aborts += 1
                    waiter = self._waiters.pop(txn.txn_id, None)
                    if waiter is not None and not waiter.triggered:
                        waiter.succeed(txn)

    # -- query path -------------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="fabric-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        peer = self._pick_round_robin(self.peers)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(256))
        yield self.env.timeout(self.costs.net_latency)
        # Client authentication + chaincode simulation + endorsement sign,
        # inside the peer's bounded query-handler pool (Fig. 8b breakdown).
        req = peer.query_pool.request()
        yield req
        try:
            start = self.env.now
            yield self.env.timeout(self.costs.fabric_client_auth)
            txn.phases["authentication"] = self.env.now - start
            start = self.env.now
            yield self.env.timeout(self.costs.fabric_simulate)
            for op in txn.ops:
                peer.state.get(op.key)
            txn.phases["simulation"] = self.env.now - start
            start = self.env.now
            yield self.env.timeout(self.costs.fabric_endorse)
            txn.phases["endorsement"] = self.env.now - start
        finally:
            peer.query_pool.release(req)
        yield peer.node.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(256 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)

    # -- storage accounting (Fig. 12) ---------------------------------------------------------

    def block_bytes_per_txn(self) -> float:
        ledger = self.peers[0].ledger
        total_txns = ledger.total_txns()
        if total_txns == 0:
            return 0.0
        return ledger.total_bytes(self.costs.certificate_size,
                                  self.costs.signature_size) / total_txns
