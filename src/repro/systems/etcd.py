"""etcd system model: NoSQL key-value store over a single Raft group.

Architecture (Section 4.1): one consensus instance sequences *all*
requests; data is fully replicated; the state machine is a B+ tree
(BoltDB).  Like a blockchain, execution is serial in log order — which is
why etcd is the database the paper finds closest to blockchains
structurally, yet far faster because its per-entry costs are tiny and it
carries no security overhead.

Performance mechanics reproduced here:

* update throughput is bounded by the leader's serialized pipeline:
  per-entry processing + per-follower replication egress — so it *drops*
  as nodes are added (Table 4: 19282 tps at 3 nodes -> 6076 at 19);
* linearizable reads are served by every node (ReadIndex), so aggregate
  query throughput is high (Fig. 4b) and unaffected by consensus.
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.serial import SerialExecutor
from ..consensus.raft import RaftConfig, RaftGroup
from ..sim.kernel import Environment, Event
from ..sim.resources import Resource
from ..storage.btree import BPlusTree
from ..txn.state import VersionedStore
from ..txn.transaction import Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["EtcdSystem"]


class EtcdSystem(TransactionalSystem):
    name = "etcd"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        super().__init__(env, config)
        self.servers = self._new_nodes(self.config.num_nodes, "etcd")
        self.raft = RaftGroup(
            env, self.servers, self.network, self.costs,
            RaftConfig(batch_window=self.costs.raft_batch_window,
                       max_batch=self.costs.raft_max_batch,
                       message_kind="raft:etcd"),
            rng=self.rng)
        self.state = VersionedStore()
        self.btree = BPlusTree(order=64)       # BoltDB state machine
        self.executor = SerialExecutor(self.state)
        self._version = 0
        # Serialized apply loop (etcd applies committed entries in order on
        # a single goroutine) and serialized read path per node.
        self._read_paths = {n.name: Resource(env, 1) for n in self.servers}
        self.spawn(self._apply_loop(), name="etcd-apply")
        self._waiters: dict[int, Event] = {}

    # -- data loading -------------------------------------------------------

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self._version += 1
            self.state.put(key, value, self._version)
            self.btree.put(key.encode(), value)

    # -- writes ------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_update(txn, done), name="etcd-update")
        return done

    def _do_update(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        leader = self.raft.leader
        if leader is None:
            txn.mark_aborted(txn.abort_reason)
            done.succeed(txn)
            return
        size = 64 + txn.payload_size
        # client -> leader request over the wire
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        # gRPC decode + mvcc txn wrap on the leader (parallel across cores)
        yield leader.node.compute(self.costs.etcd_request_cpu)
        commit_ev = leader.propose(txn, size=size)
        try:
            yield commit_ev
        except Exception:
            txn.mark_aborted(txn.abort_reason)
            done.succeed(txn)
            return
        apply_ev = self.env.event()
        self._waiters[txn.txn_id] = apply_ev
        yield apply_ev
        # response back to the client
        yield leader.node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        # status (committed / logic-aborted) was set by the apply loop
        done.succeed(txn)

    def _apply_loop(self):
        """Serial state-machine application on the leader replica."""
        leader_name = self.servers[0].name
        applied = self.raft.replicas[leader_name].applied
        node = self.servers[0]
        while True:
            _index, txn = yield applied.get()
            yield node.disk.serve_event(
                self.costs.raft_apply + self.costs.store_put)
            self._version += 1
            # Single consensus order == serial execution: run the
            # transaction (including any logic) against the state machine.
            self.executor.execute(txn, self._version)
            for key, value in txn.write_set.items():
                self.btree.put(key.encode(), value)
            waiter = self._waiters.pop(txn.txn_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(txn)

    # -- reads ---------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="etcd-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(96))
        yield self.env.timeout(self.costs.net_latency)
        read_path = self._read_paths[server.name]
        for op in txn.ops:
            yield read_path.serve_event(self.costs.etcd_read_cpu)
            value, _version = self.state.get(op.key)
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(64 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
