"""etcd system model: NoSQL key-value store over a single Raft group.

Architecture (Section 4.1): one consensus instance sequences *all*
requests; data is fully replicated; the state machine is a B+ tree
(BoltDB).  Like a blockchain, execution is serial in log order — which is
why etcd is the database the paper finds closest to blockchains
structurally, yet far faster because its per-entry costs are tiny and it
carries no security overhead.

Performance mechanics reproduced here:

* update throughput is bounded by the leader's serialized pipeline:
  per-entry processing + per-follower replication egress — so it *drops*
  as nodes are added (Table 4: 19282 tps at 3 nodes -> 6076 at 19);
* linearizable reads are served by every node (ReadIndex), so aggregate
  query throughput is high (Fig. 4b) and unaffected by consensus.
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.rc import ReadCommittedScheduler
from ..concurrency.serial import SerialExecutor
from ..concurrency.si import SnapshotScheduler, isolation_level
from ..consensus.raft import RaftConfig, RaftGroup
from ..sim.kernel import Environment, Event, subscribe
from ..sim.resources import Resource
from ..storage.engine import engine_from_config
from ..txn.state import VersionedStore
from ..txn.transaction import Transaction
from .base import SystemConfig, TransactionalSystem

__all__ = ["EtcdSystem"]


class _ApplyLoop:
    """The serial state-machine apply loop, as a perpetual flat chain.

    Parks one callback on ``applied.get()`` and one on the disk-serve
    per committed entry — the identical wait sequence the old coroutine
    loop issued, minus two ``Process._resume`` walks per transaction.
    """

    __slots__ = ("system", "node", "applied", "txn")

    def __init__(self, system: "EtcdSystem"):
        self.system = system
        self.node = system.servers[0]
        leader_name = self.node.name
        self.applied = system.raft.replicas[leader_name].applied
        self.txn = None

    def start(self) -> None:
        self.system.env._schedule_call(self._next, None)

    def _next(self, _arg) -> None:
        subscribe(self.applied.get(), self._got)

    def _got(self, ev: Event) -> None:
        _index, self.txn = ev._value
        system = self.system
        serve = self.node.disk.serve_event(system._apply_cost)
        serve.callbacks.append(self._applied)

    def _applied(self, _ev: Event) -> None:
        system = self.system
        txn = self.txn
        system._version += 1
        if system.scheduler is not None:
            # Weakened isolation: the txn was staged (read + logic) at
            # the gateway; the serial apply only validates (SI:
            # first-updater-wins on write keys; RC: nothing) and
            # installs the buffered write set.
            system.scheduler.apply(txn, system._version)
        else:
            # Single consensus order == serial execution: run the
            # transaction (including any logic) against the state
            # machine.  Writes mirror into the storage engine via the
            # state facade.
            system.executor.execute(txn, system._version)
        if system.history is not None:
            system.history.observe(txn)
        # Engine commit per applied entry (etcd has no blocks; the WAL
        # group commit and any authenticated-index digests fold here).
        result = system.state.commit(system._version)
        index_cost = system.costs.index_commit_time(
            result.hashes_computed, result.node_ops)
        if index_cost > 0.0:
            # Authenticated index: the measured digest work extends the
            # serialized apply (plain engines charge nothing — the
            # default fast path resolves the waiter directly).
            serve = self.node.disk.serve_event(index_cost)
            serve.callbacks.append(self._index_folded)
            return
        self._resolve()

    def _index_folded(self, _ev: Event) -> None:
        self._resolve()

    def _resolve(self) -> None:
        txn = self.txn
        waiter = self.system._waiters.pop(txn.txn_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(txn)
        self._next(None)


class _Update:
    """One client update through the Raft pipeline, as a flat chain.

    Stage-for-stage mirror of the retained ``_do_update_gen`` coroutine
    — client NIC egress, propagation, leader request CPU, Raft commit,
    state-machine apply, response NIC egress, propagation — with one
    parked callback per wait instead of a generator frame resumed
    through the trampoline.  Every completion lands at the identical
    dispatch position the coroutine's resume occupied (``done`` is
    succeeded through the scheduler exactly where the generator called
    it), so seeded runs are byte-identical across the two forms.
    """

    __slots__ = ("system", "txn", "done", "leader", "size")

    def __init__(self, system: "EtcdSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done
        self.leader = None
        self.size = 0

    def start(self) -> None:
        # Occupies the same scheduled slot a Process bootstrap would.
        self.system.env._schedule_call(self._begin, None)

    def _abort(self) -> None:
        txn = self.txn
        txn.mark_aborted(txn.abort_reason)
        self.done.succeed(txn)

    def _begin(self, _arg) -> None:
        system = self.system
        txn = self.txn
        txn.submitted_at = system.env.now
        leader = system.raft.leader
        if leader is None:
            self._abort()
            return
        self.leader = leader
        self.size = 64 + txn.payload_size
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead
            + system.costs.transfer_time(self.size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        ev = self.leader.node.compute(self.system.costs.etcd_request_cpu)
        ev.callbacks.append(self._decoded)

    def _decoded(self, _ev: Event) -> None:
        system = self.system
        if system.scheduler is not None:
            # Weakened isolation: read the inputs at the gateway (one
            # committed instant on the leader's read path) and run the
            # logic *before* consensus, so the serialized apply loop
            # only validates+installs.  Off the critical path — the
            # serial apply/disk pipeline stays the bottleneck.
            nreads = len(self.txn.read_keys)
            if nreads:
                ev = system._read_paths[self.leader.node.name].serve_event(
                    system.costs.etcd_read_cpu * nreads)
                ev.callbacks.append(self._staged)
                return
            self._stage_and_propose()
            return
        commit_ev = self.leader.propose(self.txn, size=self.size)
        subscribe(commit_ev, self._committed)

    def _staged(self, _ev: Event) -> None:
        self._stage_and_propose()

    def _stage_and_propose(self) -> None:
        if not self.system.scheduler.stage(self.txn):
            # Constraint violation against the gateway snapshot: answer
            # the client without burning a consensus slot.
            self._applied(None)
            return
        commit_ev = self.leader.propose(self.txn, size=self.size)
        subscribe(commit_ev, self._committed)

    def _committed(self, ev: Event) -> None:
        if not ev._ok:
            self._abort()
            return
        system = self.system
        apply_ev = system.env.event()
        system._waiters[self.txn.txn_id] = apply_ev
        apply_ev.callbacks.append(self._applied)

    def _applied(self, _ev: Event) -> None:
        system = self.system
        ev = self.leader.node.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(128))
        ev.callbacks.append(self._responded)

    def _responded(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._finish)

    def _finish(self, _ev: Event) -> None:
        # status (committed / logic-aborted) was set by the apply loop
        self.done.succeed(self.txn)


class EtcdSystem(TransactionalSystem):
    name = "etcd"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        super().__init__(env, config)
        self.servers = self._new_nodes(self.config.num_nodes, "etcd")
        self.raft = RaftGroup(
            env, self.servers, self.network, self.costs,
            RaftConfig(batch_window=self.costs.raft_batch_window,
                       max_batch=self.costs.raft_max_batch,
                       message_kind="raft:etcd"),
            rng=self.rng)
        # Storage engine (Table 2: etcd = B-tree / BoltDB).  The default
        # wraps the same BPlusTree the model always used; an
        # ``extras["index"]`` override swaps in any other Table 2 choice,
        # and ``extras["wal"]`` journals writes through the group-committed
        # WAL, charging one wal_sync share per applied entry.
        self.engine = engine_from_config(self.config.extras, default="btree")
        self.btree = self.engine.tree         # BoltDB state machine
        wal = self.engine.wal is not None
        self.state = VersionedStore(engine=self.engine)
        self.executor = SerialExecutor(self.state)
        self._apply_cost = (self.costs.raft_apply + self.costs.store_put
                            + (self.costs.wal_sync if wal else 0.0))
        self._version = 0
        # Serialized apply loop (etcd applies committed entries in order on
        # a single goroutine) and serialized read path per node.
        self._read_paths = {n.name: Resource(env, 1) for n in self.servers}
        self._waiters: dict[int, Event] = {}
        # Isolation spectrum (extras["isolation"]): default is serial
        # execution in log order (serializable).  Weakened levels stage
        # reads+logic at the gateway and validate at apply: "snapshot"
        # keeps first-updater-wins, "read_committed" installs blindly.
        self.isolation = isolation_level(self.config.extras)
        self.scheduler = None
        self.history = None
        if self.isolation == "snapshot":
            self.scheduler = SnapshotScheduler(self.state)
        elif self.isolation == "read_committed":
            self.scheduler = ReadCommittedScheduler(self.state)
        if "isolation" in self.config.extras:
            from ..analysis.serializability import HistoryChecker
            self.history = HistoryChecker()
        _ApplyLoop(self).start()

    # -- data loading -------------------------------------------------------

    def load(self, records: dict[str, bytes]) -> None:
        for key, value in records.items():
            self._version += 1
            self.state.put(key, value, self._version)
        # writes mirrored into the engine above; one batched genesis commit
        self.state.commit(self._version)

    # -- writes ------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _Update(self, txn, done).start()
        return done

    def submit_gen(self, txn: Transaction) -> Event:
        """Generator-form update path, kept for differential testing."""
        done = self.env.event()
        self.spawn(self._do_update_gen(txn, done), name="etcd-update")
        return done

    def _do_update_gen(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        leader = self.raft.leader
        if leader is None:
            txn.mark_aborted(txn.abort_reason)
            done.succeed(txn)
            return
        size = 64 + txn.payload_size
        # client -> leader request over the wire
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        # gRPC decode + mvcc txn wrap on the leader (parallel across cores)
        yield leader.node.compute(self.costs.etcd_request_cpu)
        if self.scheduler is not None:
            # Weakened isolation: gateway-stage reads + logic (mirrors
            # the flat chain's _decoded branch).
            nreads = len(txn.read_keys)
            if nreads:
                yield self._read_paths[leader.node.name].serve_event(
                    self.costs.etcd_read_cpu * nreads)
            if not self.scheduler.stage(txn):
                yield leader.node.nic_out.serve_event(
                    self.costs.net_send_overhead
                    + self.costs.transfer_time(128))
                yield self.env.timeout(self.costs.net_latency)
                done.succeed(txn)
                return
        commit_ev = leader.propose(txn, size=size)
        try:
            yield commit_ev
        except Exception:
            txn.mark_aborted(txn.abort_reason)
            done.succeed(txn)
            return
        apply_ev = self.env.event()
        self._waiters[txn.txn_id] = apply_ev
        yield apply_ev
        # response back to the client
        yield leader.node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        # status (committed / logic-aborted) was set by the apply loop
        done.succeed(txn)

    # -- reads ---------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="etcd-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(96))
        yield self.env.timeout(self.costs.net_latency)
        read_path = self._read_paths[server.name]
        for op in txn.ops:
            yield read_path.serve_event(self.costs.etcd_read_cpu)
            value, _version = self.state.get(op.key)
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(64 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
