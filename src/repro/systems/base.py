"""Common scaffolding for simulated transactional systems.

Every system model (Quorum, Fabric, TiDB, etcd, TiKV, Spanner, AHL, the
hybrids) subclasses :class:`TransactionalSystem`: it owns a simulation
environment, a cluster of nodes, a network, and exposes ``submit`` /
``submit_query`` returning kernel events that fire when the transaction
completes (committed or aborted).  The workload driver in
:mod:`repro.workloads.driver` is the only component that calls these.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event
from ..sim.network import Network
from ..sim.node import Node
from ..sim.rng import RngRegistry
from ..txn.transaction import Transaction

__all__ = ["SystemConfig", "TransactionalSystem"]


@dataclass
class SystemConfig:
    """Cluster-level configuration shared by all system models."""

    num_nodes: int = 5           # Table 3 default
    seed: int = 0
    jitter: float = 0.00002      # small network jitter (LAN realism; drives
    #                              Fabric's inconsistent-read aborts and
    #                              IBFT's variance)
    cores_per_node: int = 6      # Xeon E5-1650: 6 cores
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    extras: dict = field(default_factory=dict)

    def derive(self, **overrides) -> "SystemConfig":
        return replace(self, **overrides)


class TransactionalSystem:
    """Base class: cluster construction + the submit interface."""

    name = "abstract"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None):
        self.env = env
        self.config = config or SystemConfig()
        self.costs = self.config.costs
        self.rng = RngRegistry(self.config.seed)
        self.network = Network(env, self.costs, rng=self.rng,
                               jitter=self.config.jitter)
        self.nodes: list[Node] = []
        # The client "node" aggregates the driver machines (Caliper / YCSB
        # clients ran on separate hosts), so its NIC is not a bottleneck.
        self.client_node = Node(env, "client",
                                cores=self.config.cores_per_node,
                                costs=self.costs, nic_capacity=8)
        self.network.attach(self.client_node)
        self._round_robin = 0

    # -- cluster helpers ------------------------------------------------------

    def _new_node(self, name: str) -> Node:
        node = Node(self.env, name, cores=self.config.cores_per_node,
                    costs=self.costs)
        self.network.attach(node)
        return node

    def _new_nodes(self, count: int, prefix: str) -> list[Node]:
        created = [self._new_node(f"{prefix}{i}") for i in range(count)]
        self.nodes.extend(created)
        return created

    def _pick_round_robin(self, items: list) -> object:
        self._round_robin += 1
        return items[self._round_robin % len(items)]

    # -- the interface driven by the workload driver -----------------------------

    def load(self, records: dict[str, bytes]) -> None:
        """Pre-populate state before measurement (no cost charged)."""
        raise NotImplementedError

    def submit(self, txn: Transaction) -> Event:
        """Run a (possibly updating) transaction.

        The returned event fires with the transaction object once its fate
        is decided; ``txn.status`` and ``txn.phases`` carry the outcome.
        """
        raise NotImplementedError

    def submit_query(self, txn: Transaction) -> Event:
        """Run a read-only transaction (no consensus, per Section 2.1)."""
        raise NotImplementedError

    # -- convenience -----------------------------------------------------------

    def spawn(self, generator, name: str = ""):
        return self.env.process(generator, name=name or self.name)

    def _finish(self, ev: Event, txn: Transaction) -> None:
        if not ev.triggered:
            ev.succeed(txn)
