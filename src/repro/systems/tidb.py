"""TiDB system model: NewSQL — stateless SQL layer over TiKV + percolator.

Architecture (Section 4.1): Placement Driver (timestamp oracle), TiKV as
the replicated storage, and stateless TiDB servers that parse and
schedule SQL.  Snapshot isolation via the percolator protocol: reads at a
start timestamp, then a two-phase commit over storage (prewrite locks
every written key with one *primary* lock; commit installs the commit
timestamp on the primary first).

Performance mechanics reproduced here:

* concurrency-over-replication: many transactions in flight, each paying
  SQL-layer CPU plus two consensus writes (Figure 8's TiDB bars);
* the primary-record **latch**: held across both consensus writes, so a
  hot key serializes waiting transactions — under Zipf theta=1 the
  coordinator spends its time on contention resolution and throughput
  collapses disproportionately to the abort rate (Figure 9, 5461 -> 173);
* write-write conflicts abort *instantly* at prewrite (TiDB's abort-fast
  behaviour the paper contrasts with Spanner's lock waits, Figure 14);
* multi-shard writes span several region groups: more ops per
  transaction -> more 2PC participants -> more overhead (Figure 10).
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.percolator import (PercolatorStore, PrewriteConflict,
                                      TimestampOracle)
from ..concurrency.si import isolation_level
from ..sim.kernel import Countdown, Environment, Event, subscribe
from ..sim.resources import Resource
from ..txn.transaction import AbortReason, OpType, Transaction
from .base import SystemConfig, TransactionalSystem
from .tikv import TikvCluster

__all__ = ["TiDBSystem"]


class _Txn:
    """One snapshot-isolation transaction as a flat chain.

    Stage-for-stage mirror of the retained ``_do_txn_gen``/``_attempt``
    coroutines: SQL-layer CPU, the per-op read loop, scheduler-latch
    acquisition in key order, percolator prewrite (conflict check under
    the held latches), the prewrite consensus fan-out joined by a
    :class:`Countdown` (byte-identical dispatch to the old ``AllOf``),
    the primary commit write, asynchronous secondaries, and the
    auto-retry backoff loop — all as parked callbacks, no Process and
    no generator frame per transaction or per 2PC participant.

    Fault contract (beyond the generator form, which crashed the run):
    a prewrite or primary-commit participant that fails — e.g. its
    region leader crashed mid-2PC — aborts the transaction cleanly:
    latches released, percolator locks rolled back, ``done`` fired
    exactly once (late stragglers from the same fan-out are absorbed by
    the countdown's double-completion guard).  Known modelling limit: a
    *surviving* participant's prewrite that already replicated keeps
    its value in the single-version cluster state (real Percolator
    leaves the orphaned data-column write invisible without a commit
    record and lazily garbage-collects it; this store has no second
    version to hide it in).  The window only exists under injected
    crashes, and conflict checks stay sound because the store version
    advanced with the phantom write.
    """

    __slots__ = ("system", "txn", "done", "server", "attempts", "start_ts",
                 "commit_ts", "reads", "write_set", "keys", "primary",
                 "grants", "prewrites", "_idx", "_cur", "_hist_reads")

    def __init__(self, system: "TiDBSystem", txn: Transaction, done: Event):
        self.system = system
        self.txn = txn
        self.done = done
        self.server = None
        self.attempts = 0
        self.start_ts = 0
        self.commit_ts = 0
        self.reads: dict[str, bytes] = {}
        self.write_set: dict[str, bytes] = {}
        self.keys: list[str] = []
        self.primary = ""
        self.grants: list = []
        self.prewrites: list[Event] = []
        self._idx = 0
        self._cur = None
        self._hist_reads = None

    def start(self) -> None:
        self.system.env._schedule_call(self._begin, None)

    # -- SQL-layer ingress -------------------------------------------------

    def _begin(self, _arg) -> None:
        system = self.system
        txn = self.txn
        txn.submitted_at = system.env.now
        self.server = system._pick_round_robin(system.servers)
        size = 128 + txn.payload_size
        ev = system.client_node.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(size))
        ev.callbacks.append(self._sent)

    def _sent(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._arrived)

    def _arrived(self, _ev: Event) -> None:
        system = self.system
        ev = self.server.compute(system.costs.tidb_session_cpu
                                 + system.costs.sql_parse
                                 + system.costs.sql_compile)
        ev.callbacks.append(self._sql_ready)

    def _sql_ready(self, _ev: Event) -> None:
        self._attempt_begin()

    # -- one snapshot-isolation attempt ------------------------------------

    def _attempt_begin(self) -> None:
        self.start_ts = self.system.oracle.next()
        if self.system.history is not None:
            self._hist_reads = {}
        self.reads = {}
        self.write_set = {}
        self.keys = []
        self.grants = []
        self.prewrites = []
        self._idx = 0
        self._next_read()

    def _next_read(self) -> None:
        ops = self.txn.ops
        idx = self._idx
        while idx < len(ops) and ops[idx].op_type not in (OpType.READ,
                                                          OpType.UPDATE):
            idx += 1
        if idx >= len(ops):
            self._execute_logic()
            return
        self._idx = idx
        ev = self.server.compute(self.system.costs.store_get)
        ev.callbacks.append(self._read_cpu_done)

    def _read_cpu_done(self, _ev: Event) -> None:
        subscribe(self.system.cluster.kv_read(self.txn.ops[self._idx].key),
                  self._read_done)

    def _read_done(self, ev: Event) -> None:
        key = self.txn.ops[self._idx].key
        value, version = ev._value
        self.txn.read_set[key] = version
        system = self.system
        if system.history is not None:
            # Shadow stamp for the history checker: the shared store mixes
            # raft-apply counters with oracle commit timestamps, so its raw
            # versions are CAS-comparable but not order-coherent.  The
            # shadow clock ticks once per committed transaction, giving the
            # MVSG builder a single coherent version order.
            self._hist_reads[key] = system._hist_versions.get(key, 0)
            owner = system.pstore.lock_owner(key)
            if owner is not None and owner != self.txn.txn_id:
                # The key is mid-commit: this may be the owner's
                # prewritten value, attributable only once the owner's
                # stamp is allocated (a value guard decides then).
                system._hist_pending.setdefault(owner, []).append(
                    (self._hist_reads, key, value))
        self.reads[key] = value if value is not None else b""
        self._idx += 1
        self._next_read()

    def _execute_logic(self) -> None:
        txn = self.txn
        write_set = self.write_set
        if txn.logic is not None:
            derived = txn.logic(self.reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                self._after_attempt(False)
                return
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.write_set = write_set
        if not write_set:
            # Read-only commit: serializable and snapshot levels give
            # read-only transactions a consistent snapshot, which the
            # single-version store approximates by revalidating that no
            # read was superseded (CAS-style, so the mixed store clock
            # is fine); a conflict retries like a prewrite conflict.
            # Read committed returns the raw sequential reads.
            if (self.system.isolation != "read_committed"
                    and any(self.system.pstore.store.version(key) != seen
                            for key, seen in txn.read_set.items())):
                txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                self._after_attempt(False)
                return
            txn.mark_committed()
            self._after_attempt(True)
            return
        self.keys = sorted(write_set)
        self.primary = self.keys[0]
        self._idx = 0
        self._next_latch()

    def _next_latch(self) -> None:
        if self._idx >= len(self.keys):
            self._prewrite_locks()
            return
        latch = self.system._latch(self.keys[self._idx])
        req = latch.request()
        self._cur = (latch, req)
        subscribe(req, self._latched)

    def _latched(self, _ev: Event) -> None:
        self.grants.append(self._cur)
        self._idx += 1
        self._next_latch()

    def _prewrite_locks(self) -> None:
        system = self.system
        txn = self.txn
        iso = system.isolation
        try:
            system.pstore.prewrite(
                txn.txn_id, self.keys, self.primary, self.start_ts,
                read_versions=txn.read_set if iso == "serializable" else None,
                commit_clock=iso == "snapshot",
                first_committer_wins=iso != "read_committed")
        except PrewriteConflict:
            system.prewrite_conflicts += 1
            if not system.instant_abort:
                timer = system.env.timeout(
                    system.costs.tidb_conflict_resolution)
                timer.callbacks.append(self._conflict_resolved)
                return
            self._conflict_abort()
            return
        self._idx = 0
        self._next_prewrite()

    def _conflict_resolved(self, _ev: Event) -> None:
        self._conflict_abort()

    def _conflict_abort(self) -> None:
        self.txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
        self._cleanup()
        self._after_attempt(False)

    def _next_prewrite(self) -> None:
        system = self.system
        if self._idx >= len(self.keys):
            join = Countdown(system.env, len(self.prewrites))
            for ev in self.prewrites:
                join.watch(ev)
            subscribe(join, self._prewritten)
            return
        node = system.cluster.leader_node(self.keys[self._idx])
        ev = system.cluster.store_threads[node.name].serve_event(
            system.costs.percolator_prewrite_cpu)
        ev.callbacks.append(self._prewrite_cpu_done)

    def _prewrite_cpu_done(self, _ev: Event) -> None:
        key = self.keys[self._idx]
        self.prewrites.append(self.system.cluster.kv_write(
            key, self.write_set[key],
            meta={"lock": self.txn.txn_id, "primary": self.primary}))
        self._idx += 1
        self._next_prewrite()

    def _prewritten(self, ev: Event) -> None:
        system = self.system
        if not ev._ok:
            self._participant_abort()
            return
        self.commit_ts = system.oracle.next()
        if system.history is not None:
            # Shadow-stamp at commit_ts allocation, not at install: the
            # prewritten value is already reader-visible, and writers are
            # latch-excluded until the install completes, so this is the
            # point where reads of the new value become attributable.
            system._hist_clock += 1
            stamp = system._hist_clock
            self.txn.write_versions = dict.fromkeys(self.keys, stamp)
            for key in self.keys:
                system._hist_versions[key] = stamp
            for reads, key, seen in system._hist_pending.pop(
                    self.txn.txn_id, ()):
                if self.write_set.get(key) == seen:
                    reads[key] = stamp
        primary_node = system.cluster.leader_node(self.primary)
        cpu = system.cluster.store_threads[primary_node.name].serve_event(
            system.costs.percolator_commit_cpu)
        cpu.callbacks.append(self._commit_cpu_done)

    def _commit_cpu_done(self, _ev: Event) -> None:
        ev = self.system.cluster.kv_write(
            self.primary, self.write_set[self.primary],
            meta={"commit_ts": self.commit_ts, "primary": True})
        subscribe(ev, self._primary_committed)

    def _primary_committed(self, ev: Event) -> None:
        system = self.system
        txn = self.txn
        if not ev._ok:
            self._participant_abort()
            return
        system.pstore.commit(txn.txn_id, self.write_set, self.commit_ts)
        txn.commit_version = self.commit_ts
        # Secondary commit records are written asynchronously.
        for key in self.keys[1:]:
            system.cluster.kv_write(key, self.write_set[key],
                                    meta={"commit_ts": self.commit_ts})
        txn.mark_committed()
        self._cleanup()
        self._after_attempt(True)

    def _participant_abort(self) -> None:
        """A 2PC participant died mid-flight: abort cleanly, once."""
        self.txn.mark_aborted(AbortReason.COORDINATOR_ABORT)
        self._cleanup()
        self._after_attempt(False)

    def _cleanup(self) -> None:
        grants, self.grants = self.grants, []
        for latch, req in grants:
            latch.release(req)
        self.system.pstore.rollback(self.txn.txn_id, self.keys)

    # -- retry loop + response ---------------------------------------------

    def _after_attempt(self, committed: bool) -> None:
        system = self.system
        txn = self.txn
        if committed or txn.abort_reason is AbortReason.LOGIC:
            self._respond()
            return
        self.attempts += 1
        if system.instant_abort or self.attempts > system.retry_limit:
            self._respond()
            return
        # TiDB auto-retry with backoff (burns coordinator time)
        system.retries += 1
        txn.read_set.clear()
        txn.write_set.clear()
        timer = system.env.timeout(system.costs.tidb_retry_backoff)
        timer.callbacks.append(self._retry)

    def _retry(self, _ev: Event) -> None:
        self._attempt_begin()

    def _respond(self) -> None:
        system = self.system
        ev = self.server.nic_out.serve_event(
            system.costs.net_send_overhead + system.costs.transfer_time(128))
        ev.callbacks.append(self._responded)

    def _responded(self, _ev: Event) -> None:
        timer = self.system.env.timeout(self.system.costs.net_latency)
        timer.callbacks.append(self._finish)

    def _finish(self, _ev: Event) -> None:
        history = self.system.history
        if history is not None:
            if self._hist_reads is not None:
                # Validation is done; hand the checker the shadow-clock
                # read versions instead of the raw mixed-clock ones.
                self.txn.read_set = self._hist_reads
            history.observe(self.txn)
        self.done.succeed(self.txn)


class TiDBSystem(TransactionalSystem):
    name = "tidb"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None,
                 tidb_servers: Optional[int] = None,
                 tikv_nodes: Optional[int] = None,
                 retry_limit: int = 3,
                 instant_abort: bool = False):
        super().__init__(env, config)
        n = self.config.num_nodes
        self.num_servers = tidb_servers if tidb_servers is not None else n
        self.num_tikv = tikv_nodes if tikv_nodes is not None else n
        self.servers = self._new_nodes(self.num_servers, "tidb")
        self.pd_node = self._new_node("pd")
        self.cluster = TikvCluster(self, self.num_tikv)
        self.oracle = TimestampOracle()
        self.pstore = PercolatorStore(self.cluster.state)
        self.retry_limit = retry_limit
        # When True, a write-write conflict aborts without the latch-held
        # lock-resolution delay and without retries — the "instantly
        # aborts once detecting a conflict" regime of Section 5.5's
        # sharded deployment (Fig. 14).  The default (False) models the
        # full-replication deployment whose latch contention produces the
        # Fig. 9 collapse.
        self.instant_abort = instant_abort
        # TiKV scheduler latches: per-key FIFO, held across prewrite+commit.
        self._latches: dict[str, Resource] = {}
        self.prewrite_conflicts = 0
        self.retries = 0
        # Isolation spectrum (extras["isolation"]): the percolator runs
        # serializable-grade SI by default; "snapshot" drops the
        # read-version revalidation (write skew admitted), and
        # "read_committed" additionally drops first-committer-wins
        # (lost updates admitted, no conflict-resolution stalls).
        self.isolation = isolation_level(self.config.extras)
        self.history = None
        # History-only shadow clock: ticks once per committed transaction
        # and stamps per-key versions, because the shared store's raw
        # versions mix raft-apply counters with oracle timestamps (fine
        # for CAS-style validation, incoherent as a version *order*).
        self._hist_clock = 0
        self._hist_versions: dict[str, int] = {}
        # Reads that landed in another transaction's prewrite window
        # (value already reader-visible, stamp not yet allocated),
        # keyed by the lock owner; patched when its stamp exists.
        self._hist_pending: dict[int, list] = {}
        if "isolation" in self.config.extras:
            from ..analysis.serializability import HistoryChecker
            self.history = HistoryChecker()

    # -- helpers ------------------------------------------------------------------

    def _latch(self, key: str) -> Resource:
        latch = self._latches.get(key)
        if latch is None:
            latch = Resource(self.env, 1)
            self._latches[key] = latch
        return latch

    def load(self, records: dict[str, bytes]) -> None:
        self.cluster.load(records)
        self.oracle._ts = max(self.oracle._ts, self.cluster._version)

    # -- writes ------------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        _Txn(self, txn, done).start()
        return done

    def submit_gen(self, txn: Transaction) -> Event:
        """Generator-form transaction path, kept for differential testing."""
        done = self.env.event()
        self.spawn(self._do_txn_gen(txn, done), name="tidb-txn")
        return done

    def _do_txn_gen(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        size = 128 + txn.payload_size
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        # SQL layer: protocol + parse + compile (parallel across cores)
        yield server.compute(self.costs.tidb_session_cpu
                             + self.costs.sql_parse
                             + self.costs.sql_compile)
        attempts = 0
        while True:
            committed = yield from self._attempt(txn, server)
            if committed or txn.abort_reason is AbortReason.LOGIC:
                break
            attempts += 1
            if self.instant_abort or attempts > self.retry_limit:
                break
            # TiDB auto-retry with backoff (burns coordinator time)
            self.retries += 1
            txn.read_set.clear()
            txn.write_set.clear()
            yield self.env.timeout(self.costs.tidb_retry_backoff)
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        if self.history is not None:
            self.history.observe(txn)
        done.succeed(txn)

    def _attempt(self, txn: Transaction, server):
        """One snapshot-isolation attempt; returns True when committed."""
        start_ts = self.oracle.next()
        # Read phase: point gets at region leaseholders.
        reads: dict[str, bytes] = {}
        hist_reads: dict[str, int] = {}
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                yield server.compute(self.costs.store_get)
                value, version = yield self.cluster.kv_read_gen(op.key)
                txn.read_set[op.key] = version
                if self.history is not None:
                    hist_reads[op.key] = self._hist_versions.get(op.key, 0)
                    owner = self.pstore.lock_owner(op.key)
                    if owner is not None and owner != txn.txn_id:
                        self._hist_pending.setdefault(owner, []).append(
                            (hist_reads, op.key, value))
                reads[op.key] = value if value is not None else b""
        # Execute logic -> write set.
        write_set: dict[str, bytes] = {}
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                return False
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.write_set = write_set
        if not write_set:
            if (self.isolation != "read_committed"
                    and any(self.pstore.store.version(key) != seen
                            for key, seen in txn.read_set.items())):
                txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                return False
            if self.history is not None:
                txn.read_set = hist_reads
            txn.mark_committed()
            return True
        keys = sorted(write_set)
        primary = keys[0]
        # Acquire scheduler latches in order (held across 2PC).
        grants = []
        for key in keys:
            latch = self._latch(key)
            req = latch.request()
            yield req
            grants.append((latch, req))
        try:
            # Prewrite: conflict check + lock + one consensus write per
            # involved region group (the 2PC prepare).
            try:
                self.pstore.prewrite(
                    txn.txn_id, keys, primary, start_ts,
                    read_versions=txn.read_set
                    if self.isolation == "serializable" else None,
                    first_committer_wins=self.isolation != "read_committed",
                    commit_clock=self.isolation == "snapshot")
            except PrewriteConflict:
                # Contention resolution: the coordinator resolves the
                # blocking lock / consults txn status *while holding the
                # scheduler latches* — hot keys therefore serialize
                # waiting transactions (Section 5.3.1).
                self.prewrite_conflicts += 1
                if not self.instant_abort:
                    yield self.env.timeout(
                        self.costs.tidb_conflict_resolution)
                txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                return False
            prewrites = []
            for key in keys:
                node = self.cluster.leader_node(key)
                yield self.cluster.store_threads[node.name].serve_event(
                    self.costs.percolator_prewrite_cpu)
                prewrites.append(self.cluster.kv_write_gen(
                    key, write_set[key],
                    meta={"lock": txn.txn_id, "primary": primary}))
            yield self.env.all_of(prewrites)
            # Commit: consensus write on the primary's group decides.
            commit_ts = self.oracle.next()
            if self.history is not None:
                self._hist_clock += 1
                stamp = self._hist_clock
                txn.write_versions = dict.fromkeys(keys, stamp)
                for key in keys:
                    self._hist_versions[key] = stamp
                for hreads, key, seen in self._hist_pending.pop(
                        txn.txn_id, ()):
                    if write_set.get(key) == seen:
                        hreads[key] = stamp
            primary_node = self.cluster.leader_node(primary)
            yield self.cluster.store_threads[primary_node.name].serve_event(
                self.costs.percolator_commit_cpu)
            yield self.cluster.kv_write_gen(
                primary, write_set[primary],
                meta={"commit_ts": commit_ts, "primary": True})
            self.pstore.commit(txn.txn_id, write_set, commit_ts)
            txn.commit_version = commit_ts
            if self.history is not None:
                txn.read_set = hist_reads
            # Secondary commit records are written asynchronously.
            for key in keys[1:]:
                self.cluster.kv_write_gen(key, write_set[key],
                                          meta={"commit_ts": commit_ts})
            txn.mark_committed()
            return True
        finally:
            for latch, req in grants:
                latch.release(req)
            self.pstore.rollback(txn.txn_id, keys)

    # -- reads -------------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="tidb-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        phase_start = self.env.now
        yield server.compute(self.costs.sql_parse)
        txn.phases["sql-parse"] = self.env.now - phase_start
        phase_start = self.env.now
        yield server.compute(self.costs.sql_compile)
        txn.phases["sql-compile"] = self.env.now - phase_start
        phase_start = self.env.now
        for op in txn.ops:
            # Coprocessor client work on the TiDB server dominates the
            # measured "Storage-get" (Fig. 8b: 275 us).
            yield server.compute(260e-6)
            yield self.cluster.kv_read(op.key)
        txn.phases["storage-get"] = self.env.now - phase_start
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(64 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
