"""TiDB system model: NewSQL — stateless SQL layer over TiKV + percolator.

Architecture (Section 4.1): Placement Driver (timestamp oracle), TiKV as
the replicated storage, and stateless TiDB servers that parse and
schedule SQL.  Snapshot isolation via the percolator protocol: reads at a
start timestamp, then a two-phase commit over storage (prewrite locks
every written key with one *primary* lock; commit installs the commit
timestamp on the primary first).

Performance mechanics reproduced here:

* concurrency-over-replication: many transactions in flight, each paying
  SQL-layer CPU plus two consensus writes (Figure 8's TiDB bars);
* the primary-record **latch**: held across both consensus writes, so a
  hot key serializes waiting transactions — under Zipf theta=1 the
  coordinator spends its time on contention resolution and throughput
  collapses disproportionately to the abort rate (Figure 9, 5461 -> 173);
* write-write conflicts abort *instantly* at prewrite (TiDB's abort-fast
  behaviour the paper contrasts with Spanner's lock waits, Figure 14);
* multi-shard writes span several region groups: more ops per
  transaction -> more 2PC participants -> more overhead (Figure 10).
"""

from __future__ import annotations

from typing import Optional

from ..concurrency.percolator import (PercolatorStore, PrewriteConflict,
                                      TimestampOracle)
from ..sim.kernel import Environment, Event
from ..sim.resources import Resource
from ..txn.transaction import AbortReason, OpType, Transaction
from .base import SystemConfig, TransactionalSystem
from .tikv import TikvCluster

__all__ = ["TiDBSystem"]


class TiDBSystem(TransactionalSystem):
    name = "tidb"

    def __init__(self, env: Environment, config: Optional[SystemConfig] = None,
                 tidb_servers: Optional[int] = None,
                 tikv_nodes: Optional[int] = None,
                 retry_limit: int = 3,
                 instant_abort: bool = False):
        super().__init__(env, config)
        n = self.config.num_nodes
        self.num_servers = tidb_servers if tidb_servers is not None else n
        self.num_tikv = tikv_nodes if tikv_nodes is not None else n
        self.servers = self._new_nodes(self.num_servers, "tidb")
        self.pd_node = self._new_node("pd")
        self.cluster = TikvCluster(self, self.num_tikv)
        self.oracle = TimestampOracle()
        self.pstore = PercolatorStore(self.cluster.state)
        self.retry_limit = retry_limit
        # When True, a write-write conflict aborts without the latch-held
        # lock-resolution delay and without retries — the "instantly
        # aborts once detecting a conflict" regime of Section 5.5's
        # sharded deployment (Fig. 14).  The default (False) models the
        # full-replication deployment whose latch contention produces the
        # Fig. 9 collapse.
        self.instant_abort = instant_abort
        # TiKV scheduler latches: per-key FIFO, held across prewrite+commit.
        self._latches: dict[str, Resource] = {}
        self.prewrite_conflicts = 0
        self.retries = 0

    # -- helpers ------------------------------------------------------------------

    def _latch(self, key: str) -> Resource:
        latch = self._latches.get(key)
        if latch is None:
            latch = Resource(self.env, 1)
            self._latches[key] = latch
        return latch

    def load(self, records: dict[str, bytes]) -> None:
        self.cluster.load(records)
        self.oracle._ts = max(self.oracle._ts, self.cluster._version)

    # -- writes ------------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_txn(txn, done), name="tidb-txn")
        return done

    def _do_txn(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        size = 128 + txn.payload_size
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(size))
        yield self.env.timeout(self.costs.net_latency)
        # SQL layer: protocol + parse + compile (parallel across cores)
        yield server.compute(self.costs.tidb_session_cpu
                             + self.costs.sql_parse
                             + self.costs.sql_compile)
        attempts = 0
        while True:
            committed = yield from self._attempt(txn, server)
            if committed or txn.abort_reason is AbortReason.LOGIC:
                break
            attempts += 1
            if self.instant_abort or attempts > self.retry_limit:
                break
            # TiDB auto-retry with backoff (burns coordinator time)
            self.retries += 1
            txn.read_set.clear()
            txn.write_set.clear()
            yield self.env.timeout(self.costs.tidb_retry_backoff)
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        done.succeed(txn)

    def _attempt(self, txn: Transaction, server):
        """One snapshot-isolation attempt; returns True when committed."""
        start_ts = self.oracle.next()
        # Read phase: point gets at region leaseholders.
        reads: dict[str, bytes] = {}
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                yield server.compute(self.costs.store_get)
                value, version = yield self.cluster.kv_read(op.key)
                txn.read_set[op.key] = version
                reads[op.key] = value if value is not None else b""
        # Execute logic -> write set.
        write_set: dict[str, bytes] = {}
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                return False
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.write_set = write_set
        if not write_set:
            txn.mark_committed()
            return True
        keys = sorted(write_set)
        primary = keys[0]
        # Acquire scheduler latches in order (held across 2PC).
        grants = []
        for key in keys:
            latch = self._latch(key)
            req = latch.request()
            yield req
            grants.append((latch, req))
        try:
            # Prewrite: conflict check + lock + one consensus write per
            # involved region group (the 2PC prepare).
            try:
                self.pstore.prewrite(txn.txn_id, keys, primary, start_ts,
                                     read_versions=txn.read_set)
            except PrewriteConflict:
                # Contention resolution: the coordinator resolves the
                # blocking lock / consults txn status *while holding the
                # scheduler latches* — hot keys therefore serialize
                # waiting transactions (Section 5.3.1).
                self.prewrite_conflicts += 1
                if not self.instant_abort:
                    yield self.env.timeout(
                        self.costs.tidb_conflict_resolution)
                txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                return False
            groups = {self.cluster.leader_of(k) for k in keys}
            prewrites = []
            for key in keys:
                node = self.cluster.leader_node(key)
                yield self.cluster.store_threads[node.name].serve_event(
                    self.costs.percolator_prewrite_cpu)
                prewrites.append(self.cluster.kv_write(
                    key, write_set[key],
                    meta={"lock": txn.txn_id, "primary": primary}))
            yield self.env.all_of(prewrites)
            # Commit: consensus write on the primary's group decides.
            commit_ts = self.oracle.next()
            primary_node = self.cluster.leader_node(primary)
            yield self.cluster.store_threads[primary_node.name].serve_event(
                self.costs.percolator_commit_cpu)
            yield self.cluster.kv_write(
                primary, write_set[primary],
                meta={"commit_ts": commit_ts, "primary": True})
            self.pstore.commit(txn.txn_id, write_set, commit_ts)
            txn.commit_version = commit_ts
            # Secondary commit records are written asynchronously.
            for key in keys[1:]:
                if self.cluster.leader_of(key) not in groups:
                    continue
                self.cluster.kv_write(key, write_set[key],
                                      meta={"commit_ts": commit_ts})
            txn.mark_committed()
            return True
        finally:
            for latch, req in grants:
                latch.release(req)
            self.pstore.rollback(txn.txn_id, keys)

    # -- reads -------------------------------------------------------------------------

    def submit_query(self, txn: Transaction) -> Event:
        done = self.env.event()
        self.spawn(self._do_query(txn, done), name="tidb-query")
        return done

    def _do_query(self, txn: Transaction, done: Event):
        txn.submitted_at = self.env.now
        server = self._pick_round_robin(self.servers)
        yield self.client_node.nic_out.serve_event(
            self.costs.net_send_overhead + self.costs.transfer_time(128))
        yield self.env.timeout(self.costs.net_latency)
        phase_start = self.env.now
        yield server.compute(self.costs.sql_parse)
        txn.phases["sql-parse"] = self.env.now - phase_start
        phase_start = self.env.now
        yield server.compute(self.costs.sql_compile)
        txn.phases["sql-compile"] = self.env.now - phase_start
        phase_start = self.env.now
        for op in txn.ops:
            # Coprocessor client work on the TiDB server dominates the
            # measured "Storage-get" (Fig. 8b: 275 us).
            yield server.compute(260e-6)
            yield self.cluster.kv_read(op.key)
        txn.phases["storage-get"] = self.env.now - phase_start
        yield server.nic_out.serve_event(
            self.costs.net_send_overhead
            + self.costs.transfer_time(64 + txn.payload_size))
        yield self.env.timeout(self.costs.net_latency)
        txn.mark_committed()
        done.succeed(txn)
