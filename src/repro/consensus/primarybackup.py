"""Primary-backup replication via chain replication (Replex / H-Store row).

The paper's Section 3.1.2 first approach: a dedicated primary orders
writes and synchronizes backups.  Chain replication spreads network cost
evenly along the chain (head -> ... -> tail); writes ack at the tail,
reads are served by the tail.  Simpler and — with small state and no
failures — faster than consensus; but failover is manual (no view change),
which is exactly the contrast the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event
from ..sim.network import Message, Network
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rng import RngRegistry

__all__ = ["ChainReplication"]


@dataclass
class _ChainWrite:
    seq: int
    item: Any
    size: int


class ChainReplication:
    """Head-to-tail chain replication over simulated nodes.

    Already fully wake-driven: ``propose()`` enqueues straight into the
    head's inbox :class:`repro.sim.resources.Store`, whose ``get()``
    wakes the parked relay at the same simulated time — chain
    replication never had a ``batch_window`` poll to remove, which is
    exactly its simplicity appeal versus consensus (Section 3.1.2).
    """

    def __init__(self, env: Environment, nodes: list[Node], network: Network,
                 costs: CostModel = DEFAULT_COSTS,
                 rng: Optional[RngRegistry] = None):
        if not nodes:
            raise ValueError("chain needs at least one node")
        self.env = env
        self.network = network
        self.costs = costs
        self.chain = [n.name for n in nodes]
        self.nodes = {n.name: n for n in nodes}
        self._seq = 0
        self._waiters: dict[int, Event] = {}
        # per-replica apply streams, in chain order
        self.applied: dict[str, Store] = {n.name: Store(env) for n in nodes}
        self.commits = 0
        for node in nodes:
            # Subscribe before any propose() can enqueue a message.
            inbox = node.subscribe("chain")
            env.process(self._relay(node, inbox), name=f"chain:{node.name}")

    @property
    def head(self) -> str:
        return self.chain[0]

    @property
    def tail(self) -> str:
        return self.chain[-1]

    def _next_hop(self, name: str) -> Optional[str]:
        idx = self.chain.index(name)
        return self.chain[idx + 1] if idx + 1 < len(self.chain) else None

    def propose(self, item: Any, size: int = 256) -> Event:
        """Write at the head; the event fires when the tail has applied."""
        ev = self.env.event()
        head = self.nodes[self.head]
        if head.crashed:
            ev.fail(RuntimeError("head crashed; chain reconfiguration "
                                 "requires manual intervention"))
            return ev
        self._seq += 1
        write = _ChainWrite(seq=self._seq, item=item, size=size)
        self._waiters[write.seq] = ev
        head.enqueue(Message(src="client", dst=self.head, kind="chain",
                             payload=write, size=size))
        return ev

    def _relay(self, node: Node, inbox):
        while True:
            msg = yield inbox.get()
            if node.crashed:
                continue
            write: _ChainWrite = msg.payload
            yield node.compute(self.costs.store_put)
            self.applied[node.name].put((write.seq, write.item))
            nxt = self._next_hop(node.name)
            if nxt is not None:
                self.network.send(Message(src=node.name, dst=nxt,
                                          kind="chain", payload=write,
                                          size=write.size))
            else:
                # tail: acknowledge to the client
                self.commits += 1
                waiter = self._waiters.pop(write.seq, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed((write.seq, write.item))

    def read(self, _key: Any = None) -> Event:
        """Linearizable read served by the tail."""
        ev = self.env.event()
        tail = self.nodes[self.tail]
        if tail.crashed:
            ev.fail(RuntimeError("tail crashed"))
            return ev

        def serve():
            yield tail.compute(self.costs.store_get)
            ev.succeed(self.commits)
        self.env.process(serve(), name="chain-read")
        return ev
