"""Proof-of-Work mining — simulated as an exponential race.

A miner with fraction p of the total hash power finds the next block after
an Exp(p / block_interval) delay; the first finder broadcasts and the rest
restart on the new tip.  Two finders within a propagation delay create a
fork; the longest chain wins, so a minority branch is eventually orphaned.
This reproduces PoW's defining performance property for the paper's
analysis: throughput bounded by ``block_size / block_interval`` regardless
of cluster size, plus a fork/orphan rate that grows with propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event
from ..sim.network import Message, Network
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rng import RngRegistry

__all__ = ["PowConfig", "PowMiner", "PowNetwork"]


@dataclass
class PowConfig:
    block_interval: float = 10.0      # expected time between blocks
    max_block_txns: int = 500
    confirmations: int = 1            # blocks buried before "committed"


@dataclass
class _PowBlock:
    height: int
    parent: tuple
    miner: str
    items: list
    block_id: tuple = field(default=None)

    def __post_init__(self):
        if self.block_id is None:
            self.block_id = (self.height, self.miner, id(self))


class PowMiner:
    """One mining node."""

    def __init__(self, env: Environment, node: Node, peers: list[str],
                 network: Network, hash_share: float,
                 config: PowConfig, costs: CostModel = DEFAULT_COSTS,
                 rng: Optional[RngRegistry] = None,
                 shared_mempool: Optional[list] = None):
        self.env = env
        self.node = node
        self.name = node.name
        self.others = [p for p in peers if p != node.name]
        self.network = network
        self.hash_share = hash_share
        self.config = config
        self.costs = costs
        self.rng = (rng or RngRegistry(0)).stream(f"pow:{self.name}")

        genesis = _PowBlock(height=0, parent=None, miner="genesis", items=[],
                            block_id=(0, "genesis", 0))
        self.blocks: dict[tuple, _PowBlock] = {genesis.block_id: genesis}
        self.tip: _PowBlock = genesis
        # The mempool is gossiped network-wide in real PoW systems; miners
        # share one pool so any winner includes pending transactions.
        self.mempool: list[tuple[Any, Event]] = (
            shared_mempool if shared_mempool is not None else [])
        self.applied: Store = Store(env)
        self._applied_height = 0
        self.blocks_mined = 0
        self.forks_seen = 0

        self.inbox = node.subscribe("pow")
        self._mining_epoch = 0
        env.process(self._receiver(), name=f"pow-recv:{self.name}")
        env.process(self._mine(), name=f"pow-mine:{self.name}")

    def propose(self, item: Any, size: int = 256) -> Event:
        """Add ``item`` to the mempool; fires once buried by confirmations."""
        ev = self.env.event()
        self.mempool.append((item, ev))
        return ev

    # -- mining -------------------------------------------------------------

    def _mine(self):
        while True:
            mean = self.config.block_interval / max(self.hash_share, 1e-9)
            delay = self.rng.expovariate(1.0 / mean)
            yield self.env.timeout(delay)
            if self.node.crashed:
                continue
            # By memorylessness, a solve firing now is a valid solve for
            # whatever tip is current — no need to restart the draw when
            # the tip changed mid-sleep (restarting would stretch the
            # effective block interval).
            self._found_block()

    def _found_block(self) -> None:
        taken = self.mempool[:self.config.max_block_txns]
        del self.mempool[:len(taken)]
        block = _PowBlock(
            height=self.tip.height + 1,
            parent=self.tip.block_id,
            miner=self.name,
            items=[(item, ev) for item, ev in taken],
        )
        self.blocks_mined += 1
        self._adopt(block)
        wire = _PowBlock(block.height, block.parent, block.miner,
                         [item for item, _ev in taken], block.block_id)
        for peer in self.others:
            self.network.send(Message(
                src=self.name, dst=peer, kind="pow",
                payload=wire, size=512 + 300 * len(taken)))

    def _receiver(self):
        while True:
            msg = yield self.inbox.get()
            if self.node.crashed:
                continue
            block: _PowBlock = msg.payload
            if block.block_id in self.blocks:
                continue
            local = _PowBlock(block.height, block.parent, block.miner,
                              [(item, None) for item in block.items],
                              block.block_id)
            if local.height <= self.tip.height:
                self.forks_seen += 1
            self._adopt(local)

    def _adopt(self, block: _PowBlock) -> None:
        self.blocks[block.block_id] = block
        # Longest-chain rule.
        if block.height > self.tip.height:
            self.tip = block
            self._mining_epoch += 1
            self._confirm()

    def _confirm(self) -> None:
        """Mark blocks buried by ``confirmations`` as final."""
        target = self.tip.height - self.config.confirmations
        chain = self._chain_to(self.tip)
        while self._applied_height < target:
            self._applied_height += 1
            block = chain.get(self._applied_height)
            if block is None:
                continue
            items = []
            for item, ev in block.items:
                items.append(item)
                if ev is not None and not ev.triggered:
                    ev.succeed((block.height, item))
            self.applied.put((block.height, items))

    def _chain_to(self, tip: _PowBlock) -> dict[int, _PowBlock]:
        chain = {}
        block = tip
        while block is not None and block.parent is not None:
            chain[block.height] = block
            block = self.blocks.get(block.parent)
        return chain

    def main_chain_length(self) -> int:
        return self.tip.height


class PowNetwork:
    """A set of miners with equal (or given) hash-power shares."""

    def __init__(self, env: Environment, nodes: list[Node], network: Network,
                 config: Optional[PowConfig] = None,
                 costs: CostModel = DEFAULT_COSTS,
                 rng: Optional[RngRegistry] = None,
                 shares: Optional[list[float]] = None):
        config = config or PowConfig()
        names = [n.name for n in nodes]
        if shares is None:
            shares = [1.0 / len(nodes)] * len(nodes)
        if abs(sum(shares) - 1.0) > 1e-9:
            raise ValueError("hash shares must sum to 1")
        self.shared_mempool: list = []
        self.miners = {
            node.name: PowMiner(env, node, names, network, share,
                                config, costs, rng,
                                shared_mempool=self.shared_mempool)
            for node, share in zip(nodes, shares)
        }
        self.env = env

    def propose(self, item: Any, size: int = 256) -> Event:
        """Submit via the first live miner (gossip is instantaneous here)."""
        for miner in self.miners.values():
            if not miner.node.crashed:
                return miner.propose(item, size)
        ev = self.env.event()
        ev.fail(RuntimeError("no live miners"))
        return ev

    def total_forks(self) -> int:
        return sum(m.forks_seen for m in self.miners.values())
