"""Consensus and replication protocols over the simulated network."""

from .base import (FailureModel, LogEntry, NetworkModel,
                   max_tolerated_failures, quorum_size, replicas_required)
from .ibft import IbftConfig, IbftGroup, IbftReplica
from .pbft import PbftConfig, PbftGroup, PbftReplica
from .pow import PowConfig, PowMiner, PowNetwork
from .primarybackup import ChainReplication
from .raft import NotLeader, RaftConfig, RaftGroup, RaftReplica
from .sharedlog import OrderingService, SharedLogConfig
from .tendermint import TendermintConfig, TendermintGroup, TendermintReplica

__all__ = [
    "ChainReplication",
    "FailureModel",
    "IbftConfig",
    "IbftGroup",
    "IbftReplica",
    "LogEntry",
    "NetworkModel",
    "NotLeader",
    "OrderingService",
    "PbftConfig",
    "PbftGroup",
    "PbftReplica",
    "PowConfig",
    "PowMiner",
    "PowNetwork",
    "RaftConfig",
    "RaftGroup",
    "RaftReplica",
    "SharedLogConfig",
    "TendermintConfig",
    "TendermintGroup",
    "TendermintReplica",
]
