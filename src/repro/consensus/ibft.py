"""Istanbul BFT (Quorum's BFT protocol).

IBFT shares PBFT's three-phase core but is optimized for blockchains
(Section 5.2.3): consensus metadata is embedded in the ledger (saving the
PBFT checkpointing traffic), validators can change dynamically, and
proposals are *blocks* produced at a fixed interval.  We model it as a
PBFT subclass with block-interval pacing, no checkpoint traffic, and a
round-change (view-change) sensitivity that grows with quorum size — the
source of the larger throughput variance the paper observes at high f
(Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment
from ..sim.network import Network
from ..sim.node import Node
from ..sim.rng import RngRegistry
from .pbft import PbftConfig, PbftGroup, PbftReplica

__all__ = ["IbftConfig", "IbftReplica", "IbftGroup"]


@dataclass
class IbftConfig(PbftConfig):
    """IBFT adds block pacing and round-change sensitivity."""

    block_interval: float = 0.05
    round_timeout: float = 0.25
    message_kind: str = "ibft"

    def __post_init__(self):
        # Blocks are cut on the interval, not on a small batch window.
        self.batch_window = self.block_interval
        self.max_batch = 2048


class IbftReplica(PbftReplica):
    """PBFT replica with IBFT block pacing.

    Round-change behaviour: when the prepare quorum for a block straggles
    past ``round_timeout`` (more likely with larger quorums under network
    jitter), the round restarts after a pause — modelled by the liveness
    timer inherited from PBFT with the tighter IBFT timeout.

    The wake-on-proposal primary loop is inherited from
    :class:`PbftReplica` unchanged: with ``batch_window`` pinned to
    ``block_interval``, an idle IBFT proposer parks on its
    ``WakeableQueue`` and wakes once per heartbeat instead of every
    block interval, while blocks still cut on the identical interval
    grid.
    """

    def __init__(self, env: Environment, node: Node, peers: list[str],
                 network: Network, costs: CostModel = DEFAULT_COSTS,
                 config: Optional[IbftConfig] = None,
                 rng: Optional[RngRegistry] = None):
        super().__init__(env, node, peers, network, costs,
                         config or IbftConfig(), rng)

    # IBFT embeds consensus metadata in the block header: no checkpoint
    # messages.  (PBFT checkpointing is not simulated either, so the
    # difference shows up only in the message-size accounting.)
    BLOCK_HEADER_EXTRA = 0  # vs PBFT's separate checkpoint certificates


class IbftGroup(PbftGroup):
    """An IBFT validator set."""

    def __init__(self, env: Environment, nodes: list[Node], network: Network,
                 costs: CostModel = DEFAULT_COSTS,
                 config: Optional[IbftConfig] = None,
                 rng: Optional[RngRegistry] = None):
        config = config or IbftConfig()
        self.env = env
        names = [n.name for n in nodes]
        self.replicas = {
            n.name: IbftReplica(env, n, names, network, costs, config, rng)
            for n in nodes
        }

    def add_validator(self, node: Node, network: Network,
                      costs: CostModel = DEFAULT_COSTS,
                      config: Optional[IbftConfig] = None,
                      rng: Optional[RngRegistry] = None) -> None:
        """Dynamic validator addition (IBFT supports membership change)."""
        names = [r.name for r in self.replicas.values()] + [node.name]
        for replica in self.replicas.values():
            replica.all_peers = names
            replica.others = [p for p in names if p != replica.name]
            replica.n = len(names)
            replica.f = (replica.n - 1) // 3
        self.replicas[node.name] = IbftReplica(
            self.env, node, names, network, costs, config or IbftConfig(),
            rng)
