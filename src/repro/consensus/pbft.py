"""Practical Byzantine Fault Tolerance (Castro & Liskov) — simulated.

Normal-case three-phase commit (pre-prepare, prepare, commit) with
batching, plus view change on primary failure.  Quorums are 2f+1 out of
N = 3f+1.  Every protocol message carries an authentication cost
(``bft_message_auth``), which — together with the all-to-all prepare and
commit phases — produces the O(N^2) network cost the paper contrasts with
CFT's O(N) (Section 3.1.3).

Byzantine behaviours used by tests: an *equivocating* primary sends
conflicting pre-prepares to different replicas; the protocol's per-digest
quorums must prevent conflicting commits at the same sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event, WakeableQueue
from ..sim.network import Message, Network
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rng import RngRegistry
from .base import wake_batches

__all__ = ["PbftConfig", "PbftReplica", "PbftGroup"]


@dataclass
class PbftConfig:
    """PBFT timing/batching knobs."""

    batch_window: float = 0.01
    max_batch: int = 64
    heartbeat_interval: float = 0.2
    view_change_timeout: float = 2.0
    checkpoint_interval: int = 128  # sequences between checkpoints
    gap_repair_interval: float = 0.5  # state-transfer probe period
    message_kind: str = "pbft"


class PbftReplica:
    """One PBFT replica; the primary of view v is ``peers[v % N]``."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        peers: list[str],
        network: Network,
        costs: CostModel = DEFAULT_COSTS,
        config: Optional[PbftConfig] = None,
        rng: Optional[RngRegistry] = None,
        byzantine_equivocator: bool = False,
    ):
        self.env = env
        self.node = node
        self.name = node.name
        self.all_peers = list(peers)
        self.others = [p for p in peers if p != node.name]
        self.n = len(peers)
        self.f = (self.n - 1) // 3
        self.network = network
        self.costs = costs
        self.config = config or PbftConfig()
        self.rng = (rng or RngRegistry(0)).stream(f"pbft:{self.name}")
        # Byzantine behaviours, all runtime-togglable (checked per batch /
        # per heartbeat) so the chaos injector can switch them on for a
        # scenario window: an equivocating primary sends conflicting
        # pre-prepares, a censoring primary silently drops matching items,
        # a silent primary stops leading entirely (heartbeats included)
        # until the view change votes it out.
        self.byzantine_equivocator = byzantine_equivocator
        self.censor_predicate: Optional[Callable[[Any], bool]] = None
        self.silent = False
        self.censored_count = 0
        self.silenced_count = 0
        # Proposal events a byzantine window swallowed (silenced or
        # censored): a real byzantine primary never answers these, so
        # they hang until the view change evicts it — _enter_view then
        # fails them and the clients re-submit to the new primary.
        self._swallowed: list[Event] = []

        self.view = 0
        self.next_seq = 1            # primary's sequence allocator
        self.executed_seq = 0        # highest contiguously executed sequence
        self._batches: dict[int, dict] = {}      # seq -> batch record
        self._prepares: dict[tuple, set[str]] = {}
        self._commits: dict[tuple, set[str]] = {}
        self._committed: dict[int, Any] = {}     # seq -> items awaiting exec
        self._pending_events: dict[int, list[Event]] = {}
        self._proposal_queue: WakeableQueue = WakeableQueue(env)
        self._view_changes: dict[int, set[str]] = {}
        self._history: dict[int, Any] = {}   # executed seq -> items
        self._last_preprepare = env.now

        self.applied: Store = Store(env)
        self.inbox = node.subscribe(self.config.message_kind)
        self.commits_count = 0
        self.view_changes_count = 0

        env.process(self._receiver(), name=f"pbft-recv:{self.name}")
        env.process(self._liveness_timer(), name=f"pbft-timer:{self.name}")
        env.process(self._gap_repair_timer(),
                    name=f"pbft-repair:{self.name}")
        if self.is_primary:
            env.process(self._primary_loop(self.view),
                        name=f"pbft-primary:{self.name}")
        node.on_recover.append(self._on_restart)

    def _on_restart(self) -> None:
        """Node restart hook: restart with a fresh liveness window.

        Protocol state (executed history, view) is durable; the liveness
        clock is not — without the reset a replica down longer than the
        view-change timeout would immediately vote against a healthy
        primary on its first post-restart tick.  A restarted primary's
        parked loop resumes by itself if the view hasn't moved on.
        """
        self._last_preprepare = self.env.now

    # -- roles -----------------------------------------------------------------

    @property
    def quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def primary_name(self) -> str:
        return self.all_peers[self.view % self.n]

    @property
    def is_primary(self) -> bool:
        return self.primary_name == self.name

    def _send(self, dst: str, mtype: str, payload: dict, size: int = 160) -> None:
        self.network.send(Message(
            src=self.name, dst=dst, kind=self.config.message_kind,
            payload={"type": mtype, "view": self.view, **payload}, size=size))

    def _broadcast(self, mtype: str, payload: dict, size: int = 160) -> None:
        for peer in self.others:
            self._send(peer, mtype, payload, size)

    # -- client API ---------------------------------------------------------------

    def propose(self, item: Any, size: int = 256) -> Event:
        """Queue ``item`` for ordering (primary only).

        The put wakes a primary loop parked on the proposal queue at the
        same simulated time (wake-on-proposal — no polling delay).
        """
        ev = self.env.event()
        if not self.is_primary or self.node.crashed:
            ev.fail(RuntimeError(f"not primary (primary={self.primary_name})"))
            return ev
        self._proposal_queue.put((item, size, ev))
        return ev

    def release_stranded(self) -> int:
        """Fail every proposal a byzantine window swallowed.

        Censorship is invisible to the liveness timers (the primary
        keeps heartbeating), so no view change ever rescues these; the
        chaos injector calls this when the window closes, modelling the
        clients' own timeout-and-resubmit path.
        """
        stranded, self._swallowed = self._swallowed, []
        failed = 0
        for ev in stranded:
            if not ev.triggered:
                ev.fail(RuntimeError("proposal swallowed by byzantine "
                                     "primary; resubmit"))
                failed += 1
        return failed

    # -- primary ---------------------------------------------------------------------

    def _primary_loop(self, view: int):
        last_beat = self.env.now
        config = self.config

        def still_primary() -> bool:
            # The polling loop's mid-window liveness check deliberately
            # omitted is_primary (a same-view membership change hands
            # off at the loop top, not mid-batch).
            return self.view == view and not self.node.crashed

        def send_heartbeat() -> None:
            if self.silent:
                return  # silent leader: followers see a dead primary
            self._broadcast("heartbeat", {}, size=96)

        while (self.view == view and self.is_primary
               and not self.node.crashed):
            # One batch window per iteration, closed on the accumulated
            # grid of the old polling loop; parked while idle (see
            # consensus.base.wake_batches for the full contract).
            batch, last_beat = yield from wake_batches(
                self.env, self._proposal_queue, config.batch_window,
                config.max_batch, config.heartbeat_interval,
                still_primary, send_heartbeat, last_beat)
            if batch is None:
                break
            if not batch:
                continue
            if self.silent:
                # Proposals vanish into the silent primary; their events
                # never fire and clients time out, until the liveness
                # timers elect the next view.
                self.silenced_count += len(batch)
                self._swallowed.extend(ev for _i, _s, ev in batch)
                continue
            if self.censor_predicate is not None:
                kept = [(i, s, e) for (i, s, e) in batch
                        if not self.censor_predicate(i)]
                self.censored_count += len(batch) - len(kept)
                self._swallowed.extend(
                    ev for (i, _s, ev) in batch if self.censor_predicate(i))
                batch = kept
                if not batch:
                    continue
            seq = self.next_seq
            self.next_seq += 1
            items = [item for item, _size, _ev in batch]
            total_size = 128 + sum(size for _item, size, _ev in batch)
            self._pending_events[seq] = [ev for _i, _s, ev in batch]
            digest = f"d:{view}:{seq}"
            yield self.node.compute(
                self.costs.bft_message_auth * self.n)
            if self.byzantine_equivocator:
                self._equivocate(seq, items, total_size)
            else:
                self._broadcast("pre_prepare", {
                    "seq": seq, "digest": digest, "items": items,
                }, size=total_size)
            self._accept_preprepare(view, seq, digest, items)
            last_beat = self.env.now

    def _equivocate(self, seq: int, items: list, size: int) -> None:
        """Byzantine primary: conflicting pre-prepares to two halves."""
        half = len(self.others) // 2
        for i, peer in enumerate(self.others):
            digest = f"evil-a:{seq}" if i < half else f"evil-b:{seq}"
            sent_items = items if i < half else list(reversed(items))
            self._send(peer, "pre_prepare", {
                "seq": seq, "digest": digest, "items": sent_items,
            }, size=size)

    # -- receive path -------------------------------------------------------------------

    def _receiver(self):
        while True:
            msg = yield self.inbox.get()
            if self.node.crashed:
                continue
            # verify the message authenticator
            yield self.node.compute(self.costs.bft_message_auth)
            payload = msg.payload
            mtype = payload["type"]
            if mtype == "pre_prepare":
                self._on_preprepare(msg.src, payload)
            elif mtype == "prepare":
                self._on_prepare(msg.src, payload)
            elif mtype == "commit":
                self._on_commit(msg.src, payload)
            elif mtype == "heartbeat":
                if payload["view"] >= self.view:
                    self._last_preprepare = self.env.now
            elif mtype == "view_change":
                self._on_view_change(msg.src, payload)
            elif mtype == "new_view":
                self._on_new_view(msg.src, payload)
            elif mtype == "fetch":
                self._on_fetch(msg.src, payload)
            elif mtype == "fetch_reply":
                self._on_fetch_reply(payload)

    def _on_preprepare(self, src: str, payload: dict) -> None:
        view, seq = payload["view"], payload["seq"]
        if view != self.view or src != self.primary_name:
            return
        if seq in self._batches:
            return  # primary equivocation to *us* (only first accepted)
        self._accept_preprepare(view, seq, payload["digest"], payload["items"])

    def _accept_preprepare(self, view: int, seq: int, digest: str,
                           items: list) -> None:
        self._last_preprepare = self.env.now
        self._batches[seq] = {"view": view, "digest": digest, "items": items}
        self._broadcast("prepare", {"seq": seq, "digest": digest}, size=128)
        self._record_prepare(self.name, view, seq, digest)

    def _on_prepare(self, src: str, payload: dict) -> None:
        if payload["view"] != self.view:
            return
        self._record_prepare(src, payload["view"], payload["seq"],
                             payload["digest"])

    def _record_prepare(self, src: str, view: int, seq: int,
                        digest: str) -> None:
        key = (view, seq, digest)
        votes = self._prepares.setdefault(key, set())
        votes.add(src)
        batch = self._batches.get(seq)
        if batch is None or batch["digest"] != digest:
            return
        if len(votes) >= self.quorum and not batch.get("prepared"):
            batch["prepared"] = True
            self._broadcast("commit", {"seq": seq, "digest": digest}, size=128)
            self._record_commit(self.name, view, seq, digest)

    def _on_commit(self, src: str, payload: dict) -> None:
        if payload["view"] != self.view:
            return
        self._record_commit(src, payload["view"], payload["seq"],
                            payload["digest"])

    def _record_commit(self, src: str, view: int, seq: int,
                       digest: str) -> None:
        key = (view, seq, digest)
        votes = self._commits.setdefault(key, set())
        votes.add(src)
        batch = self._batches.get(seq)
        if batch is None or batch["digest"] != digest:
            return
        if len(votes) >= self.quorum and not batch.get("committed"):
            batch["committed"] = True
            self._committed[seq] = batch["items"]
            self._execute_ready()

    def _execute_ready(self) -> None:
        while self.executed_seq + 1 in self._committed:
            seq = self.executed_seq + 1
            items = self._committed.pop(seq)
            self.executed_seq = seq
            self._history[seq] = items
            self.commits_count += 1
            self.applied.put((seq, items))
            for ev in self._pending_events.pop(seq, []):
                if not ev.triggered:
                    ev.succeed((seq, items))

    # -- gap repair (state transfer) -----------------------------------------

    def _gap_repair_timer(self):
        """Recover lost batches: if a sequence gap persists (messages for
        it were dropped), fetch the executed history from a peer — the
        role PBFT checkpointing/state transfer plays."""
        while True:
            yield self.env.timeout(self.config.gap_repair_interval)
            if self.node.crashed:
                continue
            stuck = (self._committed
                     and min(self._committed) > self.executed_seq + 1)
            if stuck or self._committed:
                peer = self.rng.choice(self.others)
                self._send(peer, "fetch", {"after": self.executed_seq},
                           size=96)

    def _on_fetch(self, src: str, payload: dict) -> None:
        after = payload["after"]
        batches = [(seq, self._history[seq])
                   for seq in range(after + 1,
                                    min(self.executed_seq,
                                        after + 64) + 1)
                   if seq in self._history]
        if batches:
            self._send(src, "fetch_reply", {"batches": batches},
                       size=256 * len(batches))

    def _on_fetch_reply(self, payload: dict) -> None:
        # Batches come from an executed prefix; in full PBFT they carry a
        # checkpoint proof — here the simulated peer is honest-or-crashed
        # for CFT-style tests, and equivocation tests never reach repair.
        for seq, items in payload["batches"]:
            if seq > self.executed_seq and seq not in self._committed:
                self._committed[seq] = items
        self._execute_ready()

    # -- view change --------------------------------------------------------------------

    def _liveness_timer(self):
        while True:
            yield self.env.timeout(self.config.view_change_timeout)
            if self.node.crashed or self.is_primary:
                continue
            if (self.env.now - self._last_preprepare
                    >= self.config.view_change_timeout):
                self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        self.view_changes_count += 1
        self._broadcast("view_change",
                        {"new_view": new_view,
                         "executed": self.executed_seq}, size=256)
        self._record_view_change(self.name, new_view)

    def _on_view_change(self, src: str, payload: dict) -> None:
        self._record_view_change(src, payload["new_view"])

    def _record_view_change(self, src: str, new_view: int) -> None:
        if new_view <= self.view:
            return
        votes = self._view_changes.setdefault(new_view, set())
        votes.add(src)
        if (len(votes) >= self.quorum
                and self.all_peers[new_view % self.n] == self.name):
            self._enter_view(new_view)
            self._broadcast("new_view", {"new_view": new_view}, size=256)

    def _on_new_view(self, src: str, payload: dict) -> None:
        new_view = payload["new_view"]
        if new_view > self.view and self.all_peers[new_view % self.n] == src:
            self._enter_view(new_view)

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        self._last_preprepare = self.env.now
        # Uncommitted batches from earlier views are abandoned; clients of a
        # real PBFT re-submit. Sequence numbering continues after the
        # highest executed sequence.
        self.next_seq = self.executed_seq + 1
        for seq in list(self._batches):
            if seq > self.executed_seq:
                del self._batches[seq]
        # Proposals stranded at the deposed primary fail loudly so their
        # clients re-submit to the new view — without this, a
        # single-outstanding-propose client (quorum's block producer,
        # wedged behind a silent or censoring primary) parks forever.
        # Three strand points: still queued, swallowed by a byzantine
        # window, or batched into a sequence the view change abandoned.
        stranded = [ev for _item, _size, ev in self._proposal_queue.drain()]
        stranded.extend(self._swallowed)
        self._swallowed = []
        for seq in list(self._pending_events):
            if seq > self.executed_seq:
                stranded.extend(self._pending_events.pop(seq))
        for ev in stranded:
            if not ev.triggered:
                ev.fail(RuntimeError(
                    f"view changed to {new_view}; resubmit"))
        if self.is_primary:
            self.env.process(self._primary_loop(new_view),
                             name=f"pbft-primary:{self.name}")


class PbftGroup:
    """A PBFT cluster with client-side primary tracking."""

    def __init__(
        self,
        env: Environment,
        nodes: list[Node],
        network: Network,
        costs: CostModel = DEFAULT_COSTS,
        config: Optional[PbftConfig] = None,
        rng: Optional[RngRegistry] = None,
        byzantine: Optional[set[str]] = None,
    ):
        self.env = env
        names = [n.name for n in nodes]
        byzantine = byzantine or set()
        self.replicas: dict[str, PbftReplica] = {
            n.name: PbftReplica(
                env, n, names, network, costs, config, rng,
                byzantine_equivocator=n.name in byzantine)
            for n in nodes
        }

    @property
    def primary(self) -> Optional[PbftReplica]:
        views = max(r.view for r in self.replicas.values()
                    if not r.node.crashed)
        for replica in self.replicas.values():
            if replica.view == views and replica.is_primary \
                    and not replica.node.crashed:
                return replica
        return None

    def propose(self, item: Any, size: int = 256) -> Event:
        primary = self.primary
        if primary is None:
            ev = self.env.event()
            ev.fail(RuntimeError("no live primary"))
            return ev
        return primary.propose(item, size)

    def executed_sequences(self) -> dict[str, int]:
        return {name: r.executed_seq for name, r in self.replicas.items()}
