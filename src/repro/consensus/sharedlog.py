"""Shared-log ordering service (Kafka / Fabric ordering service / Corfu).

The paper's Section 3.1.2 third replication approach: ordering is
decoupled from state replication.  A small, fixed group of orderer nodes
(3 in the paper's Fabric setup) sequences appended items with an internal
Raft instance and *cuts blocks* by count or timeout; consumer nodes
subscribe and receive the block stream.  Because consumers don't
participate in ordering, ordering throughput stays constant as consumers
scale — until delivery fan-out saturates the orderer egress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event
from ..sim.network import Message, Network
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rng import RngRegistry
from .raft import RaftConfig, RaftGroup

__all__ = ["SharedLogConfig", "OrderingService"]


@dataclass
class SharedLogConfig:
    """Block-cut policy (Fabric: BatchSize / BatchTimeout)."""

    block_max_items: int = 100
    block_timeout: float = 0.7       # Fig. 8a: order phase ~700 ms unsaturated
    raft: Optional[RaftConfig] = None


class OrderingService:
    """A Raft-backed ordering service with block cutting and delivery."""

    def __init__(
        self,
        env: Environment,
        orderer_nodes: list[Node],
        network: Network,
        costs: CostModel = DEFAULT_COSTS,
        config: Optional[SharedLogConfig] = None,
        rng: Optional[RngRegistry] = None,
    ):
        self.env = env
        self.network = network
        self.costs = costs
        self.config = config or SharedLogConfig()
        self.orderer_nodes = orderer_nodes
        raft_config = self.config.raft or RaftConfig(
            batch_window=0.002, max_batch=256)
        self.raft = RaftGroup(env, orderer_nodes, network, costs,
                              raft_config, rng)
        self.subscribers: list[str] = []
        # Local block streams for co-located consumers/tests.
        self.block_streams: list[Store] = []
        self.blocks_cut = 0
        self.items_ordered = 0
        self._cut_queue: list[tuple[Any, int]] = []
        self._block_number = 0
        env.process(self._cutter(), name="orderer-cutter")

    # -- producers ------------------------------------------------------------

    def append(self, item: Any, size: int = 256) -> Event:
        """Order ``item``; the event fires when it is sequenced (not yet
        delivered)."""
        return self.raft.propose(item, size)

    # -- consumers ---------------------------------------------------------------

    def subscribe_node(self, node_name: str) -> None:
        """Deliver future blocks to ``node_name`` via 'deliver' messages."""
        self.subscribers.append(node_name)

    def subscribe_local(self) -> Store:
        """In-process block stream (no network hop); used by tests."""
        stream = Store(self.env)
        self.block_streams.append(stream)
        return stream

    # -- block cutting -------------------------------------------------------------

    def _cutter(self):
        """Consume the ordered stream; cut blocks by count or timeout.

        A single consumer appends to the pending batch; a cancellable
        timer per batch enforces the block timeout.  Cutting by count
        first withdraws the timer through its generation-checked
        :class:`repro.sim.kernel.CancelToken`, so the pooled timeout can
        be recycled without a stale handle ever cancelling the next
        batch's (unrelated) timer.
        """
        leader_name = self.orderer_nodes[0].name
        applied = self.raft.replicas[leader_name].applied
        self._pending: list[Any] = []
        self._cut_token = None
        while True:
            _index, item = yield applied.get()
            self._pending.append(item)
            self.items_ordered += 1
            if len(self._pending) == 1:
                timer = self.env.timeout(self.config.block_timeout)
                timer.callbacks.append(self._timeout_cut)
                self._cut_token = timer.token()
            if len(self._pending) >= self.config.block_max_items:
                self._cut_pending()

    def _timeout_cut(self, _timer) -> None:
        if self._pending:
            self._cut_pending()

    def _cut_pending(self) -> None:
        token, self._cut_token = self._cut_token, None
        if token is not None:
            token.cancel()
        batch, self._pending = self._pending, []
        self._cut(batch)

    def _cut(self, items: list[Any]) -> None:
        self.blocks_cut += 1
        block = {"number": self._block_number, "items": list(items)}
        self._block_number += 1
        size = 256 + sum(getattr(i, "wire_size", 512) for i in items)
        leader = self.orderer_nodes[0].name
        for stream in self.block_streams:
            stream.put(block)
        for subscriber in self.subscribers:
            self.network.send(Message(
                src=leader, dst=subscriber, kind="deliver",
                payload=block, size=size))
