"""Raft consensus (Ongaro & Ousterhout) over the simulated network.

A faithful normal-case and failover implementation: randomized election
timeouts, term-checked RequestVote with the up-to-date-log rule, leader
heartbeats, log replication with conflict rollback via next-index probing,
and quorum commit.  Entries are *batched* (etcd-style): the leader
accumulates proposals for a short window or until ``max_batch`` and ships
one AppendEntries per follower per batch — the per-follower egress cost is
what makes leader throughput decline with group size (Table 4, etcd row).

Performance note: replicas expose an ``applied`` store; systems consume it
to apply entries to their state machines, charging their own apply costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event, WakeableQueue, subscribe
from ..sim.network import Message, Network
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rng import RngRegistry
from .base import LogEntry, wake_batches

__all__ = ["RaftConfig", "RaftReplica", "RaftGroup"]

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


@dataclass
class RaftConfig:
    """Tunable Raft timing parameters (simulated seconds)."""

    heartbeat_interval: float = 0.1
    election_timeout_min: float = 1.0
    election_timeout_max: float = 2.0
    batch_window: float = 0.001
    max_batch: int = 64
    entry_overhead: int = 48
    message_kind: str = "raft"


@dataclass
class _Pending:
    entry: LogEntry
    event: Event


class _Receiver:
    """A replica's message pump as a perpetual flat chain.

    One parked callback on ``inbox.get()`` and one on the receive-CPU
    serve per message, then the synchronous protocol dispatch — the
    identical wait sequence the old ``_receiver`` coroutine issued.  At
    five nodes per group the receivers were the largest remaining
    ``Process._resume`` source on the DB-side BENCH points (two resumes
    per message, every message, every replica).
    """

    __slots__ = ("replica", "msg")

    def __init__(self, replica: "RaftReplica"):
        self.replica = replica
        self.msg = None

    def start(self) -> None:
        self.replica.env._schedule_call(self._next, None)

    def _next(self, _arg) -> None:
        subscribe(self.replica.inbox.get(), self._got)

    def _got(self, ev: Event) -> None:
        replica = self.replica
        if replica.node.crashed:
            self._next(None)
            return
        self.msg = ev._value
        serve = replica.node.compute(replica.costs.net_recv_overhead)
        serve.callbacks.append(self._handle)

    def _handle(self, _ev: Event) -> None:
        self.replica._on_message(self.msg)
        self._next(None)


class RaftReplica:
    """One Raft participant running on a simulated node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        peers: list[str],
        network: Network,
        costs: CostModel = DEFAULT_COSTS,
        config: Optional[RaftConfig] = None,
        rng: Optional[RngRegistry] = None,
    ):
        self.env = env
        self.node = node
        self.name = node.name
        self.peers = [p for p in peers if p != node.name]
        self.cluster_size = len(peers)
        self.network = network
        self.costs = costs
        self.config = config or RaftConfig()
        self.rng = (rng or RngRegistry(0)).stream(f"raft:{self.name}")

        self.role = FOLLOWER
        self.term = 0
        self.voted_for: Optional[str] = None
        self.log: list[LogEntry] = []
        self.commit_index = 0  # 1-based count of committed entries
        self.last_applied = 0
        self.leader_hint: Optional[str] = None

        # leader state
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._pending: dict[int, _Pending] = {}  # log index -> waiter
        self._proposal_queue: WakeableQueue = WakeableQueue(env)

        # follower liveness
        self._last_heartbeat = env.now

        # apply stream consumed by the hosting system
        self.applied: Store = Store(env)

        self.inbox = node.subscribe(self.config.message_kind)
        self.commits = 0
        self.elections_started = 0
        self.on_leader_change: Optional[Callable[[str], None]] = None

        _Receiver(self).start()
        env.process(self._election_timer(), name=f"raft-timer:{self.name}")
        node.on_recover.append(self._on_restart)

    def _on_restart(self) -> None:
        """Node restart hook (:attr:`repro.sim.node.Node.on_recover`).

        Durable Raft state (log, term, vote) survives — the protocol's
        own WAL persists it — but leadership is volatile: a restarted
        replica comes back as a follower with a fresh liveness window,
        and proposals queued pre-crash belonged to client sessions that
        died with the process.  In-flight ``_pending`` waiters are left
        to resolve (or hang for the driver's timeout) exactly as after a
        :meth:`_step_down`.
        """
        self.role = FOLLOWER
        self._last_heartbeat = self.env.now
        for pending in self._proposal_queue.drain():
            if not pending.event.triggered:
                pending.event.fail(NotLeader(None))

    # -- helpers -----------------------------------------------------------

    @property
    def quorum(self) -> int:
        return self.cluster_size // 2 + 1

    def _last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def _send(self, dst: str, kind: str, payload: dict, size: int = 128) -> None:
        self.network.send(Message(
            src=self.name, dst=dst, kind=self.config.message_kind,
            payload={"type": kind, **payload}, size=size))

    def _election_timeout(self) -> float:
        lo = self.config.election_timeout_min
        hi = self.config.election_timeout_max
        return self.rng.uniform(lo, hi)

    # -- client API ----------------------------------------------------------

    def propose(self, item: Any, size: int = 256) -> Event:
        """Propose ``item``; the event fires with (index, item) at commit.

        Fails with ``NotLeader`` if this replica isn't the leader.  The
        put wakes a leader loop parked on the proposal queue at the same
        simulated time (wake-on-proposal — no polling delay).
        """
        ev = self.env.event()
        if self.role != LEADER or self.node.crashed:
            ev.fail(NotLeader(self.leader_hint))
            return ev
        entry = LogEntry(term=self.term, item=item, size=size)
        self._proposal_queue.put(_Pending(entry=entry, event=ev))
        return ev

    # -- receive loop -----------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        """Synchronous protocol dispatch (driven by the _Receiver chain)."""
        payload = msg.payload
        mtype = payload["type"]
        if payload.get("term", 0) > self.term:
            self._step_down(payload["term"])
        if mtype == "request_vote":
            self._on_request_vote(msg.src, payload)
        elif mtype == "vote_reply":
            self._on_vote_reply(msg.src, payload)
        elif mtype == "append_entries":
            self._on_append_entries(msg.src, payload)
        elif mtype == "append_reply":
            self._on_append_reply(msg.src, payload)

    def _step_down(self, term: int) -> None:
        was_leader = self.role == LEADER
        self.term = term
        self.role = FOLLOWER
        self.voted_for = None
        if was_leader:
            for pending in self._proposal_queue.drain():
                if not pending.event.triggered:
                    pending.event.fail(NotLeader(None))
            # in-flight pendings will be resolved if the entry survives in
            # the new leader's log; otherwise they hang and the client
            # driver times out / retries (as etcd clients do).

    # -- elections ----------------------------------------------------------------

    def _election_timer(self):
        while True:
            timeout = self._election_timeout()
            yield self.env.timeout(timeout)
            if self.node.crashed or self.role == LEADER:
                continue
            if self.env.now - self._last_heartbeat >= timeout * 0.99:
                self._start_election()

    def _start_election(self) -> None:
        self.elections_started += 1
        self.role = CANDIDATE
        self.term += 1
        self.voted_for = self.name
        self._votes = {self.name}
        self._last_heartbeat = self.env.now
        for peer in self.peers:
            self._send(peer, "request_vote", {
                "term": self.term,
                "last_log_index": len(self.log),
                "last_log_term": self._last_log_term(),
            })
        if len(self._votes) >= self.quorum:  # single-node cluster
            self._become_leader()

    def _on_request_vote(self, src: str, payload: dict) -> None:
        term = payload["term"]
        grant = False
        if term >= self.term and self.voted_for in (None, src):
            # up-to-date rule: candidate's log must not be behind ours
            my_term, my_len = self._last_log_term(), len(self.log)
            cand_term = payload["last_log_term"]
            cand_len = payload["last_log_index"]
            if (cand_term, cand_len) >= (my_term, my_len):
                grant = True
                self.voted_for = src
                self._last_heartbeat = self.env.now
        self._send(src, "vote_reply", {"term": self.term, "granted": grant})

    def _on_vote_reply(self, src: str, payload: dict) -> None:
        if self.role != CANDIDATE or payload["term"] != self.term:
            return
        if payload["granted"]:
            self._votes.add(src)
            if len(self._votes) >= self.quorum:
                self._become_leader()

    def _become_leader(self) -> None:
        self.role = LEADER
        self.leader_hint = self.name
        self.next_index = {p: len(self.log) + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        if self.on_leader_change is not None:
            self.on_leader_change(self.name)
        self.env.process(self._leader_loop(self.term),
                         name=f"raft-lead:{self.name}")

    # -- leader operation -------------------------------------------------------------

    def _leader_loop(self, term: int):
        # Immediately assert leadership.
        self._broadcast_append(heartbeat=True)
        last_beat = self.env.now
        config = self.config

        def still_leader() -> bool:
            return (self.role == LEADER and self.term == term
                    and not self.node.crashed)

        def send_heartbeat() -> None:
            self._broadcast_append(heartbeat=True)

        while still_leader():
            # One batch window per iteration, closed on the same
            # accumulated time grid the polling loop walked — but parked
            # on the proposal queue, not polled, while idle (see
            # consensus.base.wake_batches for the full contract).
            batch, last_beat = yield from wake_batches(
                self.env, self._proposal_queue, config.batch_window,
                config.max_batch, config.heartbeat_interval,
                still_leader, send_heartbeat, last_beat)
            if batch is None:
                break
            if not batch:
                # Heartbeat wake, or a racing role change drained the
                # queue mid-window.
                continue
            for pending in batch:
                yield self.node.compute(self.costs.raft_propose)
                self.log.append(pending.entry)
                self._pending[len(self.log)] = pending
            # WAL group-commit for the batch
            yield self.node.disk_write(self.costs.wal_sync)
            self._broadcast_append()
            last_beat = self.env.now
            self._maybe_commit()

    def _broadcast_append(self, heartbeat: bool = False) -> None:
        for peer in self.peers:
            self._send_append(peer, heartbeat=heartbeat)

    def _send_append(self, peer: str, heartbeat: bool = False) -> None:
        next_idx = self.next_index.get(peer, len(self.log) + 1)
        prev_index = next_idx - 1
        prev_term = self.log[prev_index - 1].term if prev_index >= 1 and prev_index <= len(self.log) else 0
        entries = [] if heartbeat else self.log[next_idx - 1:]
        size = 96 + sum(self.config.entry_overhead + e.size for e in entries)
        self._send(peer, "append_entries", {
            "term": self.term,
            "prev_index": prev_index,
            "prev_term": prev_term,
            "entries": entries,
            "leader_commit": self.commit_index,
        }, size=size)
        if entries:
            # Pipeline optimistically (etcd-raft style): assume success and
            # ship only new entries next time; a failure reply rolls
            # next_index back via its match hint.
            self.next_index[peer] = prev_index + len(entries) + 1

    def _on_append_entries(self, src: str, payload: dict) -> None:
        term = payload["term"]
        if term < self.term:
            self._send(src, "append_reply",
                       {"term": self.term, "success": False, "match": 0})
            return
        self._last_heartbeat = self.env.now
        self.role = FOLLOWER
        self.leader_hint = src
        prev_index = payload["prev_index"]
        prev_term = payload["prev_term"]
        if prev_index > len(self.log) or (
                prev_index >= 1 and self.log[prev_index - 1].term != prev_term):
            self._send(src, "append_reply",
                       {"term": self.term, "success": False,
                        "match": min(prev_index - 1, len(self.log))})
            return
        entries = payload["entries"]
        # Truncate conflicts and append the new suffix.
        index = prev_index
        for entry in entries:
            index += 1
            if index <= len(self.log):
                if self.log[index - 1].term != entry.term:
                    del self.log[index - 1:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        leader_commit = payload["leader_commit"]
        if leader_commit > self.commit_index:
            self._advance_commit(min(leader_commit, len(self.log)))
        self._send(src, "append_reply",
                   {"term": self.term, "success": True, "match": index})

    def _on_append_reply(self, src: str, payload: dict) -> None:
        if self.role != LEADER or payload["term"] != self.term:
            return
        if payload["success"]:
            self.match_index[src] = max(self.match_index.get(src, 0),
                                        payload["match"])
            # Pipelined sends may already have advanced next_index past
            # this (older) acknowledgment — never move it backwards.
            self.next_index[src] = max(self.next_index.get(src, 1),
                                       self.match_index[src] + 1)
            self._maybe_commit()
        else:
            hint = payload.get("match", 0)
            self.next_index[src] = max(1, min(self.next_index.get(src, 1) - 1,
                                              hint + 1))
            self._send_append(src)

    def _maybe_commit(self) -> None:
        if self.role != LEADER:
            return
        matches = sorted([len(self.log)] + list(self.match_index.values()),
                         reverse=True)
        candidate = matches[self.quorum - 1]
        if candidate > self.commit_index and candidate >= 1 \
                and self.log[candidate - 1].term == self.term:
            self._advance_commit(candidate)
            # Piggy-back the new commit index promptly so followers apply.
            self._broadcast_append(heartbeat=True)

    def _advance_commit(self, new_commit: int) -> None:
        while self.commit_index < new_commit:
            self.commit_index += 1
            idx = self.commit_index
            entry = self.log[idx - 1]
            self.commits += 1
            self.applied.put((idx, entry.item))
            pending = self._pending.pop(idx, None)
            if pending is not None and not pending.event.triggered:
                if pending.entry is entry:
                    pending.event.succeed((idx, entry.item))
                else:
                    pending.event.fail(NotLeader(self.leader_hint))


class NotLeader(Exception):
    """Raised to a proposer that contacted a non-leader replica."""

    def __init__(self, hint: Optional[str]):
        super().__init__(f"not leader (hint: {hint})")
        self.hint = hint


class RaftGroup:
    """A full Raft cluster plus client-side leader tracking."""

    def __init__(
        self,
        env: Environment,
        nodes: list[Node],
        network: Network,
        costs: CostModel = DEFAULT_COSTS,
        config: Optional[RaftConfig] = None,
        rng: Optional[RngRegistry] = None,
        bootstrap_leader: bool = True,
    ):
        self.env = env
        self.network = network
        names = [n.name for n in nodes]
        self.replicas: dict[str, RaftReplica] = {
            n.name: RaftReplica(env, n, names, network, costs, config, rng)
            for n in nodes
        }
        if bootstrap_leader:
            first = self.replicas[names[0]]
            first.term = 1
            first._votes = set(names)
            first._become_leader()

    @property
    def leader(self) -> Optional[RaftReplica]:
        leaders = [r for r in self.replicas.values()
                   if r.role == LEADER and not r.node.crashed]
        if not leaders:
            return None
        return max(leaders, key=lambda r: r.term)

    def propose(self, item: Any, size: int = 256) -> Event:
        """Propose via the current leader (clients track the leader hint)."""
        leader = self.leader
        if leader is None:
            ev = self.env.event()
            ev.fail(NotLeader(None))
            return ev
        return leader.propose(item, size)

    def committed_items(self) -> list[Any]:
        """Committed log prefix of the most advanced replica (for tests)."""
        best = max(self.replicas.values(), key=lambda r: r.commit_index)
        return [e.item for e in best.log[:best.commit_index]]
