"""Common consensus machinery: quorum math, replica bookkeeping.

The paper's Section 3.1.3 failure-model arithmetic lives here:

* CFT, synchronous network:   f + 1 replicas tolerate f failures
* CFT, asynchronous network:  2f + 1  (Raft, Paxos)
* BFT, synchronous network:   2f + 1
* BFT, asynchronous network:  3f + 1  (PBFT, IBFT, Tendermint)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from ..sim.kernel import Environment, WakeableQueue

__all__ = [
    "FailureModel",
    "NetworkModel",
    "replicas_required",
    "max_tolerated_failures",
    "quorum_size",
    "LogEntry",
    "wake_batches",
]


def wake_batches(
    env: Environment,
    queue: WakeableQueue,
    window: float,
    max_batch: int,
    heartbeat_interval: float,
    still_leader: Callable[[], bool],
    send_heartbeat: Callable[[], None],
    last_beat: float,
):
    """One wake-on-proposal batch window; drive with ``yield from``.

    The shared leader-loop state machine for Raft and PBFT/IBFT (the
    only differences between those loops are the liveness predicate and
    the heartbeat message, passed as callables).  Returns
    ``(batch, last_beat)`` where ``batch`` is ``None`` when leadership
    was lost mid-window (caller breaks) and ``[]`` after a pure
    heartbeat wake (caller continues).

    Equivalence contract with the old poll-at-``batch_window`` loop:

    * batches close on the identical accumulated window grid — ``close``
      advances by repeated ``+= window`` exactly as chained
      ``timeout(window)`` wakes did, and :meth:`Environment.timeout_at`
      pins the timer to that float;
    * while idle, the only scheduled wake is the first grid boundary
      where a heartbeat falls due; the skipped boundaries were pure
      no-op wakes in the polling loop;
    * a put that lands exactly *on* a grid boundary closes the batch at
      that boundary (``close == now``), matching the dominant heap-seq
      interleaving of the old loop, where the leader's deferred AnyOf
      resume ran after every same-time put already scheduled.  A put
      scheduled *during* the boundary's own callback cascade — after the
      old loop's resume event was queued — would have just missed the
      old batch; that sub-case requires float-exact grid collisions and
      is not reproduced;
    * a new put reaching ``max_batch`` kicks the window closed at the
      put's simulated time (threshold waiters fire only on puts, so a
      pre-existing backlog does not re-kick — same as the old
      ``_batch_kick``).
    """
    close = env.now + window
    if not queue:
        # Idle: park until the first proposal or the first window
        # boundary where a heartbeat falls due.
        boundary = close
        while boundary - last_beat < heartbeat_interval:
            boundary += window
        wake = queue.wait()
        timer = env.timeout_at(boundary)
        token = timer.token()
        yield env.any_of([wake, timer])
        if not wake.triggered:
            queue.cancel_wait(wake)
        if not still_leader():
            token.cancel()
            return None, last_beat
        if not queue:
            # Heartbeat boundary reached with nothing proposed.
            if env.now - last_beat >= heartbeat_interval:
                send_heartbeat()
                last_beat = env.now
            return [], last_beat
        token.cancel()
        if len(queue) >= max_batch:
            close = env.now        # a same-time burst filled the batch
        else:
            while close < env.now:  # close at the boundary the polling
                close += window     # loop would wake on
    if close > env.now:
        kick = queue.wait(max_batch)
        timer = env.timeout_at(close)
        token = timer.token()
        yield env.any_of([kick, timer])
        if not kick.triggered:
            queue.cancel_wait(kick)
        token.cancel()
    if not still_leader():
        return None, last_beat
    return queue.take(max_batch), last_beat


class FailureModel(Enum):
    CRASH = "crash"
    BYZANTINE = "byzantine"


class NetworkModel(Enum):
    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"


def replicas_required(f: int, failure_model: FailureModel,
                      network: NetworkModel = NetworkModel.ASYNCHRONOUS) -> int:
    """Minimum replicas to tolerate ``f`` failures (paper Section 3.1.3)."""
    if f < 0:
        raise ValueError("f must be non-negative")
    if failure_model is FailureModel.CRASH:
        return f + 1 if network is NetworkModel.SYNCHRONOUS else 2 * f + 1
    return 2 * f + 1 if network is NetworkModel.SYNCHRONOUS else 3 * f + 1


def max_tolerated_failures(n: int, failure_model: FailureModel,
                           network: NetworkModel = NetworkModel.ASYNCHRONOUS) -> int:
    """Largest f such that n replicas tolerate f failures."""
    if n < 1:
        raise ValueError("n must be positive")
    if failure_model is FailureModel.CRASH:
        return n - 1 if network is NetworkModel.SYNCHRONOUS else (n - 1) // 2
    return (n - 1) // 2 if network is NetworkModel.SYNCHRONOUS else (n - 1) // 3


def quorum_size(n: int, failure_model: FailureModel) -> int:
    """Votes needed to commit: majority for CFT, 2f+1 for BFT (n = 3f+1)."""
    if n < 1:
        raise ValueError("n must be positive")
    if failure_model is FailureModel.CRASH:
        return n // 2 + 1
    f = (n - 1) // 3
    return 2 * f + 1


@dataclass
class LogEntry:
    """A replicated-log entry (term used by Raft; view by PBFT)."""

    term: int
    item: object
    size: int = 256
