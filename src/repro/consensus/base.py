"""Common consensus machinery: quorum math, replica bookkeeping.

The paper's Section 3.1.3 failure-model arithmetic lives here:

* CFT, synchronous network:   f + 1 replicas tolerate f failures
* CFT, asynchronous network:  2f + 1  (Raft, Paxos)
* BFT, synchronous network:   2f + 1
* BFT, asynchronous network:  3f + 1  (PBFT, IBFT, Tendermint)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "FailureModel",
    "NetworkModel",
    "replicas_required",
    "max_tolerated_failures",
    "quorum_size",
    "LogEntry",
]


class FailureModel(Enum):
    CRASH = "crash"
    BYZANTINE = "byzantine"


class NetworkModel(Enum):
    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"


def replicas_required(f: int, failure_model: FailureModel,
                      network: NetworkModel = NetworkModel.ASYNCHRONOUS) -> int:
    """Minimum replicas to tolerate ``f`` failures (paper Section 3.1.3)."""
    if f < 0:
        raise ValueError("f must be non-negative")
    if failure_model is FailureModel.CRASH:
        return f + 1 if network is NetworkModel.SYNCHRONOUS else 2 * f + 1
    return 2 * f + 1 if network is NetworkModel.SYNCHRONOUS else 3 * f + 1


def max_tolerated_failures(n: int, failure_model: FailureModel,
                           network: NetworkModel = NetworkModel.ASYNCHRONOUS) -> int:
    """Largest f such that n replicas tolerate f failures."""
    if n < 1:
        raise ValueError("n must be positive")
    if failure_model is FailureModel.CRASH:
        return n - 1 if network is NetworkModel.SYNCHRONOUS else (n - 1) // 2
    return (n - 1) // 2 if network is NetworkModel.SYNCHRONOUS else (n - 1) // 3


def quorum_size(n: int, failure_model: FailureModel) -> int:
    """Votes needed to commit: majority for CFT, 2f+1 for BFT (n = 3f+1)."""
    if n < 1:
        raise ValueError("n must be positive")
    if failure_model is FailureModel.CRASH:
        return n // 2 + 1
    f = (n - 1) // 3
    return 2 * f + 1


@dataclass
class LogEntry:
    """A replicated-log entry (term used by Raft; view by PBFT)."""

    term: int
    item: object
    size: int = 256
