"""Tendermint consensus (Buchman) — rotating-proposer BFT.

One block at a time: the proposer for height h is ``peers[h % N]``; the
block goes through prevote and precommit all-to-all voting rounds, each
requiring a 2f+1 quorum, before the height commits and the proposer
rotates.  This no-pipelining, rotate-every-height structure is what makes
Tendermint simpler but slower than pipelined PBFT — the performance trait
the paper leans on when discussing BigchainDB and FalconDB (Table 2).

Simplification vs the full protocol: the lock/unlock rule for Byzantine
proposers is not modelled; round timeouts simply re-propose at the same
height with the next proposer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.kernel import Environment, Event, WakeableQueue
from ..sim.network import Message, Network
from ..sim.node import Node
from ..sim.resources import Store
from ..sim.rng import RngRegistry

__all__ = ["TendermintConfig", "TendermintReplica", "TendermintGroup"]


def _grid_wake(start: float, after: float, round_timeout: float,
               block_interval: float) -> float:
    """First wake of the old polling loop's round-wait grid strictly
    greater than ``after``, capped at the round deadline.

    The grid accumulates ``min(remaining, block_interval)`` steps from
    ``start`` with the identical float arithmetic the polling loop's
    chained timeouts performed; pass ``after=inf`` to walk to the
    deadline itself.  A residual below one ulp ends the walk (the grid
    can advance no further).
    """
    t = start
    while t <= after:
        remaining = round_timeout - (t - start)
        if remaining <= 0:
            break
        step = min(remaining, block_interval)
        if t + step == t:
            break
        t += step
    return t


@dataclass
class TendermintConfig:
    block_interval: float = 0.1
    max_block_txns: int = 512
    round_timeout: float = 1.0
    #: Idle-skip mode (Tendermint's ``create_empty_blocks=false``): while
    #: the txpool is idle the proposer parks until work arrives instead of
    #: proposing an empty block every ``block_interval``, and replicas
    #: with no round activity park on the height/round change signal
    #: instead of arming a round-timeout.  Outcome-changing (block heights
    #: and commit times differ from the protocol-faithful default), so it
    #: is gated off by default and fingerprinted separately.  Liveness
    #: assumes a crash-free validator set: round re-proposals cannot fire
    #: while idle, so leave this off for fault-injection studies.
    skip_empty_blocks: bool = False


class TendermintReplica:
    """One Tendermint validator."""

    def __init__(self, env: Environment, node: Node, peers: list[str],
                 network: Network, costs: CostModel = DEFAULT_COSTS,
                 config: Optional[TendermintConfig] = None,
                 rng: Optional[RngRegistry] = None):
        self.env = env
        self.node = node
        self.name = node.name
        self.all_peers = list(peers)
        self.others = [p for p in peers if p != node.name]
        self.n = len(peers)
        self.f = (self.n - 1) // 3
        self.network = network
        self.costs = costs
        self.config = config or TendermintConfig()
        self.rng = (rng or RngRegistry(0)).stream(f"tm:{self.name}")

        self.height = 1
        self.round = 0
        self.mempool: WakeableQueue = WakeableQueue(env)
        self._change_waiter: Optional[Event] = None
        self._proposals: dict[int, list] = {}
        self._prevotes: dict[tuple, set[str]] = {}
        self._precommits: dict[tuple, set[str]] = {}
        self._sent_prevote: set[tuple] = set()
        self._sent_precommit: set[tuple] = set()
        self.applied: Store = Store(env)
        self.commits = 0
        self.rounds_wasted = 0

        self.inbox = node.subscribe("tm")
        env.process(self._receiver(), name=f"tm-recv:{self.name}")
        env.process(self._proposer_loop(), name=f"tm-prop:{self.name}")

    @property
    def quorum(self) -> int:
        return 2 * self.f + 1

    def proposer_for(self, height: int, round_: int = 0) -> str:
        return self.all_peers[(height + round_) % self.n]

    def propose(self, item: Any, size: int = 256) -> Event:
        ev = self.env.event()
        self.mempool.put((item, ev))
        return ev

    # -- height/round change signalling -----------------------------------------

    def _arm_change(self) -> Event:
        """Arm a one-shot event fired at the next height/round change."""
        ev = self.env.event()
        self._change_waiter = ev
        return ev

    def _disarm_change(self, ev: Event) -> None:
        if self._change_waiter is ev:
            self._change_waiter = None

    def _signal_change(self) -> None:
        ev, self._change_waiter = self._change_waiter, None
        if ev is not None and not ev._triggered:
            ev.succeed("changed")

    def _broadcast(self, mtype: str, payload: dict, size: int = 160) -> None:
        for peer in self.others:
            self.network.send(Message(
                src=self.name, dst=peer, kind="tm",
                payload={"type": mtype, **payload}, size=size))

    # -- proposer --------------------------------------------------------------

    def _proposer_loop(self):
        env = self.env
        config = self.config
        while True:
            height, round_ = self.height, self.round
            if (self.proposer_for(height, round_) == self.name
                    and not self.node.crashed):
                if config.skip_empty_blocks and not self.mempool:
                    # Idle-skip: park until a proposal arrives (or the
                    # height/round moves under us) instead of cutting an
                    # empty block every interval.
                    wake = self.mempool.wait()
                    changed = self._arm_change()
                    yield env.any_of([wake, changed])
                    self._disarm_change(changed)
                    if not wake.triggered:
                        self.mempool.cancel_wait(wake)
                    if (self.height, self.round) != (height, round_):
                        continue
                yield env.timeout(config.block_interval)
                if (self.height, self.round) != (height, round_):
                    continue
                batch = self.mempool.take(config.max_block_txns)
                items = [item for item, _ev in batch]
                self._proposals[height] = batch
                yield self.node.compute(
                    self.costs.bft_message_auth * self.n)
                self._broadcast("proposal", {
                    "height": height, "round": round_, "items": items,
                }, size=128 + sum(256 for _ in items))
                self._cast_prevote(height, round_)
            # Wait for the height to advance or the round to time out —
            # parked on the height/round change signal instead of polling
            # every block_interval.  The polling loop noticed a change
            # only at its next grid wake and declared the round dead at
            # the final grid point, so both resume times are recomputed
            # on the identical accumulated grid.
            start = env.now
            if (self.height, self.round) != (height, round_):
                continue
            if (config.skip_empty_blocks and not self.mempool
                    and not self._round_activity(height, round_)):
                # Idle-skip: nothing proposed, nothing queued — park on
                # the change signal with no round deadline (round
                # re-proposal needs a crash to matter; see the config
                # flag's liveness note).
                changed = self._arm_change()
                wake = self.mempool.wait()
                yield env.any_of([changed, wake])
                self._disarm_change(changed)
                if not wake.triggered:
                    self.mempool.cancel_wait(wake)
                continue
            deadline = _grid_wake(start, float("inf"), config.round_timeout,
                                  config.block_interval)
            changed = self._arm_change()
            timer = env.timeout_at(deadline, "deadline")
            token = timer.token()
            winner = yield env.any_of([changed, timer])
            if winner == "deadline":
                self._disarm_change(changed)
                # Re-check before declaring the round dead: a commit can
                # land between the timer's dispatch and this resume (same
                # simulated time), and bumping the *fresh* height's round
                # would skew proposer rotation.
                if (self.height, self.round) == (height, round_):
                    self.rounds_wasted += 1
                    self.round += 1
                continue
            token.cancel()
            # Height/round changed mid-round: resume at the first grid
            # wake strictly after the change, as the polling loop did.
            wake = _grid_wake(start, env.now, config.round_timeout,
                              config.block_interval)
            if wake > env.now:
                yield env.timeout_at(wake)

    def _round_activity(self, height: int, round_: int) -> bool:
        """True when this round has a proposal or votes in flight."""
        key = (height, round_)
        return (height in self._proposals or key in self._prevotes
                or key in self._precommits)

    # -- voting ----------------------------------------------------------------

    def _receiver(self):
        while True:
            msg = yield self.inbox.get()
            if self.node.crashed:
                continue
            yield self.node.compute(self.costs.bft_message_auth)
            payload = msg.payload
            mtype = payload["type"]
            height = payload["height"]
            if height < self.height:
                continue
            if mtype == "proposal":
                self._proposals.setdefault(
                    height, [(item, None) for item in payload["items"]])
                self._cast_prevote(height, payload["round"])
            elif mtype == "prevote":
                key = (height, payload["round"])
                votes = self._prevotes.setdefault(key, set())
                votes.add(msg.src)
                self._maybe_precommit(height, payload["round"])
            elif mtype == "precommit":
                key = (height, payload["round"])
                votes = self._precommits.setdefault(key, set())
                votes.add(msg.src)
                self._maybe_commit(height, payload["round"])

    def _cast_prevote(self, height: int, round_: int) -> None:
        key = (height, round_)
        if key in self._sent_prevote:
            return
        self._sent_prevote.add(key)
        self._broadcast("prevote", {"height": height, "round": round_},
                        size=128)
        self._prevotes.setdefault(key, set()).add(self.name)
        self._maybe_precommit(height, round_)

    def _maybe_precommit(self, height: int, round_: int) -> None:
        key = (height, round_)
        if key in self._sent_precommit:
            return
        if len(self._prevotes.get(key, ())) >= self.quorum:
            self._sent_precommit.add(key)
            self._broadcast("precommit", {"height": height, "round": round_},
                            size=128)
            self._precommits.setdefault(key, set()).add(self.name)
            self._maybe_commit(height, round_)

    def _maybe_commit(self, height: int, round_: int) -> None:
        if height != self.height:
            return
        key = (height, round_)
        if len(self._precommits.get(key, ())) >= self.quorum:
            batch = self._proposals.pop(height, [])
            self.height += 1
            self.round = 0
            self._signal_change()
            self.commits += 1
            items = []
            for item, ev in batch:
                items.append(item)
                if ev is not None and not ev.triggered:
                    ev.succeed((height, item))
            self.applied.put((height, items))


class TendermintGroup:
    """A Tendermint validator set."""

    def __init__(self, env: Environment, nodes: list[Node], network: Network,
                 costs: CostModel = DEFAULT_COSTS,
                 config: Optional[TendermintConfig] = None,
                 rng: Optional[RngRegistry] = None):
        self.env = env
        names = [n.name for n in nodes]
        self.replicas = {
            n.name: TendermintReplica(env, n, names, network, costs,
                                      config, rng)
            for n in nodes
        }

    def propose(self, item: Any, size: int = 256) -> Event:
        """Submit to the proposer of the current height (gossip shortcut)."""
        height = max(r.height for r in self.replicas.values())
        for replica in self.replicas.values():
            if (replica.proposer_for(height, replica.round) == replica.name
                    and not replica.node.crashed):
                return replica.propose(item, size)
        # fall back to any live replica's mempool
        for replica in self.replicas.values():
            if not replica.node.crashed:
                return replica.propose(item, size)
        ev = self.env.event()
        ev.fail(RuntimeError("no live validators"))
        return ev
