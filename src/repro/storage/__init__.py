"""Storage engines: LSM tree, B+ tree, skip list, WAL, SSTables."""

from .btree import BPlusTree
from .lsm import LSMTree
from .skiplist import SkipList
from .sstable import TOMBSTONE, BloomFilter, SSTable
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "BPlusTree",
    "BloomFilter",
    "LSMTree",
    "SSTable",
    "SkipList",
    "TOMBSTONE",
    "WalRecord",
    "WriteAheadLog",
]
