"""Storage: LSM tree, B+ tree, skip list, WAL, SSTables, and the
pluggable :mod:`~repro.storage.engine` layer over all of them."""

from .btree import BPlusTree
from .engine import (CommitResult, ENGINES, StorageEngine, engine_for,
                     parse_index_kind)
from .lsm import LSMTree
from .skiplist import SkipList
from .sstable import TOMBSTONE, BloomFilter, SSTable
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "BPlusTree",
    "BloomFilter",
    "CommitResult",
    "ENGINES",
    "LSMTree",
    "SSTable",
    "SkipList",
    "StorageEngine",
    "TOMBSTONE",
    "WalRecord",
    "WriteAheadLog",
    "engine_for",
    "parse_index_kind",
]
