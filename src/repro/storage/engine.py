"""Pluggable storage engines: every Table 2 index choice, one interface.

The paper's storage dimension (Section 3.3.2, Table 2) spans six index
kinds — plain LSM / B-tree / skip list on the performance side, and the
authenticated LSM+MPT (Ethereum/Quorum), LSM+Merkle-bucket-tree (Fabric
v0.6) and B-tree+Merkle (FalconDB) on the security side.  This module
lifts that choice out of the individual system models into a swappable
:class:`StorageEngine`, so the Figure 12 authenticated-vs-plain ablation
is a one-line config change (``SystemConfig.extras["index"]`` on the
dedicated models, ``spec["index"]`` on hybrids) on *any* system.

The engine interface mirrors what the systems layer already does:

* ``get``/``put``/``apply_write_set`` over the system-level ``str`` keys
  (encoded to bytes at this boundary);
* a per-block ``commit(version)`` returning a :class:`CommitResult` with
  the fresh authenticated ``root`` (``NULL_HASH`` for plain engines), the
  number of ``hashes_computed`` by the commit, and the structural
  ``node_ops`` performed since the previous commit.

``hashes_computed`` is a *measured* quantity from the real structure —
systems charge it through :meth:`repro.sim.costs.CostModel.index_commit_time`
(extending the PR 2 ``mpt_commit_time`` wiring), replacing the old
per-payload index-cost calibration constants.  ``node_ops`` is accounting
(its charge constant defaults to zero: structural write work is already
folded into the calibrated ``store_put`` / ``commit_serial_cost``).

Engines are pure state + bookkeeping — they schedule no simulation
events, so attaching one to a system changes simulated outcomes only
through the costs the system explicitly charges from the commit deltas.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union

from ..adt.btm import MerkleBTree
from ..adt.mbt import MerkleBucketTree
from ..adt.mpt import MerklePatriciaTrie
from ..core.taxonomy import IndexKind
from ..crypto.hashing import NULL_HASH
from .btree import BPlusTree
from .lsm import LSMTree
from .skiplist import SkipList
from .wal import WalRecord, WriteAheadLog

__all__ = ["CommitResult", "RecoveryResult", "StorageEngine", "LsmEngine",
           "BTreeEngine", "SkipListEngine", "MptEngine", "MbtEngine",
           "BTreeMerkleEngine", "engine_for", "engine_from_config",
           "parse_index_kind", "ENGINES", "KNOWN_EXTRAS_KEYS"]


class CommitResult(NamedTuple):
    """Outcome of one per-block engine commit."""

    root: bytes           #: authenticated state root (NULL_HASH when plain)
    hashes_computed: int  #: digests computed by this commit (0 when plain)
    node_ops: int         #: structural node writes since the last commit


class RecoveryResult(NamedTuple):
    """Outcome of one crash-restart WAL replay (:meth:`StorageEngine.recover`).

    ``records``/``bytes_replayed`` feed the replay cost the chaos injector
    charges (:meth:`repro.sim.costs.CostModel.wal_replay_time`); ``root``
    and ``hashes_computed`` are the rebuild's commit deltas.
    """

    records: int          #: WAL records replayed into the fresh structure
    bytes_replayed: int   #: encoded bytes scanned (the surviving log)
    root: bytes           #: state root after the rebuild commit
    hashes_computed: int  #: digests the rebuild commit computed


#: WAL checkpoint threshold: log bytes kept before the group-committed log
#: is truncated (models the post-flush truncation an LSM WAL gets for free).
_WAL_CHECKPOINT_BYTES = 1 << 20


class StorageEngine:
    """One state organization behind the versioned store.

    Subclasses wrap a concrete structure from :mod:`repro.storage` /
    :mod:`repro.adt` and report measured commit deltas.  An optional
    group-committed :class:`WriteAheadLog` (``SystemConfig.extras["wal"]``)
    journals every write ahead of the structure and checkpoints at commit.
    """

    kind: IndexKind
    authenticated = False

    def __init__(self, wal: Optional[WriteAheadLog] = None):
        self.wal = wal
        self._wal_seq = 0
        self.puts = 0
        self._node_ops = 0
        self.commits = 0
        # Checkpoint threshold for WAL truncation after a group commit.
        # ``None`` disables truncation entirely — the chaos injector sets
        # that before load so the full history survives for crash replay.
        self.wal_checkpoint_bytes: Optional[int] = _WAL_CHECKPOINT_BYTES
        self.recoveries = 0

    # -- write path ----------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        self.puts += 1
        kb = key.encode()
        if self.wal is not None:
            self._wal_seq += 1
            self.wal.append(WalRecord(self._wal_seq, kb, value))
        self._put(kb, value)

    def apply_write_set(self, write_set: dict[str, bytes]) -> None:
        for key, value in write_set.items():
            self.put(key, value)

    # -- read path -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        return self._get(key.encode())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # -- per-block commit ------------------------------------------------------

    def commit(self, version: int = 0) -> CommitResult:
        """Fold pending writes; report the measured structural deltas."""
        root, hashes = self._commit()
        node_ops = self._node_ops
        self._node_ops = 0
        self.commits += 1
        if self.wal is not None:
            # Group commit: one sync covers the whole block's records.
            self.wal.sync()
            if (self.wal_checkpoint_bytes is not None
                    and self.wal.size_bytes() > self.wal_checkpoint_bytes):
                self.wal.truncate()
        return CommitResult(root, hashes, node_ops)

    # -- crash-restart recovery -------------------------------------------------

    def crash(self) -> None:
        """Crash the engine: the unsynced WAL tail is lost (possibly torn).

        The in-memory structure is *not* touched here — it is dead weight
        the moment the node is down; :meth:`recover` rebuilds it from the
        durable log, which is the only state a restart can trust.
        """
        if self.wal is None:
            raise RuntimeError(
                "crash-restart recovery needs a WAL "
                "(SystemConfig.extras['wal'] = True)")
        self.wal.crash()

    def recover(self) -> RecoveryResult:
        """Rebuild the structure by replaying the surviving WAL.

        The real recovery loop: a fresh structure (:meth:`_fresh_structure`)
        is populated record by record through the engine's own ``_put``
        path — *not* :meth:`put`, which would re-journal every replayed
        write — then committed once.  Replay stops at the first torn or
        corrupt record exactly as :meth:`WriteAheadLog.replay` does, so
        post-recovery state equals the pre-crash *synced* state.
        """
        if self.wal is None:
            raise RuntimeError(
                "crash-restart recovery needs a WAL "
                "(SystemConfig.extras['wal'] = True)")
        self._fresh_structure()
        self._node_ops = 0
        records = 0
        last_seq = 0
        for record in self.wal.replay():
            self._put(record.key, record.value)
            records += 1
            last_seq = record.seq
        root, hashes = self._commit()
        self._node_ops = 0
        self._wal_seq = max(self._wal_seq, last_seq)
        self.recoveries += 1
        return RecoveryResult(records, self.wal.size_bytes(), root, hashes)

    # -- engine-specific hooks --------------------------------------------------

    def _put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def _get(self, key: bytes) -> Optional[bytes]:
        raise NotImplementedError

    def _commit(self) -> tuple[bytes, int]:
        """Fold writes; return (root, hashes computed by this commit)."""
        return NULL_HASH, 0

    def _fresh_structure(self) -> None:
        """Replace the backing structure with an empty one (for recovery)."""
        raise NotImplementedError

    def data_bytes(self) -> int:
        """Approximate on-disk bytes of the structure (Fig. 12/13)."""
        raise NotImplementedError


# -- plain (performance-oriented) engines ------------------------------------------


class LsmEngine(StorageEngine):
    """Plain LSM tree (LevelDB/RocksDB/TiKV; Table 2 "LSM")."""

    kind = IndexKind.LSM

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 tree: Optional[LSMTree] = None):
        super().__init__(wal)
        self.tree = tree if tree is not None else LSMTree(memtable_limit=4096)

    def _put(self, key: bytes, value: bytes) -> None:
        flushed = self.tree.bytes_flushed
        self.tree.put(key, value)
        # memtable insert, plus the SSTable writes when a flush cascades
        self._node_ops += 1 + (self.tree.bytes_flushed != flushed)

    def _get(self, key: bytes) -> Optional[bytes]:
        return self.tree.get(key)

    def _fresh_structure(self) -> None:
        self.tree = LSMTree(memtable_limit=4096)

    def data_bytes(self) -> int:
        return self.tree.total_bytes()


class BTreeEngine(StorageEngine):
    """Plain B+ tree (BoltDB/MySQL; Table 2 "B-tree")."""

    kind = IndexKind.BTREE

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 tree: Optional[BPlusTree] = None):
        super().__init__(wal)
        self.tree = tree if tree is not None else BPlusTree(order=64)

    def _put(self, key: bytes, value: bytes) -> None:
        self.tree.put(key, value)
        self._node_ops += self.tree.depth()   # root-to-leaf page writes

    def _get(self, key: bytes) -> Optional[bytes]:
        return self.tree.get(key)

    def _fresh_structure(self) -> None:
        self.tree = BPlusTree(order=64)

    def data_bytes(self) -> int:
        total = 0
        for key, value in self.tree.items():
            total += len(key) + len(value) + 8
        return total + 64 * self.tree.node_count()   # page headers


class SkipListEngine(StorageEngine):
    """Plain skip list (Redis sorted values backing Veritas)."""

    kind = IndexKind.SKIP_LIST

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 tree: Optional[SkipList] = None):
        super().__init__(wal)
        self.tree = tree if tree is not None else SkipList()

    def _put(self, key: bytes, value: bytes) -> None:
        self.tree.put(key, value)
        self._node_ops += 1

    def _get(self, key: bytes) -> Optional[bytes]:
        return self.tree.get(key)

    def _fresh_structure(self) -> None:
        self.tree = SkipList()

    def data_bytes(self) -> int:
        return sum(len(k) + len(v) + 8 for k, v in self.tree.items())


# -- authenticated (security-oriented) engines ---------------------------------------


class MptEngine(StorageEngine):
    """LSM + Merkle Patricia Trie (Ethereum/Quorum; Table 2 "LSM+MPT").

    The content-addressed :class:`~repro.adt.mpt.NodeStore` stands in for
    the LSM the trie nodes live in (geth stores them in LevelDB the same
    content-addressed way).  Writes stage against the trie's in-memory
    overlay; ``commit`` folds them geth-style, hashing each touched node
    once, and the *measured* hash delta is what systems charge.
    """

    kind = IndexKind.LSM_MPT
    authenticated = True

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 trie: Optional[MerklePatriciaTrie] = None):
        super().__init__(wal)
        self.trie = trie if trie is not None else MerklePatriciaTrie()
        # every engine exposes its structure as ``tree`` (the MPT keeps
        # ``trie`` as the domain name)
        self.tree = self.trie

    def _put(self, key: bytes, value: bytes) -> None:
        self.trie.stage(key, value)
        self._node_ops += 1

    def _get(self, key: bytes) -> Optional[bytes]:
        return self.trie.get(key)

    def _commit(self) -> tuple[bytes, int]:
        before = self.trie.hashes_computed
        root = self.trie.commit()
        return root, self.trie.hashes_computed - before

    def _fresh_structure(self) -> None:
        self.trie = MerklePatriciaTrie()
        self.tree = self.trie

    def data_bytes(self) -> int:
        return self.trie.store.total_bytes()


class MbtEngine(StorageEngine):
    """LSM + Merkle Bucket Tree (Fabric v0.6; Table 2 "LSM+MBT")."""

    kind = IndexKind.LSM_MBT
    authenticated = True

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 tree: Optional[MerkleBucketTree] = None):
        super().__init__(wal)
        self.tree = tree if tree is not None else MerkleBucketTree()

    def _put(self, key: bytes, value: bytes) -> None:
        self.tree.put(key, value)
        self._node_ops += 1

    def _get(self, key: bytes) -> Optional[bytes]:
        return self.tree.get(key)

    def _commit(self) -> tuple[bytes, int]:
        before = self.tree.hashes_computed
        root = self.tree.commit()
        return root, self.tree.hashes_computed - before

    def _fresh_structure(self) -> None:
        self.tree = MerkleBucketTree()

    def data_bytes(self) -> int:
        return self.tree.total_bytes()


class BTreeMerkleEngine(StorageEngine):
    """B-tree + Merkle overlay (FalconDB/IntegriDB; Table 2 "B-tree+Merkle")."""

    kind = IndexKind.BTREE_MERKLE
    authenticated = True

    def __init__(self, wal: Optional[WriteAheadLog] = None,
                 tree: Optional[MerkleBTree] = None):
        super().__init__(wal)
        self.tree = tree if tree is not None else MerkleBTree(order=64)

    def _put(self, key: bytes, value: bytes) -> None:
        self.tree.put(key, value)
        self._node_ops += 1

    def _get(self, key: bytes) -> Optional[bytes]:
        return self.tree.get(key)

    def _commit(self) -> tuple[bytes, int]:
        before = self.tree.hashes_computed
        root = self.tree.commit()
        return root, self.tree.hashes_computed - before

    def _fresh_structure(self) -> None:
        self.tree = MerkleBTree(order=64)

    def data_bytes(self) -> int:
        return self.tree.total_bytes()


#: IndexKind -> engine class, one per Table 2 storage choice.
ENGINES: dict[IndexKind, type[StorageEngine]] = {
    IndexKind.LSM: LsmEngine,
    IndexKind.BTREE: BTreeEngine,
    IndexKind.SKIP_LIST: SkipListEngine,
    IndexKind.LSM_MPT: MptEngine,
    IndexKind.LSM_MBT: MbtEngine,
    IndexKind.BTREE_MERKLE: BTreeMerkleEngine,
}

#: Config-friendly aliases accepted wherever an index kind is named.
_ALIASES = {
    "lsm": IndexKind.LSM,
    "btree": IndexKind.BTREE,
    "b-tree": IndexKind.BTREE,
    "skiplist": IndexKind.SKIP_LIST,
    "skip-list": IndexKind.SKIP_LIST,
    "lsm+mpt": IndexKind.LSM_MPT,
    "mpt": IndexKind.LSM_MPT,
    "lsm+mbt": IndexKind.LSM_MBT,
    "mbt": IndexKind.LSM_MBT,
    "btree+merkle": IndexKind.BTREE_MERKLE,
    "b-tree+merkle": IndexKind.BTREE_MERKLE,
}


def parse_index_kind(kind: Union[IndexKind, str]) -> IndexKind:
    """Resolve an :class:`IndexKind` or config string (e.g. ``"lsm+mpt"``)."""
    if isinstance(kind, IndexKind):
        return kind
    key = kind.lower().replace(" ", "")
    if key in _ALIASES:
        return _ALIASES[key]
    for member in IndexKind:
        if member.value.replace(" ", "") == key:
            return member
    raise ValueError(f"unknown index kind {kind!r}; "
                     f"known: {sorted(_ALIASES)}")


def engine_for(kind: Union[IndexKind, str],
               wal: bool = False) -> StorageEngine:
    """Instantiate the engine for a Table 2 index choice.

    ``wal=True`` attaches a group-committed write-ahead log journaling
    every engine write (checkpointed at commit) — the
    ``SystemConfig.extras["wal"]`` flag's storage side.
    """
    cls = ENGINES[parse_index_kind(kind)]
    return cls(wal=WriteAheadLog() if wal else None)


#: Every ``SystemConfig.extras`` key the systems layer understands.  A
#: typo'd key would otherwise silently run the default engine — the same
#: silent-misconfiguration class the hybrid spec validation closes.
#: ``scenario`` carries a :class:`repro.chaos.Scenario` the builder arms
#: after construction (ignored here — it is not an engine concern).
#: ``isolation`` selects the concurrency level (validated by
#: ``concurrency.si.isolation_level`` and ``core.builder``).
KNOWN_EXTRAS_KEYS = frozenset({"index", "wal", "scenario", "isolation"})


def engine_from_config(extras: dict,
                       default: Union[IndexKind, str, None] = None
                       ) -> Optional[StorageEngine]:
    """Build the engine a ``SystemConfig.extras`` mapping names.

    ``extras["index"]`` wins; otherwise ``default`` is the system's
    historical structure (``None`` = no engine, the seed behaviour).
    ``extras["wal"]`` attaches the group-committed journal either way.
    This is the one engine-selection path every system shares, so it
    also rejects unknown extras keys.
    """
    unknown = sorted(set(extras) - KNOWN_EXTRAS_KEYS)
    if unknown:
        raise ValueError(f"unknown SystemConfig.extras key(s) {unknown}; "
                         f"known: {sorted(KNOWN_EXTRAS_KEYS)}")
    index = extras.get("index", default)
    if index is None:
        return None
    return engine_for(index, wal=bool(extras.get("wal")))
