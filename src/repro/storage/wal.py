"""Write-ahead log with checksummed records and crash-truncated replay.

The paper (Section 3.3.1) notes databases keep history only in pruned WALs
used for recovery — unlike the blockchain ledger.  This WAL backs the LSM
engine: records are length-prefixed and CRC-protected, a torn tail (as left
by a crash) is detected and discarded at replay.
"""

from __future__ import annotations

import zlib
from typing import Iterator

__all__ = ["WriteAheadLog", "WalRecord"]


class WalRecord:
    """One logical WAL entry."""

    __slots__ = ("seq", "key", "value")

    def __init__(self, seq: int, key: bytes, value: bytes):
        self.seq = seq
        self.key = key
        self.value = value

    def encode(self) -> bytes:
        body = (
            self.seq.to_bytes(8, "big")
            + len(self.key).to_bytes(4, "big")
            + self.key
            + len(self.value).to_bytes(4, "big")
            + self.value
        )
        crc = zlib.crc32(body).to_bytes(4, "big")
        return len(body).to_bytes(4, "big") + crc + body

    @classmethod
    def decode(cls, body: bytes) -> "WalRecord":
        seq = int.from_bytes(body[0:8], "big")
        klen = int.from_bytes(body[8:12], "big")
        key = body[12:12 + klen]
        pos = 12 + klen
        vlen = int.from_bytes(body[pos:pos + 4], "big")
        value = body[pos + 4:pos + 4 + vlen]
        return cls(seq, key, value)


class WriteAheadLog:
    """An in-memory byte buffer emulating an append-only log file."""

    def __init__(self):
        self._buffer = bytearray()
        self.appended = 0
        self.synced_to = 0

    def append(self, record: WalRecord) -> None:
        self._buffer.extend(record.encode())
        self.appended += 1

    def sync(self) -> None:
        """Mark everything written so far as durable."""
        self.synced_to = len(self._buffer)

    def crash(self) -> None:
        """Simulate a crash: unsynced bytes are lost (possibly mid-record)."""
        del self._buffer[self.synced_to:]

    def corrupt_tail(self, nbytes: int = 1) -> None:
        """Flip bytes at the end (torn write) — replay must stop cleanly."""
        if self._buffer:
            for i in range(1, min(nbytes, len(self._buffer)) + 1):
                self._buffer[-i] ^= 0xFF

    def replay(self) -> Iterator[WalRecord]:
        """Yield records until the end or the first corrupt/torn record."""
        pos = 0
        buf = self._buffer
        while pos + 8 <= len(buf):
            body_len = int.from_bytes(buf[pos:pos + 4], "big")
            crc = int.from_bytes(buf[pos + 4:pos + 8], "big")
            start = pos + 8
            end = start + body_len
            if end > len(buf):
                return  # torn tail
            body = bytes(buf[start:end])
            if zlib.crc32(body) != crc:
                return  # corruption: stop replay
            yield WalRecord.decode(body)
            pos = end

    def truncate(self) -> None:
        """Discard the log after a successful flush (checkpoint)."""
        self._buffer.clear()
        self.synced_to = 0

    def size_bytes(self) -> int:
        return len(self._buffer)
