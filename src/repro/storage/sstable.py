"""Immutable sorted-string tables for the LSM engine.

An SSTable is a sorted, immutable run of key-value entries with a sparse
index (one anchor per block) and a small Bloom filter — the LevelDB layout
TiKV, LevelDB and RocksDB share in Table 2.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional

__all__ = ["BloomFilter", "SSTable"]

TOMBSTONE = b"\x00__tombstone__"


class BloomFilter:
    """A fixed-size Bloom filter (k=3 hash probes)."""

    def __init__(self, capacity: int, bits_per_key: int = 10):
        self.nbits = max(64, capacity * bits_per_key)
        self._bits = bytearray((self.nbits + 7) // 8)

    def _probes(self, key: bytes) -> Iterator[int]:
        digest = hashlib.sha256(key).digest()
        for i in range(3):
            chunk = digest[i * 8:(i + 1) * 8]
            yield int.from_bytes(chunk, "big") % self.nbits

    def add(self, key: bytes) -> None:
        for bit in self._probes(key):
            self._bits[bit // 8] |= 1 << (bit % 8)

    def may_contain(self, key: bytes) -> bool:
        return all(self._bits[bit // 8] & (1 << (bit % 8))
                   for bit in self._probes(key))


class SSTable:
    """An immutable sorted run."""

    def __init__(self, entries: list[tuple[bytes, bytes]], level: int = 0,
                 block_size: int = 16):
        for i in range(1, len(entries)):
            if entries[i - 1][0] >= entries[i][0]:
                raise ValueError("SSTable entries must be strictly sorted")
        self._keys = [k for k, _ in entries]
        self._values = [v for _, v in entries]
        self.level = level
        self.block_size = block_size
        self.bloom = BloomFilter(max(1, len(entries)))
        for key in self._keys:
            self.bloom.add(key)
        # sparse index: first key of each block
        self._anchors = self._keys[::block_size]

    @property
    def min_key(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the stored value, TOMBSTONE, or None when absent."""
        if not self._keys or key < self._keys[0] or key > self._keys[-1]:
            return None
        if not self.bloom.may_contain(key):
            return None
        lo, hi = 0, len(self._keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._keys) and self._keys[lo] == key:
            return self._values[lo]
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return zip(self._keys, self._values)

    def overlaps(self, other: "SSTable") -> bool:
        if not self._keys or not len(other):
            return False
        return not (self.max_key < other.min_key or other.max_key < self.min_key)

    def data_bytes(self) -> int:
        """Approximate on-disk size: entries + sparse index + bloom bits."""
        entries = sum(len(k) + len(v) + 8
                      for k, v in zip(self._keys, self._values))
        index = sum(len(a) + 8 for a in self._anchors)
        return entries + index + len(self.bloom._bits)
