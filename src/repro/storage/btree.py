"""In-memory B+ tree with page-size accounting.

Models the BoltDB (etcd), MySQL and PostgreSQL storage engines of Table 2:
values live only in the leaves, leaves are chained for range scans, and the
page occupancy statistics feed the storage accounting used in tests.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: list = []
        self.children: list["_Node"] = []
        self.values: list = []
        self.next: Optional["_Node"] = None


def _bisect(keys: list, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """A B+ tree ordered map (default order 64)."""

    def __init__(self, order: int = 64):
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self._root = _Node(leaf=True)
        self._size = 0

    # -- lookup ---------------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.leaf:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            node = node.children[idx]
        return node

    def get(self, key, default=None):
        leaf = self._find_leaf(key)
        idx = _bisect(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size

    # -- insert ----------------------------------------------------------------

    def put(self, key, value) -> None:
        root = self._root
        result = self._insert(root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root

    def _insert(self, node: _Node, key, value):
        if node.leaf:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        idx = _bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            idx += 1
        result = self._insert(node.children[idx], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) >= self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # -- delete ------------------------------------------------------------------

    def delete(self, key) -> bool:
        """Remove ``key``; lazy deletion (no rebalancing), BoltDB-style pages
        reclaim on the next split.  Returns True when the key existed."""
        leaf = self._find_leaf(key)
        idx = _bisect(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            self._size -= 1
            return True
        return False

    # -- scans ------------------------------------------------------------------

    def items(self) -> Iterator[tuple]:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def range(self, low, high) -> Iterator[tuple]:
        """Entries with low <= key < high in key order."""
        node = self._find_leaf(low)
        while node is not None:
            for k, v in zip(node.keys, node.values):
                if k >= high:
                    return
                if k >= low:
                    yield k, v
            node = node.next

    # -- structural statistics -----------------------------------------------------

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.leaf:
            depth += 1
            node = node.children[0]
        return depth

    def node_count(self) -> int:
        def count(node: _Node) -> int:
            if node.leaf:
                return 1
            return 1 + sum(count(c) for c in node.children)

        return count(self._root)
