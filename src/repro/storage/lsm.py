"""Log-structured merge tree (LevelDB / RocksDB / TiKV storage model).

Writes land in a WAL and a skip-list memtable; full memtables flush to
immutable L0 SSTables; levels compact by size-tiered promotion with
leveled merge (newer data shadows older).  Space and write amplification
counters feed the storage analyses in the test suite.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .skiplist import SkipList
from .sstable import SSTable, TOMBSTONE
from .wal import WalRecord, WriteAheadLog

__all__ = ["LSMTree"]


class LSMTree:
    """A leveled LSM key-value engine over bytes keys/values."""

    def __init__(self, memtable_limit: int = 256, level_factor: int = 4,
                 max_l0_tables: int = 4):
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be positive")
        self.memtable_limit = memtable_limit
        self.level_factor = level_factor
        self.max_l0_tables = max_l0_tables
        self.wal = WriteAheadLog()
        self._memtable = SkipList()
        self._seq = 0
        # levels[0] is newest-first list of possibly-overlapping L0 tables;
        # deeper levels each hold one non-overlapping sorted run.
        self.levels: list[list[SSTable]] = [[]]
        self.bytes_flushed = 0
        self.bytes_compacted = 0
        self.user_bytes_written = 0

    # -- write path -------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        if value == TOMBSTONE:
            raise ValueError("value collides with tombstone marker")
        self._write(key, value)

    def delete(self, key: bytes) -> None:
        self._write(key, TOMBSTONE)

    def _write(self, key: bytes, value: bytes) -> None:
        self._seq += 1
        self.wal.append(WalRecord(self._seq, key, value))
        self.wal.sync()
        self._memtable.put(key, value)
        self.user_bytes_written += len(key) + len(value)
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into an L0 SSTable and truncate the WAL."""
        if len(self._memtable) == 0:
            return
        entries = list(self._memtable.items())
        table = SSTable(entries, level=0)
        self.levels[0].insert(0, table)
        self.bytes_flushed += table.data_bytes()
        self._memtable = SkipList()
        self.wal.truncate()
        if len(self.levels[0]) > self.max_l0_tables:
            self._compact(0)

    # -- compaction --------------------------------------------------------------

    def _level_capacity(self, level: int) -> int:
        return self.memtable_limit * (self.level_factor ** (level + 1))

    def _compact(self, level: int) -> None:
        while level + 1 >= len(self.levels):
            self.levels.append([])
        sources = self.levels[level] + self.levels[level + 1]
        merged = self._merge(sources, drop_tombstones=level + 2 >= len(self.levels))
        self.levels[level] = []
        if merged:
            table = SSTable(merged, level=level + 1)
            self.levels[level + 1] = [table]
            self.bytes_compacted += table.data_bytes()
            if len(merged) > self._level_capacity(level + 1):
                self._compact(level + 1)
        else:
            self.levels[level + 1] = []

    @staticmethod
    def _merge(tables: list[SSTable],
               drop_tombstones: bool) -> list[tuple[bytes, bytes]]:
        """K-way merge where earlier tables (newer) win on duplicate keys."""
        latest: dict[bytes, bytes] = {}
        for table in tables:
            for key, value in table.items():
                if key not in latest:
                    latest[key] = value
        items = sorted(latest.items())
        if drop_tombstones:
            items = [(k, v) for k, v in items if v != TOMBSTONE]
        return items

    # -- read path ----------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._memtable.get(key)
        if value is not None:
            return None if value == TOMBSTONE else value
        for level_tables in self.levels:
            for table in level_tables:  # newest first within L0
                value = table.get(key)
                if value is not None:
                    return None if value == TOMBSTONE else value
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def scan(self, low: bytes, high: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Merged range scan low <= key < high (newest version wins)."""
        latest: dict[bytes, bytes] = {}
        for level_tables in reversed(self.levels):
            for table in reversed(level_tables):
                for key, value in table.items():
                    if low <= key < high:
                        latest[key] = value
        for key, value in self._memtable.range(low, high):
            latest[key] = value
        for key in sorted(latest):
            if latest[key] != TOMBSTONE:
                yield key, latest[key]

    # -- recovery -------------------------------------------------------------------

    def recover(self) -> int:
        """Rebuild the memtable from the WAL after a crash; returns records."""
        self._memtable = SkipList()
        count = 0
        for record in self.wal.replay():
            self._memtable.put(record.key, record.value)
            self._seq = max(self._seq, record.seq)
            count += 1
        return count

    # -- statistics -------------------------------------------------------------------

    def table_count(self) -> int:
        return sum(len(tables) for tables in self.levels)

    def total_bytes(self) -> int:
        disk = sum(t.data_bytes() for tables in self.levels for t in tables)
        mem = sum(len(k) + len(v) + 8 for k, v in self._memtable.items())
        return disk + mem + self.wal.size_bytes()

    def write_amplification(self) -> float:
        if self.user_bytes_written == 0:
            return 0.0
        return (self.bytes_flushed + self.bytes_compacted) / self.user_bytes_written

    def __len__(self) -> int:
        """Number of live keys (scans everything; intended for tests)."""
        count = 0
        seen: set[bytes] = set()
        for key, value in self._memtable.items():
            seen.add(key)
            if value != TOMBSTONE:
                count += 1
        for level_tables in self.levels:
            for table in level_tables:
                for key, value in table.items():
                    if key not in seen:
                        seen.add(key)
                        if value != TOMBSTONE:
                            count += 1
        return count
