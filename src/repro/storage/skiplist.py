"""Probabilistic skip list.

Used as the LSM memtable (LevelDB/RocksDB style) and standing in for the
Redis sorted-value store that backs Veritas in Table 2.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

__all__ = ["SkipList"]

_MAX_LEVEL = 16
_P = 0.25


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key, value, level: int):
        self.key = key
        self.value = value
        self.forward: list[Optional["_SkipNode"]] = [None] * level


class SkipList:
    """An ordered map with expected O(log n) insert/lookup/scan."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._head = _SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def put(self, key, value) -> None:
        update: list[_SkipNode] = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
            update[i] = node
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        new = _SkipNode(key, value, level)
        for i in range(level):
            new.forward[i] = update[i].forward[i]
            update[i].forward[i] = new
        self._size += 1

    def get(self, key, default=None):
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple]:
        """All entries in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def range(self, low, high) -> Iterator[tuple]:
        """Entries with low <= key < high, in key order."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < low:
                node = node.forward[i]
        node = node.forward[0]
        while node is not None and node.key < high:
            yield node.key, node.value
            node = node.forward[0]
