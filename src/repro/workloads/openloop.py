"""Open-loop arrival-process driver with coordinated-omission-safe latency.

``run_closed_loop``'s clients wait for each transaction's fate before
issuing the next one, so when the system stalls the *offered load stalls
with it* — the driver politely omits exactly the requests that would
have observed the stall, and the reported tail latency is a fiction
(Tene's "coordinated omission").  Production traffic from a large user
population does not coordinate: requests arrive when users decide, not
when the system is ready.

``run_open_loop`` models that:

* an **arrival process** (Poisson, bursty via superposed on-off sources,
  or diurnal-trace replay) is materialised up front as a seeded schedule
  of intended arrival instants, and each arrival fires at its scheduled
  instant *regardless of completions*;
* in-flight requests are array-backed slots on a
  :class:`~repro.sim.wheel.TimingWheel` — no per-request generator or
  Process, one wheel entry per pending timeout (O(1) cancel when the
  completion wins), and the arrival chain itself is a single wheel
  entry at a time;
* every latency sample is ``complete_at - intended_arrival`` — the time
  the *user* waited, including any admission delay — so a stalled
  server cannot hide its stall from the percentiles.  The
  submission-relative view is kept alongside (``service_latency``) to
  make the difference measurable;
* arrivals that find every slot busy wait in a bounded admit queue and
  are counted ``late_admitted`` when a slot frees (their latency still
  runs from intended arrival); arrivals that find the queue full are
  counted ``dropped``.  Both are surfaced explicitly and count against
  SLO attainment.

Statistics are windowed by *intended arrival time*: an arrival intended
during ``[warmup, warmup + duration)`` is measured no matter when (or
whether) it completes.
"""

from __future__ import annotations

import hashlib
import math
import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.kernel import Environment, subscribe
from ..sim.metrics import LatencyRecorder
from ..sim.wheel import TimingWheel
from ..txn.transaction import TxnStatus

__all__ = ["OpenLoopConfig", "OpenLoopResult", "run_open_loop",
           "make_schedule", "poisson_arrivals", "bursty_arrivals",
           "diurnal_arrivals", "DAY_TRACE"]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

def poisson_arrivals(rate: float, horizon: float,
                     rng: random.Random) -> list[float]:
    """Homogeneous Poisson process: i.i.d. exponential inter-arrivals."""
    out: list[float] = []
    t = rng.expovariate(rate)
    while t < horizon:
        out.append(t)
        t += rng.expovariate(rate)
    return out


def bursty_arrivals(rate: float, horizon: float, rng: random.Random,
                    sources: int = 8, on_mean: float = 0.4,
                    off_mean: float = 0.6) -> list[float]:
    """Superposed on-off sources: the classic self-similar-traffic model.

    Each source alternates exponential ON/OFF periods and emits Poisson
    arrivals at its peak rate while ON; peak rates are chosen so the
    aggregate long-run mean is ``rate``.  The superposition of a few
    heavy on-off sources produces the burst trains and idle gaps that a
    plain Poisson stream smooths away (Willinger et al.'s construction,
    at the scale a simulation run can afford).
    """
    duty = on_mean / (on_mean + off_mean)
    peak = rate / (sources * duty)
    out: list[float] = []
    for _ in range(sources):
        # Randomise the initial phase so sources don't switch in sync.
        t = -rng.uniform(0.0, on_mean + off_mean)
        while t < horizon:
            on_end = t + rng.expovariate(1.0 / on_mean)
            a = t + rng.expovariate(peak)
            while a < on_end:
                if 0.0 <= a < horizon:
                    out.append(a)
                a += rng.expovariate(peak)
            t = on_end + rng.expovariate(1.0 / off_mean)
    out.sort()
    return out


#: Relative intensity over a 24-slice "day" (low 4am trough, evening
#: peak) — the default diurnal trace, replayed compressed to the run's
#: horizon.
DAY_TRACE = tuple(
    round(1.0 + 0.75 * math.sin(2.0 * math.pi * (h - 8.0) / 24.0), 4)
    for h in range(24))


def diurnal_arrivals(rate: float, horizon: float, rng: random.Random,
                     trace: tuple = ()) -> list[float]:
    """Inhomogeneous Poisson replay of an intensity trace, by thinning.

    ``trace`` gives relative intensity per equal slice of the horizon
    (default :data:`DAY_TRACE`, a compressed day); arrivals are drawn
    from a dominating Poisson process at the peak intensity and kept
    with probability ``lambda(t)/peak`` (Lewis & Shedler thinning), so
    the mean over the horizon is ``rate``.
    """
    weights = list(trace) or list(DAY_TRACE)
    mean_w = sum(weights) / len(weights)
    lam = [rate * w / mean_w for w in weights]
    peak = max(lam)
    slice_len = horizon / len(lam)
    out: list[float] = []
    t = rng.expovariate(peak)
    while t < horizon:
        idx = min(int(t / slice_len), len(lam) - 1)
        if rng.random() * peak < lam[idx]:
            out.append(t)
        t += rng.expovariate(peak)
    return out


_ARRIVALS = {
    "poisson": lambda cfg, rng, horizon: poisson_arrivals(
        cfg.rate, horizon, rng),
    "bursty": lambda cfg, rng, horizon: bursty_arrivals(
        cfg.rate, horizon, rng, sources=cfg.sources,
        on_mean=cfg.on_mean, off_mean=cfg.off_mean),
    "diurnal": lambda cfg, rng, horizon: diurnal_arrivals(
        cfg.rate, horizon, rng, trace=cfg.trace),
}


def make_schedule(config: "OpenLoopConfig") -> list[float]:
    """The seeded intended-arrival schedule, relative to run start."""
    try:
        fn = _ARRIVALS[config.arrival]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {config.arrival!r}; "
            f"choose from {sorted(_ARRIVALS)}") from None
    rng = random.Random(config.seed)
    return fn(config, rng, config.warmup + config.duration)


# ---------------------------------------------------------------------------
# Configuration and result
# ---------------------------------------------------------------------------

@dataclass
class OpenLoopConfig:
    rate: float = 1000.0          # mean offered arrivals per second
    duration: float = 10.0        # measured intended-arrival window
    warmup: float = 1.0           # intended arrivals before this: warm-up
    arrival: str = "poisson"      # "poisson" | "bursty" | "diurnal"
    num_users: int = 1_000_000    # user population (arrival i is user
    #                               i % num_users; no per-user state)
    max_in_flight: int = 4096     # slot-pool size
    admit_queue: int = 16_384     # arrivals parked when slots are busy
    txn_timeout: float = 10.0     # per-request timeout (wheel entry)
    slo: float = 0.100            # seconds from *intended* arrival
    seed: int = 0
    query_mode: bool = False      # route via submit_query
    max_sim_time: float = 600.0   # safety wall
    wheel_tick: float = 0.001
    # bursty-process knobs
    sources: int = 8
    on_mean: float = 0.4
    off_mean: float = 0.6
    # diurnal trace (relative intensity per slice; () = DAY_TRACE)
    trace: tuple = ()


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run, windowed by intended arrival."""

    offered: int                  # intended arrivals in the window
    submitted: int                # of those, actually submitted
    completed: int                # fate observed before timeout
    committed: int
    aborted: int
    timeouts: int
    dropped: int                  # admit queue full at arrival
    late_admitted: int            # waited in the admit queue for a slot
    goodput: float                # committed / duration
    elapsed: float                # the measurement window (duration)
    latency: LatencyRecorder      # CO-safe: complete - intended arrival
    service_latency: LatencyRecorder  # complete - actual submission
    slo: float
    slo_attainment: float         # committed-within-SLO / offered
    abort_reasons: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def p50(self) -> float:
        return self.latency.pct(50)

    @property
    def p99(self) -> float:
        return self.latency.pct(99)

    @property
    def p999(self) -> float:
        return self.latency.pct(99.9)

    @property
    def unresolved(self) -> int:
        """Measured arrivals with no fate (wall-truncated runs only)."""
        return self.offered - self.completed - self.timeouts - self.dropped

    def result_digest(self) -> str:
        """Seeded byte-identity fingerprint over the measured outcome.

        Exact float reprs, so any drift in event ordering, admission,
        or timer semantics shows up as a digest change.
        """
        payload = repr((
            self.offered, self.submitted, self.completed, self.committed,
            self.aborted, self.timeouts, self.dropped, self.late_admitted,
            repr(self.goodput), repr(self.latency.mean), repr(self.p50),
            repr(self.p99), repr(self.p999), repr(self.slo_attainment),
            repr(self.service_latency.mean),
            tuple(sorted(self.abort_reasons.items())),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

class _OpenSlot:
    """One in-flight request as a reusable array slot (no coroutine).

    ``ev`` doubles as the occupancy/generation guard: a completion
    callback for a previous occupant finds a different (or no) event
    object and drops itself; ``gen`` guards the timeout side the same
    way, because a drained-but-not-yet-dispatched wheel entry can fire
    after the slot was resolved and re-admitted.
    """

    __slots__ = ("run", "idx", "gen", "ev", "txn", "intended", "timer")

    def __init__(self, run: "_OpenLoopRun", idx: int):
        self.run = run
        self.idx = idx
        self.gen = 0
        self.ev = None
        self.txn = None
        self.intended = 0.0
        self.timer = None

    def _completed(self, ev) -> None:
        if ev is not self.ev:
            return                 # stale fate for a previous occupant
        self.run._resolve(self, timed_out=False)


class _OpenLoopRun:
    """Run-wide state shared by every callback of one open-loop run."""

    __slots__ = ("env", "cfg", "submit", "next_txn", "wheel", "schedule",
                 "t0", "win_start", "win_end", "slots", "free", "queue",
                 "arrivals_done", "finished", "latency", "service_latency",
                 "abort_reasons", "offered", "submitted", "completed",
                 "committed", "aborted", "timeouts", "dropped",
                 "late_admitted", "slo_ok")

    def __init__(self, env: Environment, system, next_txn, cfg,
                 schedule: list[float]):
        self.env = env
        self.cfg = cfg
        self.submit = system.submit_query if cfg.query_mode \
            else system.submit
        self.next_txn = next_txn
        self.wheel = TimingWheel(env, tick=cfg.wheel_tick)
        self.schedule = schedule
        self.t0 = env.now
        self.win_start = self.t0 + cfg.warmup
        self.win_end = self.win_start + cfg.duration
        self.slots = [_OpenSlot(self, i) for i in range(cfg.max_in_flight)]
        self.free = list(range(cfg.max_in_flight - 1, -1, -1))
        self.queue: deque = deque()
        self.arrivals_done = not schedule
        self.finished = env.event()
        self.latency = LatencyRecorder("open-loop")
        self.service_latency = LatencyRecorder("service")
        self.abort_reasons: Counter = Counter()
        self.offered = 0
        self.submitted = 0
        self.completed = 0
        self.committed = 0
        self.aborted = 0
        self.timeouts = 0
        self.dropped = 0
        self.late_admitted = 0
        self.slo_ok = 0

    def start(self) -> None:
        if self.schedule:
            self.wheel.schedule(self.t0 + self.schedule[0],
                                self._arrival, 0)
        else:
            self.finished.succeed()

    # -- callbacks -------------------------------------------------------

    def _arrival(self, i: int) -> None:
        """Arrival ``i`` fires at its intended instant, no matter what."""
        intended = self.t0 + self.schedule[i]
        nxt = i + 1
        if nxt < len(self.schedule):
            # The chain files one arrival at a time: wheel occupancy
            # stays O(in-flight), not O(whole schedule).
            self.wheel.schedule(self.t0 + self.schedule[nxt],
                                self._arrival, nxt)
        else:
            self.arrivals_done = True
        if self.win_start <= intended < self.win_end:
            self.offered += 1
        if self.free:
            self._admit(intended, i, late=False)
        elif len(self.queue) < self.cfg.admit_queue:
            self.queue.append((intended, i))
        else:
            if self.win_start <= intended < self.win_end:
                self.dropped += 1
            self._maybe_finish()

    def _admit(self, intended: float, i: int, late: bool) -> None:
        slot = self.slots[self.free.pop()]
        slot.gen += 1
        slot.intended = intended
        if self.win_start <= intended < self.win_end:
            self.submitted += 1
            if late:
                self.late_admitted += 1
        txn = self.next_txn(f"user-{i % self.cfg.num_users}")
        slot.txn = txn
        ev = self.submit(txn)
        slot.ev = ev
        slot.timer = self.wheel.schedule(
            self.env.now + self.cfg.txn_timeout, self._timed_out,
            (slot, slot.gen))
        subscribe(ev, slot._completed)

    def _timed_out(self, arg) -> None:
        slot, gen = arg
        if slot.gen != gen or slot.ev is None:
            return                 # completion won, or slot re-admitted
        self._resolve(slot, timed_out=True)

    def _resolve(self, slot: _OpenSlot, timed_out: bool) -> None:
        intended = slot.intended
        txn = slot.txn
        if not timed_out:
            self.wheel.cancel(slot.timer)
        if self.win_start <= intended < self.win_end:
            if timed_out:
                self.timeouts += 1
            else:
                self.completed += 1
                co_latency = self.env.now - intended
                if txn.status is TxnStatus.COMMITTED:
                    self.committed += 1
                    self.latency.record(co_latency)
                    self.service_latency.record(
                        self.env.now - txn.submitted_at)
                    if co_latency <= self.cfg.slo:
                        self.slo_ok += 1
                else:
                    self.aborted += 1
                    reason = txn.abort_reason.value if txn.abort_reason \
                        else "unknown"
                    self.abort_reasons[reason] += 1
        slot.gen += 1              # invalidates any straggler timeout
        slot.ev = slot.txn = slot.timer = None
        self.free.append(slot.idx)
        if self.queue:
            intended, i = self.queue.popleft()
            self._admit(intended, i, late=True)
        else:
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self.arrivals_done and not self.queue
                and len(self.free) == len(self.slots)
                and not self.finished.triggered):
            self.finished.succeed()

    # -- result ----------------------------------------------------------

    def result(self) -> OpenLoopResult:
        cfg = self.cfg
        extras = {
            "arrival": cfg.arrival,
            "offered_rate": cfg.rate,
            "arrivals_total": len(self.schedule),
            "num_users": cfg.num_users,
        }
        if not self.finished.triggered:
            extras["wall_hit"] = True
        return OpenLoopResult(
            offered=self.offered, submitted=self.submitted,
            completed=self.completed, committed=self.committed,
            aborted=self.aborted, timeouts=self.timeouts,
            dropped=self.dropped, late_admitted=self.late_admitted,
            goodput=self.committed / cfg.duration if cfg.duration else 0.0,
            elapsed=cfg.duration,
            latency=self.latency, service_latency=self.service_latency,
            slo=cfg.slo,
            slo_attainment=self.slo_ok / self.offered
            if self.offered else 0.0,
            abort_reasons=dict(self.abort_reasons),
            extras=extras)


def run_open_loop(
    env: Environment,
    system,
    next_txn: Callable[[str], object],
    config: Optional[OpenLoopConfig] = None,
    schedule: Optional[list[float]] = None,
) -> OpenLoopResult:
    """Drive ``system`` with an open-loop arrival process and measure it.

    ``next_txn(user_name)`` produces the next transaction, as in the
    closed-loop driver.  ``schedule`` overrides the generated arrival
    schedule with explicit instants relative to run start (trace
    replay); otherwise :func:`make_schedule` builds it from the config's
    seeded arrival process.  The run ends when every arrival has a fate
    (completion, timeout, or drop), or at the ``max_sim_time`` wall —
    a wall-truncated run carries ``extras["wall_hit"]`` and a nonzero
    ``unresolved`` count instead of masquerading as complete.
    """
    cfg = config or OpenLoopConfig()
    if cfg.txn_timeout < cfg.wheel_tick:
        raise ValueError("txn_timeout must be at least one wheel tick")
    if schedule is None:
        schedule = make_schedule(cfg)
    run = _OpenLoopRun(env, system, next_txn, cfg, schedule)
    run.start()

    def watchdog():
        wall = env.timeout(cfg.max_sim_time)
        yield env.any_of([run.finished, wall])
        wall.cancel()

    wd = env.process(watchdog(), name="openloop-watchdog")
    env.run(until=cfg.max_sim_time + cfg.txn_timeout + 1.0, stop=wd)
    return run.result()
