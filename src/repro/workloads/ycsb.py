"""YCSB workload generator (Cooper et al.), as configured in the paper.

Table 3 parameters: record size {10, 100, **1000**, 5000} bytes, Zipfian
coefficient theta {**0.0** .. 1.0}, operations per transaction
{**1**, 2, 4, 6, 8, 10}, 100K records.  The two peak-performance
workloads are uniform update-only (100% writes) and uniform query-only
(100% reads); the skew experiments use read-modify-write transactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..txn.transaction import Op, OpType, Transaction
from .zipf import ZipfGenerator

__all__ = ["YcsbConfig", "YcsbWorkload"]


@dataclass
class YcsbConfig:
    """Knobs mirroring Table 3 (defaults underlined in the paper)."""

    record_count: int = 100_000
    record_size: int = 1000
    ops_per_txn: int = 1
    theta: float = 0.0
    # op mix for next_transaction(); the paper's experiments use the pure
    # modes via next_update()/next_query()/next_rmw().
    read_proportion: float = 0.0
    seed: int = 42
    # When True, total written bytes stay at ``record_size`` regardless of
    # ops_per_txn (Section 5.3.2: "vary the record size such that the
    # total transaction size is 1000 bytes").
    fix_total_size: bool = False


class YcsbWorkload:
    """Generates YCSB transactions over the key space usertable[0..N)."""

    def __init__(self, config: Optional[YcsbConfig] = None):
        self.config = config or YcsbConfig()
        self.rng = random.Random(self.config.seed)
        self.zipf = ZipfGenerator(self.config.record_count,
                                  self.config.theta, rng=self.rng)
        self._value_cache: dict[int, bytes] = {}

    # -- keys & values ---------------------------------------------------------

    def key(self, index: int) -> str:
        return f"user{index:012d}"

    def _value(self, size: int) -> bytes:
        value = self._value_cache.get(size)
        if value is None:
            value = bytes(self.rng.randrange(256) for _ in range(size))
            self._value_cache[size] = value
        return value

    @property
    def op_record_size(self) -> int:
        """Per-op record size (divided when fix_total_size is set)."""
        if self.config.fix_total_size and self.config.ops_per_txn > 1:
            return max(1, self.config.record_size // self.config.ops_per_txn)
        return self.config.record_size

    def initial_records(self) -> dict[str, bytes]:
        """The pre-population the paper loads before measuring."""
        value = self._value(self.config.record_size)
        return {self.key(i): value for i in range(self.config.record_count)}

    def _distinct_keys(self, count: int) -> list[str]:
        seen: set[int] = set()
        while len(seen) < count:
            seen.add(self.zipf.next())
        return [self.key(i) for i in seen]

    # -- transaction constructors ---------------------------------------------------

    def next_update(self, client: str = "client-0") -> Transaction:
        """Blind-write transaction (the 100%-write peak workload)."""
        keys = self._distinct_keys(self.config.ops_per_txn)
        value = self._value(self.op_record_size)
        ops = [Op(OpType.WRITE, key, value) for key in keys]
        return Transaction(ops=ops, client=client)

    def next_query(self, client: str = "client-0") -> Transaction:
        """Read-only transaction (the 100%-read peak workload)."""
        keys = self._distinct_keys(self.config.ops_per_txn)
        ops = [Op(OpType.READ, key) for key in keys]
        return Transaction(ops=ops, client=client)

    def next_rmw(self, client: str = "client-0") -> Transaction:
        """Read-modify-write (the skew/op-count conflict experiments)."""
        keys = self._distinct_keys(self.config.ops_per_txn)
        value = self._value(self.op_record_size)
        ops = [Op(OpType.UPDATE, key, value) for key in keys]
        return Transaction(ops=ops, client=client)

    def next_transaction(self, client: str = "client-0") -> Transaction:
        """Mixed workload using ``read_proportion``."""
        if self.rng.random() < self.config.read_proportion:
            return self.next_query(client)
        return self.next_rmw(client)
