"""Zipfian key-choice generator (YCSB-compatible).

P(rank i) is proportional to 1/i^theta; theta=0 is uniform and theta=1 is
the classic Zipf used by the paper's Smallbank and skew experiments
(Table 3: theta in {0, 0.2, ..., 1.0}).  Sampling is inverse-CDF over a
precomputed cumulative table, which is exact for every theta including
1.0 (where the textbook YCSB closed form breaks down).
"""

from __future__ import annotations

import bisect
import random
from typing import Optional

__all__ = ["ZipfGenerator"]

_CDF_CACHE: dict[tuple[int, float], list[float]] = {}


def _cdf(n: int, theta: float) -> list[float]:
    key = (n, theta)
    cached = _CDF_CACHE.get(key)
    if cached is not None:
        return cached
    weights = [1.0 / (i ** theta) for i in range(1, n + 1)]
    total = 0.0
    cdf = []
    for w in weights:
        total += w
        cdf.append(total)
    norm = cdf[-1]
    cdf = [c / norm for c in cdf]
    _CDF_CACHE[key] = cdf
    return cdf


class ZipfGenerator:
    """Draws ranks in [0, n) with Zipf(theta) popularity.

    Rank r is mapped to an item by a fixed pseudo-random permutation
    (YCSB's scrambled-zipfian behaviour) so the hottest keys are spread
    over the keyspace instead of clustering at 0.
    """

    def __init__(self, n: int, theta: float = 0.0,
                 rng: Optional[random.Random] = None,
                 scrambled: bool = True):
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self.rng = rng if rng is not None else random.Random(0)
        self.scrambled = scrambled
        self._cdf = None if theta == 0.0 else _cdf(n, theta)

    def _scramble(self, rank: int) -> int:
        if not self.scrambled:
            return rank
        # Fibonacci-hash style permutation of [0, n) — deterministic and
        # cheap; not a true bijection modulo n for all n, so fold with a
        # large odd multiplier and take the remainder (collisions only
        # permute popularity among keys, which is harmless here).
        return (rank * 2654435761) % self.n

    def next_rank(self) -> int:
        """Popularity rank (0 = hottest)."""
        if self._cdf is None:
            return self.rng.randrange(self.n)
        u = self.rng.random()
        return bisect.bisect_left(self._cdf, u)

    def next(self) -> int:
        """An item index in [0, n)."""
        return self._scramble(self.next_rank())

    def probability(self, rank: int) -> float:
        """P(draw = rank) (0-based rank)."""
        if self._cdf is None:
            return 1.0 / self.n
        prev = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - prev
