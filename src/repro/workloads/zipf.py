"""Zipfian key-choice generator (YCSB-compatible).

P(rank i) is proportional to 1/i^theta; theta=0 is uniform and theta=1 is
the classic Zipf used by the paper's Smallbank and skew experiments
(Table 3: theta in {0, 0.2, ..., 1.0}).

Sampling is O(1) per draw via Walker/Vose **alias tables** (exact for
every theta, including 1.0 where the textbook YCSB closed form breaks
down) and consumes exactly one uniform variate per draw: the integer part
of ``u * n`` selects the column and the fractional part decides between
the column's two aliased ranks.  Tables are precomputed once per
``(n, theta)`` and shared across every generator instance — hundreds of
closed-loop clients sampling the same keyspace pay the O(n) setup once.

Rank-to-key scrambling is a true **permutation** of [0, n): a fixed-key
Feistel network over the smallest covering power-of-four domain with
cycle-walking, so every key appears exactly once (the previous
multiply-mod fold admitted collisions for non-coprime n).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["ZipfGenerator"]

# (n, theta) -> (prob, alias, pmf) Vose alias tables shared across clients.
_ALIAS_CACHE: dict[tuple[int, float], tuple[list[float], list[int],
                                            list[float]]] = {}

_FEISTEL_KEYS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D)
_FEISTEL_MULT = 0x2545F491  # odd 32-bit mixing multiplier


def _alias_tables(n: int, theta: float) -> tuple[list[float], list[int],
                                                 list[float]]:
    """Vose alias tables plus the exact pmf for Zipf(n, theta)."""
    key = (n, theta)
    cached = _ALIAS_CACHE.get(key)
    if cached is not None:
        return cached
    weights = [1.0 / (i ** theta) for i in range(1, n + 1)]
    total = sum(weights)
    pmf = [w / total for w in weights]
    # Vose's stable O(n) construction.
    scaled = [p * n for p in pmf]
    prob = [0.0] * n
    alias = list(range(n))
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = (scaled[l] + scaled[s]) - 1.0
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    for i in large:
        prob[i] = 1.0
    for i in small:  # numerical leftovers: probability ~1.0
        prob[i] = 1.0
    tables = (prob, alias, pmf)
    _ALIAS_CACHE[key] = tables
    return tables


class ZipfGenerator:
    """Draws ranks in [0, n) with Zipf(theta) popularity in O(1) per draw.

    Rank r is mapped to an item by a fixed pseudo-random permutation
    (YCSB's scrambled-zipfian behaviour) so the hottest keys are spread
    over the keyspace instead of clustering at 0.
    """

    def __init__(self, n: int, theta: float = 0.0,
                 rng: Optional[random.Random] = None,
                 scrambled: bool = True):
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self.rng = rng if rng is not None else random.Random(0)
        self.scrambled = scrambled
        if theta == 0.0:
            self._prob = self._alias = self._pmf = None
        else:
            self._prob, self._alias, self._pmf = _alias_tables(n, theta)
        # Feistel geometry: the smallest 2*h-bit domain covering [0, n).
        half_bits = max(1, ((n - 1).bit_length() + 1) // 2) if n > 1 else 1
        self._half_bits = half_bits
        self._half_mask = (1 << half_bits) - 1

    def _scramble(self, rank: int) -> int:
        if not self.scrambled or self.n == 1:
            return rank
        # 3-round Feistel over [0, 4^half_bits) with cycle-walking down to
        # [0, n): a true bijection for every n, unlike a multiply-mod fold.
        half = self._half_bits
        mask = self._half_mask
        n = self.n
        value = rank
        while True:
            left = value >> half
            right = value & mask
            for key in _FEISTEL_KEYS:
                mixed = ((right ^ key) * _FEISTEL_MULT) & 0xFFFFFFFF
                mixed ^= mixed >> 15
                left, right = right, left ^ (mixed & mask)
            value = (left << half) | right
            if value < n:
                return value

    def next_rank(self) -> int:
        """Popularity rank (0 = hottest) — one uniform draw, O(1) work."""
        if self._prob is None:
            return self.rng.randrange(self.n)
        scaled = self.rng.random() * self.n
        column = int(scaled)
        if column >= self.n:  # guard against u == 1.0-epsilon rounding up
            column = self.n - 1
        if (scaled - column) < self._prob[column]:
            return column
        return self._alias[column]

    def next(self) -> int:
        """An item index in [0, n)."""
        return self._scramble(self.next_rank())

    def probability(self, rank: int) -> float:
        """P(draw = rank) (0-based rank)."""
        if self._pmf is None:
            return 1.0 / self.n
        return self._pmf[rank]
