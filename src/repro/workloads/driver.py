"""Closed-loop benchmark driver (the Caliper / YCSB-driver / OLTPBench role).

``run_closed_loop`` drives N closed-loop clients against a system; each
client submits the next workload transaction, waits for its fate, and
moves on.  Throughput is measured over a post-warm-up window of committed
transactions; latency and abort statistics mirror what the paper's
drivers report.

Clients are *multiplexed*: instead of one generator coroutine per client
(10k clients = 10k live frames resumed through the process trampoline),
clients are grouped into cohorts of explicit state-machine slots
(:class:`_ClientSlot`) driven entirely by event callbacks.  A slot issues
the identical schedule sequence the old client generator did — same
bootstrap callback, same stagger timer, same submit/timeout/AnyOf per
transaction — so seeded runs are byte-identical, but a 10k-client run
costs 10k tiny objects and zero generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.kernel import Environment, Event
from ..sim.metrics import TxnStats
from ..txn.transaction import Transaction, TxnStatus
from .ycsb import YcsbWorkload

__all__ = ["DriverConfig", "RunResult", "run_closed_loop",
           "run_closed_loop_windowed", "measure_system"]

class _ClientCohort:
    """The client-multiplexer context shared by every slot of a run.

    Slots are driven by callbacks (no process per client and none per
    cohort either), so the cohort's job is purely to hold the run-wide
    driver state each slot transition reads — one object dereference per
    wake instead of six captured closure cells per client.
    """

    __slots__ = ("env", "submit", "next_txn", "txn_timeout", "state",
                 "record", "slots", "think_time")

    def __init__(self, env: Environment, submit: Callable, next_txn: Callable,
                 txn_timeout: float, state: dict, record: Callable,
                 think_time: float = 0.0):
        self.env = env
        self.submit = submit
        self.next_txn = next_txn
        self.txn_timeout = txn_timeout
        self.state = state
        self.record = record
        self.think_time = think_time
        self.slots: list[_ClientSlot] = []


class _ClientSlot:
    """One closed-loop client as an explicit state machine.

    State transitions mirror the retired client generator exactly:
    bootstrap (same ``_schedule_call`` position a ``Process`` bootstrap
    used), optional stagger timer, then a submit → wait-fate → record
    loop where the wait parks one callback on an ``AnyOf(fate, timer)``.
    An infrastructure failure delivered through the AnyOf (the generator
    form's ``except Exception: continue``) moves straight to the next
    transaction.
    """

    __slots__ = ("cohort", "name", "stagger", "txn", "ev", "timer")

    def __init__(self, cohort: _ClientCohort, name: str, stagger: float):
        self.cohort = cohort
        self.name = name
        self.stagger = stagger
        self.txn: Optional[Transaction] = None
        self.ev: Optional[Event] = None
        self.timer = None

    def _bootstrap(self, _arg) -> None:
        if self.stagger > 0:
            timer = self.cohort.env.timeout(self.stagger)
            timer.callbacks.append(self._staggered)
        else:
            self._next()

    def _staggered(self, _ev: Event) -> None:
        self._next()

    def _next(self) -> None:
        """Submit transactions until parked on a fate, or the run is done."""
        cohort = self.cohort
        env = cohort.env
        state = cohort.state
        if state["done"]:
            self.txn = self.ev = self.timer = None
            return
        txn = cohort.next_txn(self.name)
        ev = cohort.submit(txn)
        timer = env.timeout(cohort.txn_timeout)
        fate = env.any_of([ev, timer])
        self.txn, self.ev, self.timer = txn, ev, timer
        fate.callbacks.append(self._woke)

    def _woke(self, fate: Event) -> None:
        # Withdraw the losing timer so completed transactions don't each
        # leave a dead heap entry behind for txn_timeout seconds.
        self.timer.cancel()
        cohort = self.cohort
        ev = self.ev
        if fate._ok:
            if not ev._triggered:
                # Count timeouts observed before measurement completed;
                # post-measurement stragglers are not part of the result.
                # Warm-up-phase timeouts are tallied separately — every
                # other statistic is measured-window-only, and a slow
                # warm-up must not masquerade as measured-window loss.
                state = cohort.state
                if not state["done"]:
                    if state["warmup_active"]:
                        state["warmup_timeouts"] += 1
                    else:
                        state["timeouts"] += 1
            elif ev._ok:
                cohort.record(self.txn)
        if cohort.think_time > 0.0:
            # Paced (open-ish) client: think before the next submission.
            # Zero by default — the historical fully-closed loop issues
            # the identical event sequence when no think time is set.
            cohort.env.timeout(cohort.think_time).callbacks.append(
                self._staggered)
        else:
            self._next()


@dataclass
class DriverConfig:
    clients: int = 64
    # Completions 1..warmup_txns-1 are warm-up and discarded; the
    # measurement clock starts when the last warm-up transaction completes
    # (at run start for warmup_txns <= 1), and completion number
    # warmup_txns is the first *measured* transaction.
    warmup_txns: int = 200
    measure_txns: int = 2000
    max_sim_time: float = 600.0
    txn_timeout: float = 60.0      # per-transaction client timeout
    query_mode: bool = False       # route via submit_query
    think_time: float = 0.0        # pause between a client's transactions;
    #                                chaos runs pace load with this so a
    #                                multi-second fault schedule doesn't
    #                                mean simulating 10^5 transactions


@dataclass
class RunResult:
    """Outcome of one measured run."""

    tps: float
    stats: TxnStats
    elapsed: float
    measured: int
    timeouts: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def abort_rate(self) -> float:
        return self.stats.abort_rate

    @property
    def mean_latency(self) -> float:
        return self.stats.latency.mean

    def phase_means(self) -> dict[str, float]:
        return {name: rec.mean
                for name, rec in self.stats.phase_latency.items()}


class _RunHandle:
    """Everything a driver loop needs between set-up and the result.

    Produced by :func:`prepare_closed_loop`; consumed by
    :func:`finalize_closed_loop` once the simulation has been advanced —
    in one ``env.run`` for the serial path, or window by window for the
    conservative-parallel path.  Every statistic lives in ``state`` /
    ``stats`` and is guarded by ``state["done"]``, so *how far past* the
    finish point the simulation runs cannot change the result.
    """

    __slots__ = ("env", "cfg", "stats", "state", "finished",
                 "watchdog_proc")

    def __init__(self, env, cfg, stats, state, finished, watchdog_proc):
        self.env = env
        self.cfg = cfg
        self.stats = stats
        self.state = state
        self.finished = finished
        self.watchdog_proc = watchdog_proc


def prepare_closed_loop(
    env: Environment,
    system,
    next_txn: Callable[[str], Transaction],
    config: Optional[DriverConfig] = None,
) -> _RunHandle:
    """Set up clients, stats, and the watchdog; do not advance the clock.

    ``next_txn(client_name)`` produces the next transaction for a client.
    The run finishes when ``measure_txns`` post-warm-up completions are
    recorded (or the safety wall of ``max_sim_time`` is hit).
    """
    cfg = config or DriverConfig()
    stats = TxnStats()
    state = {
        "completed": 0,
        "run_started_at": env.now,
        "measure_started_at": None,
        "measure_count": 0,
        "measure_committed": 0,
        "timeouts": 0,
        "warmup_timeouts": 0,
        # True while completions are still warm-up; runs without a
        # warm-up phase (warmup_txns <= 1) have no warm-up timeouts.
        "warmup_active": cfg.warmup_txns > 1,
        "done": False,
        "finished_at": None,
    }
    finished = env.event()

    def record(txn: Transaction) -> None:
        state["completed"] += 1
        if state["measure_started_at"] is None:
            last_warmup = cfg.warmup_txns - 1
            if state["completed"] <= last_warmup:
                if state["completed"] == last_warmup:
                    # The last warm-up completion starts the measurement
                    # clock; the *next* completion is the first measured.
                    state["measure_started_at"] = env.now
                    state["warmup_active"] = False
                return
            # warmup_txns <= 1: no warm-up phase — the window covers the
            # whole run and this very completion is measured.
            state["measure_started_at"] = state["run_started_at"]
        if state["done"]:
            return
        state["measure_count"] += 1
        latency = env.now - txn.submitted_at
        if txn.status is TxnStatus.COMMITTED:
            state["measure_committed"] += 1
            stats.commit(latency)
        else:
            stats.abort(txn.abort_reason.value if txn.abort_reason
                        else "unknown")
        for phase, duration in txn.phases.items():
            stats.record_phase(phase, duration)
        if state["measure_count"] >= cfg.measure_txns:
            state["done"] = True
            state["finished_at"] = env.now
            if not finished.triggered:
                finished.succeed()

    # Cohort multiplexer: clients are state-machine slots, not processes.
    # Bootstrap callbacks are scheduled in client order — the identical
    # position the per-client Process bootstraps occupied — and start-up
    # is staggered so closed-loop clients don't convoy in lockstep.
    submit = system.submit_query if cfg.query_mode else system.submit
    cohort = _ClientCohort(env, submit, next_txn, cfg.txn_timeout, state,
                           record, think_time=cfg.think_time)
    for i in range(cfg.clients):
        slot = _ClientSlot(cohort, f"client-{i}", i * 0.0003)
        cohort.slots.append(slot)
        env._schedule_call(slot._bootstrap, None)

    def watchdog():
        wall = env.timeout(cfg.max_sim_time)
        yield env.any_of([finished, wall])
        wall.cancel()
        state["done"] = True
        if state["finished_at"] is None:
            state["finished_at"] = env.now

    watchdog_proc = env.process(watchdog(), name="driver-watchdog")
    return _RunHandle(env, cfg, stats, state, finished, watchdog_proc)


def finalize_closed_loop(handle: _RunHandle) -> RunResult:
    """Assemble the :class:`RunResult` from a finished run's state."""
    env = handle.env
    state = handle.state
    stats = handle.stats
    started = state["measure_started_at"]
    ended = state["finished_at"] if state["finished_at"] is not None else env.now
    extras: dict = {}
    if state["warmup_timeouts"]:
        extras["warmup_timeouts"] = state["warmup_timeouts"]
    if not handle.finished.triggered:
        # The max_sim_time wall fired before measure_txns completions: the
        # run is truncated, and an undersized point must not masquerade as
        # a full one.
        extras["wall_hit"] = True
    if started is None or ended <= started:
        return RunResult(tps=0.0, stats=stats, elapsed=0.0,
                         measured=state["measure_count"],
                         timeouts=state["timeouts"], extras=extras)
    elapsed = ended - started
    # Throughput is *goodput*: committed transactions per second (what
    # Caliper/YCSB report as successful-operation throughput).
    extras["completed_tps"] = state["measure_count"] / elapsed
    return RunResult(
        tps=state["measure_committed"] / elapsed,
        stats=stats,
        elapsed=elapsed,
        measured=state["measure_count"],
        timeouts=state["timeouts"],
        extras=extras,
    )


def run_closed_loop(
    env: Environment,
    system,
    next_txn: Callable[[str], Transaction],
    config: Optional[DriverConfig] = None,
) -> RunResult:
    """Drive ``system`` with closed-loop clients and measure steady state.

    ``next_txn(client_name)`` produces the next transaction for a client.
    The run finishes when ``measure_txns`` post-warm-up completions are
    recorded (or the safety wall of ``max_sim_time`` is hit).
    """
    handle = prepare_closed_loop(env, system, next_txn, config)
    cfg = handle.cfg
    # Stop simulating as soon as the watchdog fires: every statistic in the
    # RunResult is final by then, and draining the remaining event horizon
    # (idle consensus timers, heartbeats, stragglers) is pure wall-clock
    # waste — it used to dominate short runs.
    env.run(until=cfg.max_sim_time + cfg.txn_timeout + 1.0,
            stop=handle.watchdog_proc)
    return finalize_closed_loop(handle)


def run_closed_loop_windowed(
    env: Environment,
    system,
    next_txn: Callable[[str], Transaction],
    coupler,
    config: Optional[DriverConfig] = None,
) -> RunResult:
    """Closed-loop measurement in conservative-lookahead windows.

    Same clients, same watchdog, same result assembly as
    :func:`run_closed_loop`, but the clock advances one lookahead window
    at a time with a :class:`~repro.sim.parallel.ShardCoupler` barrier
    around each: completions due in the window are injected before it
    runs, requests generated during it are flushed to the shard workers
    after.  The run ends at the first window boundary past the finish
    point; the ``state["done"]`` guards make the extra tail a no-op for
    the result, so the returned :class:`RunResult` is byte-identical to
    the single-heap lookahead run's.
    """
    handle = prepare_closed_loop(env, system, next_txn, config)
    cfg = handle.cfg
    state = handle.state
    # The barrier period: couplers with a staggered protocol expose a
    # stride larger than the one-hop lookahead window.
    window = getattr(coupler, "stride", coupler.window)
    horizon = cfg.max_sim_time + cfg.txn_timeout + 1.0
    boundary = 0.0
    try:
        while not state["done"] and boundary < horizon:
            boundary += window
            coupler.begin_window(boundary)
            env.run(until=boundary)
            if state["done"]:
                break
            coupler.end_window(boundary)
    finally:
        coupler.shutdown()
    result = finalize_closed_loop(handle)
    stats = getattr(coupler, "stats", None)
    if stats is not None:
        # Kernel telemetry (barrier counts, elision, byte volumes,
        # wall-clock barrier wait).  Outside the fingerprint projection:
        # some fields depend on worker-pool size, i.e. the box.
        result.extras["parallel_kernel"] = dict(stats)
    return result


def measure_system(
    system_factory: Callable[[Environment], object],
    workload_factory: Callable[[], YcsbWorkload],
    mode: str = "update",
    driver: Optional[DriverConfig] = None,
    load_records: bool = True,
) -> RunResult:
    """Build a fresh environment + system + workload, then run one mode.

    ``mode``: "update" (blind writes), "query" (reads), or "rmw"
    (read-modify-write).
    """
    env = Environment()
    system = system_factory(env)
    workload = workload_factory()
    if load_records:
        system.load(workload.initial_records())
    maker = {
        "update": workload.next_update,
        "query": workload.next_query,
        "rmw": workload.next_rmw,
    }[mode]
    cfg = driver or DriverConfig()
    if mode == "query":
        cfg = DriverConfig(**{**cfg.__dict__, "query_mode": True})
    return run_closed_loop(env, system, maker, cfg)
