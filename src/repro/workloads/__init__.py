"""Workload generators (YCSB, Smallbank) and the closed-loop driver."""

from .driver import DriverConfig, RunResult, measure_system, run_closed_loop
from .openloop import (OpenLoopConfig, OpenLoopResult, make_schedule,
                       run_open_loop)
from .smallbank import (SmallbankConfig, SmallbankWorkload, decode_balance,
                        encode_balance)
from .ycsb import YcsbConfig, YcsbWorkload
from .zipf import ZipfGenerator

__all__ = [
    "DriverConfig",
    "OpenLoopConfig",
    "OpenLoopResult",
    "RunResult",
    "SmallbankConfig",
    "SmallbankWorkload",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfGenerator",
    "decode_balance",
    "encode_balance",
    "make_schedule",
    "measure_system",
    "run_closed_loop",
    "run_open_loop",
]
