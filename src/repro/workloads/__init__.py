"""Workload generators (YCSB, Smallbank) and the closed-loop driver."""

from .driver import DriverConfig, RunResult, measure_system, run_closed_loop
from .smallbank import (SmallbankConfig, SmallbankWorkload, decode_balance,
                        encode_balance)
from .ycsb import YcsbConfig, YcsbWorkload
from .zipf import ZipfGenerator

__all__ = [
    "DriverConfig",
    "RunResult",
    "SmallbankConfig",
    "SmallbankWorkload",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfGenerator",
    "decode_balance",
    "encode_balance",
    "measure_system",
    "run_closed_loop",
]
