"""Smallbank OLTP workload (OLTPBench profile used by the paper).

One million customers, each with a checking and a savings account.  Five
update procedures plus one read-only query, each touching one or two
records and carrying a balance constraint — so unlike YCSB, Smallbank
transactions can abort on *application logic* (insufficient funds), the
"constraints" the paper cites when Fabric/TiDB throughput drops from YCSB
to Smallbank (Figure 6).

Balances are stored big-endian in 8 bytes, so record sizes are small —
the property that lets Quorum *improve* on Smallbank versus 1 kB YCSB
records (Section 5.1.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..txn.transaction import Op, OpType, Transaction
from .zipf import ZipfGenerator

__all__ = ["SmallbankConfig", "SmallbankWorkload", "encode_balance",
           "decode_balance"]

INITIAL_BALANCE = 10_000


def encode_balance(amount: int) -> bytes:
    """Store a (possibly negative) balance in 8 bytes."""
    return amount.to_bytes(8, "big", signed=True)


def decode_balance(raw: bytes) -> int:
    if not raw:
        return 0
    return int.from_bytes(raw, "big", signed=True)


@dataclass
class SmallbankConfig:
    num_accounts: int = 1_000_000
    theta: float = 1.0            # Fig. 6: Zipfian with theta = 1
    seed: int = 7
    # OLTPBench default mix (uniform over the five update procedures);
    # set query_proportion > 0 to mix in Balance reads.
    query_proportion: float = 0.0
    # Restrict the mix to a subset of procedures.  The chaos harness uses
    # ("send_payment", "amalgamate") — the two money-*moving* procedures —
    # so the total balance is an invariant the fault run can check.
    procedures: Optional[tuple[str, ...]] = None


class SmallbankWorkload:
    """Generates Smallbank transactions with balance-constraint logic."""

    PROCEDURES = ("transact_savings", "deposit_checking", "send_payment",
                  "write_check", "amalgamate")

    def __init__(self, config: Optional[SmallbankConfig] = None):
        self.config = config or SmallbankConfig()
        self.rng = random.Random(self.config.seed)
        self.zipf = ZipfGenerator(self.config.num_accounts,
                                  self.config.theta, rng=self.rng)

    # -- account keys -----------------------------------------------------------

    def checking(self, customer: int) -> str:
        return f"checking{customer:09d}"

    def savings(self, customer: int) -> str:
        return f"savings{customer:09d}"

    def initial_records(self) -> dict[str, bytes]:
        value = encode_balance(INITIAL_BALANCE)
        records = {}
        for i in range(self.config.num_accounts):
            records[self.checking(i)] = value
            records[self.savings(i)] = value
        return records

    def _customer(self) -> int:
        return self.zipf.next()

    def _two_customers(self) -> tuple[int, int]:
        a = self._customer()
        b = self._customer()
        while b == a:
            b = self._customer()
        return a, b

    # -- procedures -------------------------------------------------------------------

    def transact_savings(self, client: str) -> Transaction:
        """Add (or deduct) from savings; aborts if it would go negative."""
        cust = self._customer()
        key = self.savings(cust)
        amount = self.rng.randint(-200, 500)

        def logic(reads: dict[str, bytes]):
            balance = decode_balance(reads[key])
            if balance + amount < 0:
                return None  # constraint violation
            return {key: encode_balance(balance + amount)}

        return Transaction(ops=[Op(OpType.UPDATE, key, b"")],
                           client=client, logic=logic)

    def deposit_checking(self, client: str) -> Transaction:
        cust = self._customer()
        key = self.checking(cust)
        amount = self.rng.randint(1, 500)

        def logic(reads: dict[str, bytes]):
            balance = decode_balance(reads[key])
            return {key: encode_balance(balance + amount)}

        return Transaction(ops=[Op(OpType.UPDATE, key, b"")],
                           client=client, logic=logic)

    def send_payment(self, client: str) -> Transaction:
        """Move money between two customers' checking accounts."""
        a, b = self._two_customers()
        src, dst = self.checking(a), self.checking(b)
        amount = self.rng.randint(1, 300)

        def logic(reads: dict[str, bytes]):
            src_balance = decode_balance(reads[src])
            if src_balance < amount:
                return None
            dst_balance = decode_balance(reads[dst])
            return {src: encode_balance(src_balance - amount),
                    dst: encode_balance(dst_balance + amount)}

        return Transaction(ops=[Op(OpType.UPDATE, src, b""),
                                Op(OpType.UPDATE, dst, b"")],
                           client=client, logic=logic)

    def write_check(self, client: str) -> Transaction:
        """Cash a check against checking + savings; overdraft penalty."""
        cust = self._customer()
        check_key, save_key = self.checking(cust), self.savings(cust)
        amount = self.rng.randint(1, 700)

        def logic(reads: dict[str, bytes]):
            total = (decode_balance(reads[check_key])
                     + decode_balance(reads[save_key]))
            penalty = 1 if total < amount else 0
            new_checking = decode_balance(reads[check_key]) - amount - penalty
            return {check_key: encode_balance(new_checking)}

        return Transaction(ops=[Op(OpType.UPDATE, check_key, b""),
                                Op(OpType.READ, save_key)],
                           client=client, logic=logic)

    def amalgamate(self, client: str) -> Transaction:
        """Move all of one customer's funds to another's checking."""
        a, b = self._two_customers()
        sa, ca, cb = self.savings(a), self.checking(a), self.checking(b)

        def logic(reads: dict[str, bytes]):
            total = decode_balance(reads[sa]) + decode_balance(reads[ca])
            dst = decode_balance(reads[cb])
            return {sa: encode_balance(0), ca: encode_balance(0),
                    cb: encode_balance(dst + total)}

        return Transaction(ops=[Op(OpType.UPDATE, sa, b""),
                                Op(OpType.UPDATE, ca, b""),
                                Op(OpType.UPDATE, cb, b"")],
                           client=client, logic=logic)

    def balance(self, client: str) -> Transaction:
        """Read-only: total balance of one customer."""
        cust = self._customer()
        return Transaction(ops=[Op(OpType.READ, self.checking(cust)),
                                Op(OpType.READ, self.savings(cust))],
                           client=client)

    # -- driver interface -------------------------------------------------------------

    def next_transaction(self, client: str = "client-0") -> Transaction:
        if (self.config.query_proportion > 0
                and self.rng.random() < self.config.query_proportion):
            return self.balance(client)
        procedure = self.rng.choice(self.config.procedures
                                    or self.PROCEDURES)
        return getattr(self, procedure)(client)
