"""Serial (sequential) transaction execution — the blockchain default.

Section 3.2: most blockchains execute transactions one at a time in ledger
order, trading concurrency for determinism.  ``SerialExecutor.execute``
is the deterministic state-transition function replayed by every replica.
"""

from __future__ import annotations

from typing import Optional

from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction

__all__ = ["SerialExecutor"]


class SerialExecutor:
    """Applies transactions in order against a versioned store."""

    def __init__(self, store: VersionedStore):
        self.store = store
        self.executed = 0
        self.logic_aborts = 0

    def execute(self, txn: Transaction, version: int) -> bool:
        """Run ``txn`` at ``version``; returns False on a logic abort.

        Reads populate ``txn.read_set``, writes go straight to the store
        stamped with ``version`` — there is no conflict to detect because
        execution is serial.
        """
        reads: dict[str, bytes] = {}
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, ver = self.store.get(op.key)
                txn.read_set[op.key] = ver
                reads[op.key] = value if value is not None else b""
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                self.logic_aborts += 1
                return False
            txn.write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                txn.write_set.setdefault(op.key, op.value)
        self.store.apply_write_set(txn.write_set, version)
        txn.commit_version = version
        txn.mark_committed()
        self.executed += 1
        return True

    def replay(self, txns: list[Transaction], start_version: int) -> int:
        """Replay a committed sequence (what every blockchain node does)."""
        version = start_version
        for txn in txns:
            version += 1
            self.execute(txn, version)
        return version
