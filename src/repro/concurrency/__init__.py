"""Concurrency control: serial, OCC (Fabric), 2PL (Spanner), percolator
(TiDB), plus the weakened-isolation schedulers behind
``extras["isolation"]`` (snapshot isolation, read committed)."""

from .occ import OccSimulator, OccValidator, endorsements_consistent
from .percolator import PercolatorStore, PrewriteConflict, TimestampOracle
from .rc import ReadCommittedScheduler
from .serial import SerialExecutor
from .si import LEVELS, SnapshotScheduler, isolation_level
from .twopl import LockDenied, LockManager, LockMode

__all__ = [
    "LEVELS",
    "LockDenied",
    "LockManager",
    "LockMode",
    "OccSimulator",
    "OccValidator",
    "PercolatorStore",
    "PrewriteConflict",
    "ReadCommittedScheduler",
    "SerialExecutor",
    "SnapshotScheduler",
    "TimestampOracle",
    "endorsements_consistent",
    "isolation_level",
]
