"""Concurrency control: serial, OCC (Fabric), 2PL (Spanner), percolator (TiDB)."""

from .occ import OccSimulator, OccValidator, endorsements_consistent
from .percolator import PercolatorStore, PrewriteConflict, TimestampOracle
from .serial import SerialExecutor
from .twopl import LockDenied, LockManager, LockMode

__all__ = [
    "LockDenied",
    "LockManager",
    "LockMode",
    "OccSimulator",
    "OccValidator",
    "PercolatorStore",
    "PrewriteConflict",
    "SerialExecutor",
    "TimestampOracle",
    "endorsements_consistent",
]
