"""Strict two-phase locking with wait-die deadlock avoidance.

The pessimistic concurrency control used by Spanner in the paper's
Figure 14: conflicting transactions *contend for locks* (queueing) rather
than aborting instantly — which is why Spanner falls behind TiDB's
abort-fast approach under a skewed workload.

Lock waits are simulated: ``acquire`` returns a kernel event that fires
when the lock is granted, so hold times translate into real queueing in
the DES.  Deadlock avoidance is wait-die (an older transaction may wait
for a younger holder; a younger requester dies immediately and restarts
with its original timestamp) — Spanner proper uses wound-wait, but both
are timestamp-priority schemes with the same contention behaviour, and
wait-die needs no holder-kill channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Optional

from ..sim.kernel import Environment, Event

__all__ = ["LockMode", "LockManager", "LockDenied"]


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockDenied(Exception):
    """Raised (via event failure) when wait-die kills a younger requester."""


@dataclass
class _LockRequest:
    txn_id: int
    mode: LockMode
    event: Event


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: Deque[_LockRequest] = field(default_factory=deque)


class LockManager:
    """Per-key S/X locks with wait-die priority (smaller txn id = older)."""

    def __init__(self, env: Environment, policy: str = "wait-die"):
        if policy not in ("wait-die", "queue"):
            raise ValueError(f"unknown policy {policy!r}")
        self.env = env
        # "wait-die": timestamp-priority deadlock avoidance (younger
        # requesters die).  "queue": always wait in FIFO order — safe only
        # when every transaction acquires its locks in a global key order
        # (as the Spanner model does), which rules out deadlock cycles.
        self.policy = policy
        self._locks: dict[str, _LockState] = {}
        self.grants = 0
        self.dies = 0
        self.wait_events = 0

    def _conflicters(self, state: _LockState, txn_id: int,
                     mode: LockMode) -> list[int]:
        out = []
        for holder, held_mode in state.holders.items():
            if holder == txn_id:
                continue
            if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                out.append(holder)
        return out

    def acquire(self, txn_id: int, key: str, mode: LockMode) -> Event:
        """Request a lock; fires on grant, fails (LockDenied) on wait-die."""
        state = self._locks.setdefault(key, _LockState())
        ev = self.env.event()
        held = state.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                self.grants += 1
                ev.succeed((key, mode))
                return ev
            if len(state.holders) == 1:
                state.holders[txn_id] = LockMode.EXCLUSIVE  # sole-sharer upgrade
                self.grants += 1
                ev.succeed((key, mode))
                return ev
        conflicters = self._conflicters(state, txn_id, mode)
        if not conflicters and not state.waiters:
            state.holders[txn_id] = mode
            self.grants += 1
            ev.succeed((key, mode))
            return ev
        if self.policy == "wait-die":
            # only wait if older than every conflicting holder/waiter
            blockers = conflicters + [w.txn_id for w in state.waiters
                                      if not w.event.triggered]
            if any(other < txn_id for other in blockers):
                self.dies += 1
                ev.fail(LockDenied(f"txn {txn_id} dies waiting on {key}"))
                return ev
        self.wait_events += 1
        state.waiters.append(_LockRequest(txn_id, mode, ev))
        return ev

    def release(self, txn_id: int, key: str) -> None:
        state = self._locks.get(key)
        if state is None:
            return
        state.holders.pop(txn_id, None)
        state.waiters = deque(r for r in state.waiters
                              if not (r.txn_id == txn_id and r.event.triggered))
        self._grant_waiters(state)
        if not state.holders and not state.waiters:
            del self._locks[key]

    def release_all(self, txn_id: int, keys: Optional[list[str]] = None) -> None:
        """Release every lock held (and waiting request) of ``txn_id``."""
        targets = keys if keys is not None else list(self._locks)
        for key in targets:
            state = self._locks.get(key)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            for req in list(state.waiters):
                if req.txn_id == txn_id and not req.event.triggered:
                    req.event.fail(LockDenied("released while waiting"))
            state.waiters = deque(r for r in state.waiters
                                  if r.txn_id != txn_id)
            self._grant_waiters(state)
            if not state.holders and not state.waiters:
                del self._locks[key]

    def _grant_waiters(self, state: _LockState) -> None:
        while state.waiters:
            req = state.waiters[0]
            if req.event.triggered:
                state.waiters.popleft()
                continue
            if not self._conflicters(state, req.txn_id, req.mode):
                state.waiters.popleft()
                state.holders[req.txn_id] = req.mode
                self.grants += 1
                req.event.succeed((None, req.mode))
            else:
                break

    def held_by(self, txn_id: int) -> list[str]:
        return [key for key, state in self._locks.items()
                if txn_id in state.holders]

    def queue_length(self, key: str) -> int:
        state = self._locks.get(key)
        return len(state.waiters) if state else 0
