"""Read-committed scheduler: snapshot staging, blind last-writer-wins apply.

The cheapest point of the isolation spectrum: transactions read the
latest committed state (no stale reads — reads still happen at one
committed instant) but nothing validates at commit, so two concurrent
read-modify-writes of the same key both install and the first write is
silently lost.  That hazard is deliberate — it is what the
`isolation_ablation` experiment measures (throughput gained vs lost
updates admitted) and what :mod:`repro.analysis.serializability`
classifies post-hoc.
"""

from __future__ import annotations

from .si import SnapshotScheduler

__all__ = ["ReadCommittedScheduler"]


class ReadCommittedScheduler(SnapshotScheduler):
    """Snapshot staging with first-committer-wins disabled."""

    level = "read_committed"
    first_committer_wins = False
