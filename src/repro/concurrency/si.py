"""Snapshot-isolation scheduler shared by the weakened-isolation paths.

``extras["isolation"]`` turns isolation into a config axis (the paper
fixes one concurrency-control scheme per system; the real design space
trades anomalies for throughput).  This module supplies the shared
machinery: a stage/validate/apply executor over the existing
:class:`~repro.txn.state.VersionedStore` plus the level validator every
system calls at construction.

:class:`SnapshotScheduler` implements snapshot isolation as the
systems' weak paths use it:

* **stage** — read every input key from the *current committed state*
  (one simulated instant: the snapshot), run the transaction's logic,
  and buffer the derived write set.  Pure bookkeeping; the caller
  charges the read/execute costs through its own cost model.
* **reserve/release** — optional write intents for client-driven paths
  (tikv): first-updater-wins over the window between staging and the
  replicated write-back.
* **apply** — validate first-committer-wins (every written key must
  still hold the version the snapshot read; otherwise abort with
  ``WRITE_WRITE_CONFLICT``) and install the write set atomically at
  the next version.  Serial callers (raft apply loops, block
  producers) make the validate+install atomic by construction.

:class:`~repro.concurrency.rc.ReadCommittedScheduler` subclasses this
with first-committer-wins off: blind last-writer-wins applies, which is
exactly the lost-update hazard the anomaly detector then observes.
"""

from __future__ import annotations

from typing import Optional

from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction

__all__ = ["LEVELS", "SnapshotScheduler", "isolation_level"]

#: The isolation spectrum ``extras["isolation"]`` accepts.
LEVELS = ("serializable", "snapshot", "read_committed")


def isolation_level(extras: Optional[dict]) -> str:
    """Resolve and validate ``extras["isolation"]`` (default serializable)."""
    level = (extras or {}).get("isolation", "serializable")
    if level not in LEVELS:
        raise ValueError(
            f"unknown isolation level {level!r}; expected one of {LEVELS}")
    return level


class SnapshotScheduler:
    """Stage/validate/apply executor for snapshot isolation."""

    level = "snapshot"
    first_committer_wins = True

    def __init__(self, store: VersionedStore):
        self.store = store
        self.staged = 0
        self.conflicts = 0
        self.logic_aborts = 0
        # Live write intents (key -> txn_id) for client-driven paths.
        self._intents: dict[str, int] = {}

    # -- staging -------------------------------------------------------------

    def stage(self, txn: Transaction) -> bool:
        """Snapshot-read the inputs, run logic, buffer the write set.

        Returns False (and marks the txn LOGIC-aborted) on a constraint
        violation; the caller then skips consensus/apply entirely.
        """
        reads: dict[str, bytes] = {}
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, version = self.store.get(op.key)
                txn.read_set[op.key] = version
                reads[op.key] = value if value is not None else b""
        return self.derive(txn, reads)

    def derive(self, txn: Transaction, reads: dict[str, bytes]) -> bool:
        """Turn staged reads into the buffered write set (logic step).

        Split from :meth:`stage` for paths that must charge each read
        through their own replicated read machinery (tikv) and hand the
        values in.
        """
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                self.logic_aborts += 1
                return False
            txn.write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                txn.write_set.setdefault(op.key, op.value)
        self.staged += 1
        return True

    # -- write intents (client-driven paths) ---------------------------------

    def reserve(self, txn: Transaction) -> bool:
        """First-updater-wins: claim intents on the staged write set.

        Covers the window between staging and the replicated write-back
        on paths where apply is per-key rather than one atomic install.
        Conflicting reservation or a superseded snapshot read aborts.
        """
        if self.first_committer_wins:
            for key in txn.write_set:
                owner = self._intents.get(key)
                if owner is not None and owner != txn.txn_id:
                    txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                    self.conflicts += 1
                    return False
                seen = txn.read_set.get(key)
                if seen is not None and self.store.version(key) != seen:
                    txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                    self.conflicts += 1
                    return False
        for key in txn.write_set:
            self._intents[key] = txn.txn_id
        return True

    def release(self, txn: Transaction) -> None:
        for key in txn.write_set:
            if self._intents.get(key) == txn.txn_id:
                del self._intents[key]

    # -- validated apply ------------------------------------------------------

    def apply(self, txn: Transaction, version: int) -> bool:
        """First-committer-wins validate, then install atomically.

        The caller must be serial with respect to other applies (raft
        apply loop, block producer) so the check+install pair is atomic.
        """
        if self.first_committer_wins:
            for key in txn.write_set:
                seen = txn.read_set.get(key)
                if seen is not None and self.store.version(key) != seen:
                    txn.mark_aborted(AbortReason.WRITE_WRITE_CONFLICT)
                    self.conflicts += 1
                    return False
        self.store.apply_write_set(txn.write_set, version)
        txn.commit_version = version
        txn.mark_committed()
        return True
