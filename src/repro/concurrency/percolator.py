"""Percolator-style snapshot-isolation commit (TiDB's transaction layer).

TiDB transactions read at a start timestamp, buffer writes, then run a
two-phase commit over the storage: *prewrite* locks every written key
(choosing one as the **primary lock**) and aborts on write-write conflict
(a committed version newer than the start timestamp, or a live lock held
by another transaction); *commit* installs the commit timestamp on the
primary, which atomically decides the transaction, then asynchronously on
the secondaries.

The paper's Figure 9 finding — throughput collapsing 5461 -> 173 tps as
skew grows while only 30% of transactions abort — comes from the latch on
the primary record: the coordinator holds it across the prewrite+commit
consensus writes, so hot keys serialize *waiting*, not just aborting.  The
latch hold time is charged by the TiDB system model; this module supplies
the lock table, conflict detection, and timestamp oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..txn.state import VersionedStore

__all__ = ["TimestampOracle", "PercolatorStore", "PrewriteConflict"]


class TimestampOracle:
    """Monotonic timestamp allocator (TiDB's Placement Driver role)."""

    def __init__(self):
        self._ts = 0

    def next(self) -> int:
        self._ts += 1
        return self._ts

    @property
    def current(self) -> int:
        return self._ts


@dataclass
class PrewriteConflict(Exception):
    """Write-write conflict or lock collision during prewrite."""

    key: str
    reason: str

    def __str__(self) -> str:
        return f"prewrite conflict on {self.key!r}: {self.reason}"


@dataclass
class _Lock:
    txn_id: int
    primary: str
    start_ts: int


class PercolatorStore:
    """Versioned store + percolator lock column.

    Versions in the underlying :class:`VersionedStore` are commit
    timestamps, enabling snapshot reads and conflict checks.
    """

    def __init__(self, store: Optional[VersionedStore] = None):
        self.store = store if store is not None else VersionedStore()
        self._locks: dict[str, _Lock] = {}
        # key -> commit_ts of the last percolator commit.  The backing
        # store may be shared with a replication layer that stamps its
        # own apply counters, so ``store.version`` mixes two clocks —
        # fine for the equality revalidation, unsound for ordered
        # comparisons.  ``commit_clock=True`` prewrites compare against
        # this oracle-coherent table instead.
        self._commit_ts: dict[str, int] = {}
        # key -> latest commit_ts (the store's version doubles as this)
        self.prewrites = 0
        self.conflicts = 0

    # -- reads ---------------------------------------------------------------

    def snapshot_read(self, key: str, start_ts: int) -> tuple[Optional[bytes], int]:
        """Read the latest version visible at ``start_ts``.

        Single-version approximation: returns the current committed value
        when its commit_ts <= start_ts; a concurrent newer commit surfaces
        later as a prewrite conflict rather than a stale read.
        """
        value, version = self.store.get(key)
        if version <= start_ts:
            return value, version
        return value, version  # read-committed fallback; conflict caught at prewrite

    def is_locked(self, key: str) -> bool:
        return key in self._locks

    def lock_owner(self, key: str) -> Optional[int]:
        lock = self._locks.get(key)
        return lock.txn_id if lock else None

    # -- prewrite -------------------------------------------------------------

    def prewrite(self, txn_id: int, keys: list[str], primary: str,
                 start_ts: int,
                 read_versions: Optional[dict[str, int]] = None,
                 first_committer_wins: bool = True,
                 commit_clock: bool = False) -> None:
        """Lock all written keys; raises :class:`PrewriteConflict`.

        Checks, per key: (1) no committed version newer than start_ts
        (write-write conflict), (2) no live lock from another transaction,
        and (3) when ``read_versions`` is given, the key still holds the
        version this transaction read — the backing store keeps a single
        version, so this check substitutes for true snapshot reads and
        preserves snapshot isolation (no lost updates through stale reads).
        On failure all locks taken by this prewrite are rolled back.

        ``first_committer_wins=False`` drops check (1) — the
        read-committed point of the isolation spectrum, where only live
        locks conflict and concurrent updates silently overwrite.

        ``commit_clock=True`` runs check (1) against the per-key
        commit-timestamp table rather than the raw store version, which
        a shared replication layer stamps with its own counter.  Pure
        snapshot isolation (no read revalidation) needs this: without
        check (3) the mixed-clock comparison both misses real conflicts
        and invents spurious ones.
        """
        if primary not in keys:
            raise ValueError("primary must be one of the written keys")
        read_versions = read_versions or {}
        taken: list[str] = []
        try:
            for key in keys:
                committed_ts = self.store.version(key)
                fcw_ts = self._commit_ts.get(key, 0) if commit_clock \
                    else committed_ts
                if first_committer_wins and fcw_ts > start_ts:
                    self.conflicts += 1
                    raise PrewriteConflict(key, "newer committed version")
                seen = read_versions.get(key)
                if seen is not None and committed_ts != seen:
                    self.conflicts += 1
                    raise PrewriteConflict(key, "read version superseded")
                lock = self._locks.get(key)
                if lock is not None and lock.txn_id != txn_id:
                    self.conflicts += 1
                    raise PrewriteConflict(key, f"locked by txn {lock.txn_id}")
                self._locks[key] = _Lock(txn_id=txn_id, primary=primary,
                                         start_ts=start_ts)
                taken.append(key)
            self.prewrites += 1
        except PrewriteConflict:
            for key in taken:
                self._locks.pop(key, None)
            raise

    # -- commit / rollback ----------------------------------------------------------

    def commit(self, txn_id: int, write_set: dict[str, bytes],
               commit_ts: int) -> None:
        """Install values at ``commit_ts`` and clear this txn's locks."""
        for key, value in write_set.items():
            lock = self._locks.get(key)
            if lock is None or lock.txn_id != txn_id:
                raise RuntimeError(
                    f"commit without prewrite lock on {key!r}")
            self.store.put(key, value, commit_ts)
            self._commit_ts[key] = commit_ts
            del self._locks[key]

    def rollback(self, txn_id: int, keys: list[str]) -> None:
        for key in keys:
            lock = self._locks.get(key)
            if lock is not None and lock.txn_id == txn_id:
                del self._locks[key]

    def locked_keys(self) -> list[str]:
        return list(self._locks)
