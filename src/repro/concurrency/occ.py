"""Optimistic concurrency control, Fabric-style (execute-order-validate).

Transactions are *simulated* in parallel against the committed state,
recording a read set (key -> version) and a write set.  After ordering,
the commit phase validates serially: a transaction whose read versions are
stale aborts with a read-write conflict (Section 3.2, Figures 9-10).

The module also implements the endorsement-consistency check: when several
peers simulate the same proposal against diverging states, the client
aborts on mismatching read sets (Fig. 10b's "inconsistent read" category).
"""

from __future__ import annotations

from ..txn.state import VersionedStore
from ..txn.transaction import AbortReason, OpType, Transaction

__all__ = ["OccSimulator", "OccValidator", "endorsements_consistent"]


class OccSimulator:
    """Executes a transaction speculatively, producing its rw-set."""

    def __init__(self, store: VersionedStore):
        self.store = store

    def simulate(self, txn: Transaction) -> dict[str, int]:
        """Fill ``txn.read_set``/``write_set`` from the current state.

        Returns the read set (used for endorsement comparison).  The
        store itself is not modified.
        """
        reads: dict[str, bytes] = {}
        read_set: dict[str, int] = {}
        for op in txn.ops:
            if op.op_type in (OpType.READ, OpType.UPDATE):
                value, version = self.store.get(op.key)
                read_set[op.key] = version
                reads[op.key] = value if value is not None else b""
        write_set: dict[str, bytes] = {}
        if txn.logic is not None:
            derived = txn.logic(reads)
            if derived is None:
                txn.mark_aborted(AbortReason.LOGIC)
                return read_set
            write_set.update(derived)
        for op in txn.ops:
            if op.is_write:
                write_set.setdefault(op.key, op.value)
        txn.read_set = dict(read_set)
        txn.write_set = write_set
        return read_set


def endorsements_consistent(read_sets: list[dict[str, int]]) -> bool:
    """True iff all endorsing peers returned identical read sets.

    Peers commit blocks at different rates, so their states may diverge
    transiently; a client that collects mismatching simulation results
    must abort (paper Section 5.3.2: 14% of Fabric aborts at 10 ops/txn).
    """
    if not read_sets:
        return True
    first = read_sets[0]
    return all(rs == first for rs in read_sets[1:])


class OccValidator:
    """Serial commit-phase validation (Fabric's VSCC + MVCC check)."""

    def __init__(self, store: VersionedStore):
        self.store = store
        self.committed = 0
        self.aborted = 0

    def validate_and_commit(self, txn: Transaction, version: int) -> bool:
        """Commit ``txn`` if its read versions are still current."""
        if txn.abort_reason is AbortReason.LOGIC:
            self.aborted += 1
            return False
        for key, seen_version in txn.read_set.items():
            if self.store.version(key) != seen_version:
                txn.mark_aborted(AbortReason.READ_WRITE_CONFLICT)
                self.aborted += 1
                return False
        self.store.apply_write_set(txn.write_set, version)
        txn.commit_version = version
        txn.mark_committed()
        self.committed += 1
        return True

    def validate_block(self, txns: list[Transaction],
                       block_version: int) -> list[Transaction]:
        """Validate a whole block serially; returns committed transactions.

        All transactions in the block are stamped with the block version,
        and conflicts are evaluated against earlier transactions in the
        same block too (Fabric's serial in-block validation).
        """
        committed = []
        for txn in txns:
            if self.validate_and_commit(txn, block_version):
                committed.append(txn)
        return committed
