"""Modelled digital signatures.

Real ECDSA is out of scope for a simulator that charges deterministic CPU
costs, but correctness still matters: a signature here is an HMAC-style tag
binding (signer key, message digest), so a forged or tampered signature
*fails verification* in tests and in the simulated validation paths, and the
byte sizes match DER-encoded ECDSA (~71 B) for storage accounting.

The *time* of sign/verify is charged from :class:`repro.sim.costs.CostModel`
by the system models, matching the paper's observation that 42% of Fabric's
saturated block-validation time is signature verification.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = ["KeyPair", "Signature", "sign", "verify"]


@dataclass(frozen=True)
class KeyPair:
    """An identity with a signing key (private) and a name (public)."""

    name: str
    secret: bytes

    @classmethod
    def generate(cls, name: str) -> "KeyPair":
        """Deterministically derive a keypair for ``name``."""
        return cls(name=name, secret=hashlib.sha256(b"key:" + name.encode()).digest())


@dataclass(frozen=True)
class Signature:
    """A signature tag over a message, attributable to ``signer``."""

    signer: str
    tag: bytes

    @property
    def size(self) -> int:
        """Wire size modelled after DER-encoded ECDSA-P256 (71 bytes)."""
        return 71


def sign(key: KeyPair, message: bytes) -> Signature:
    """Produce a signature of ``message`` under ``key``."""
    tag = hmac.new(key.secret, message, hashlib.sha256).digest()
    return Signature(signer=key.name, tag=tag)


def verify(key: KeyPair, message: bytes, signature: Signature) -> bool:
    """Check ``signature`` over ``message`` against ``key``.

    Returns False for wrong signer, tampered message, or forged tag.
    """
    if signature.signer != key.name:
        return False
    expected = hmac.new(key.secret, message, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature.tag)
