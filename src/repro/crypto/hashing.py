"""Real cryptographic digests used by ledgers and authenticated structures.

Digests are computed with genuine SHA-256 so hash pointers, Merkle roots and
integrity proofs are real and verifiable; only the *time* charged for
hashing inside the simulator comes from the cost model.
"""

from __future__ import annotations

import hashlib

__all__ = ["sha256", "hash_pair", "hash_concat", "HASH_SIZE", "NULL_HASH"]

HASH_SIZE = 32
NULL_HASH = b"\x00" * HASH_SIZE


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(data).digest()


def hash_pair(left: bytes, right: bytes) -> bytes:
    """Digest of two child hashes (Merkle interior node)."""
    return hashlib.sha256(left + right).digest()


def hash_concat(*parts: bytes) -> bytes:
    """Digest of a length-prefixed concatenation (unambiguous encoding)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()
