"""Cryptographic primitives: real SHA-256 digests, modelled signatures."""

from .hashing import HASH_SIZE, NULL_HASH, hash_concat, hash_pair, sha256
from .signatures import KeyPair, Signature, sign, verify

__all__ = [
    "HASH_SIZE",
    "NULL_HASH",
    "KeyPair",
    "Signature",
    "hash_concat",
    "hash_pair",
    "sha256",
    "sign",
    "verify",
]
