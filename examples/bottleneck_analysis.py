#!/usr/bin/env python3
"""Why is each system as fast as it is? Ask the bottleneck analyzer.

Runs the YCSB update workload against three systems with very different
architectures, then prints each one's most-utilized resources — recovering
the paper's Section 5 diagnoses automatically:

* Quorum: the single EVM/commit thread on the leader (serial execution);
* Fabric: the per-peer serial validation thread;
* etcd: the leader's apply pipeline and egress NIC.

Run:  python examples/bottleneck_analysis.py
"""

from repro.analysis import analyze_system
from repro.core import build_system
from repro.sim import Environment
from repro.systems import SystemConfig
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop

SETUPS = (
    ("quorum", 200),
    ("fabric", 2000),
    ("etcd", 256),
)


def main() -> None:
    for name, clients in SETUPS:
        env = Environment()
        system = build_system(env, name, SystemConfig(num_nodes=5))
        workload = YcsbWorkload(YcsbConfig(record_count=5_000,
                                           record_size=1000))
        system.load(workload.initial_records())
        result = run_closed_loop(
            env, system, workload.next_update,
            DriverConfig(clients=clients, warmup_txns=200,
                         measure_txns=1200))
        # analyze over the active span only (loading/drain time excluded)
        report = analyze_system(system,
                                elapsed=result.elapsed
                                + result.stats.latency.max)
        print(f"\n{name}: {result.tps:,.0f} tps")
        print(report.render(top=5))


if __name__ == "__main__":
    main()
