#!/usr/bin/env python3
"""Contention study: how four concurrency designs react to skew.

Reproduces the mechanism behind the paper's Figure 9 at example scale:
as the Zipfian coefficient rises, TiDB (percolator latches + abort-fast)
collapses disproportionately to its abort rate, Fabric (optimistic
validation) aborts heavily but keeps most throughput, and etcd/Quorum
(serial execution) don't notice the skew at all.

Run:  python examples/contention_study.py
"""

from repro.bench.harness import BENCH, run_point

SYSTEMS = ("tidb", "fabric", "etcd", "quorum")
THETAS = (0.0, 0.8, 1.0)


def main() -> None:
    scale = BENCH.derive(record_count=20_000, measure_txns=1200)
    print("Single-record read-modify-write, 1 kB records, 5 nodes")
    print("-" * 76)
    header = f"{'system':>8}"
    for theta in THETAS:
        header += f"   θ={theta}: tps (abort%)"
    print(header)
    for system in SYSTEMS:
        line = f"{system:>8}"
        for theta in THETAS:
            result = run_point(system, scale=scale, theta=theta,
                               mode="rmw")
            line += f"   {result.tps:8,.0f} ({result.abort_rate:5.1%})"
        print(line, flush=True)
    print()
    print("TiDB's collapse outpaces its abort rate: conflicting")
    print("transactions hold the primary-record latch through lock")
    print("resolution, so hot keys serialize *waiting* (Section 5.3.1).")


if __name__ == "__main__":
    main()
