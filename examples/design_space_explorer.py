#!/usr/bin/env python3
"""Explore the blockchain-database design space (the fusion framework).

Sweeps the two Figure 15 axes — replication model (transaction vs
storage) and failure model (CFT consensus / CFT shared log / BFT) —
builds a *custom hybrid system* at every grid point with the taxonomy
builder, measures it under YCSB, and prints the measured grid next to
the forecast bands.  This is the constructive use of the paper's
framework: estimate a future hybrid's throughput before building it.

Run:  python examples/design_space_explorer.py

Set ``REPRO_EXAMPLES_SCALE=smoke`` for a reduced-scale sweep (used by
the CI examples smoke job).
"""

import os

from repro.core import (Category, ConcurrencyModel, FailureModelChoice,
                        IndexKind, LedgerAbstraction, ReplicationApproach,
                        ReplicationModel, ShardingSupport, SystemProfile,
                        build_system, forecast)
from repro.sim import Environment
from repro.systems import SystemConfig
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop

GRID = [
    # (label, replication model, approach, failure model, backend spec)
    ("txn+BFT", ReplicationModel.TRANSACTION, ReplicationApproach.CONSENSUS,
     FailureModelChoice.BFT, {"backend": "tendermint",
                              "commit_serial_cost": 400e-6}),
    ("txn+CFT", ReplicationModel.TRANSACTION, ReplicationApproach.CONSENSUS,
     FailureModelChoice.CFT, {"backend": "raft",
                              "commit_serial_cost": 400e-6}),
    ("txn+CFT log", ReplicationModel.TRANSACTION,
     ReplicationApproach.SHARED_LOG, FailureModelChoice.CFT,
     {"backend": "sharedlog", "commit_serial_cost": 400e-6}),
    ("store+BFT", ReplicationModel.STORAGE, ReplicationApproach.CONSENSUS,
     FailureModelChoice.BFT, {"backend": "tendermint",
                              "commit_serial_cost": 80e-6}),
    ("store+CFT", ReplicationModel.STORAGE, ReplicationApproach.CONSENSUS,
     FailureModelChoice.CFT, {"backend": "raft",
                              "commit_serial_cost": 80e-6}),
    ("store+CFT log", ReplicationModel.STORAGE,
     ReplicationApproach.SHARED_LOG, FailureModelChoice.CFT,
     {"backend": "sharedlog", "commit_serial_cost": 80e-6}),
]


def make_profile(label: str, rmodel, rapproach, fmodel) -> SystemProfile:
    concurrency = (ConcurrencyModel.SERIAL
                   if rmodel is ReplicationModel.TRANSACTION
                   else ConcurrencyModel.CONCURRENT_EXECUTION_SERIAL_COMMIT)
    return SystemProfile(
        name=label, category=Category.OUT_OF_BLOCKCHAIN_DB,
        replication_model=rmodel, replication_approach=rapproach,
        failure_model=fmodel, consensus="custom",
        concurrency=concurrency, ledger=LedgerAbstraction.APPEND_ONLY,
        index=IndexKind.LSM, sharding=ShardingSupport.NONE)


SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    print("Design-space sweep: YCSB update, 1 kB records, 4 nodes")
    print("-" * 74)
    print(f"{'design point':>14} {'forecast band':>14} {'measured tps':>14}")
    for label, rmodel, rapproach, fmodel, spec in GRID:
        profile = make_profile(label, rmodel, rapproach, fmodel)
        prediction = forecast(profile)
        env = Environment()
        system = build_system(env, profile, SystemConfig(num_nodes=4),
                              spec=spec)
        workload = YcsbWorkload(YcsbConfig(record_count=1_000 if SMOKE
                                           else 5_000,
                                           record_size=1000))
        system.load(workload.initial_records())
        result = run_closed_loop(
            env, system, workload.next_update,
            DriverConfig(clients=128 if SMOKE else 256,
                         warmup_txns=25 if SMOKE else 100,
                         measure_txns=200 if SMOKE else 1000,
                         max_sim_time=120))
        print(f"{label:>14} {prediction.band.value:>14} "
              f"{result.tps:>14,.0f}")
    print()
    print("Reading the grid: storage-based replication and CFT each buy")
    print("roughly one band of throughput; the shared log buys a little")
    print("more — exactly the structure of the paper's Figure 15.")


if __name__ == "__main__":
    main()
