#!/usr/bin/env python3
"""Quickstart: build two transactional systems and measure them.

Builds the paper's fastest database (etcd) and fastest blockchain
(Hyperledger Fabric) at the default 5-node full-replication setup, runs
the YCSB uniform update workload against both, and prints the
throughput/latency dichotomy the paper opens with.

Run:  python examples/quickstart.py

Set ``REPRO_EXAMPLES_SCALE=smoke`` to run a reduced-scale version (the
CI examples smoke job uses this to keep the builder API honest without
paying full measurement time).
"""

import os

from repro.core import build_system
from repro.sim import Environment
from repro.systems import SystemConfig
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def measure(name: str, clients: int) -> None:
    env = Environment()
    system = build_system(env, name, SystemConfig(num_nodes=5))
    workload = YcsbWorkload(YcsbConfig(record_count=2_000 if SMOKE
                                       else 10_000,
                                       record_size=1000))
    system.load(workload.initial_records())
    result = run_closed_loop(
        env, system, workload.next_update,
        DriverConfig(clients=min(clients, 400) if SMOKE else clients,
                     warmup_txns=50 if SMOKE else 200,
                     measure_txns=300 if SMOKE else 1500))
    print(f"{name:8s}  {result.tps:10,.0f} tps   "
          f"mean latency {result.mean_latency * 1000:8.1f} ms   "
          f"aborts {result.abort_rate:6.2%}")


def main() -> None:
    print("YCSB uniform update, 1 kB records, 5 nodes, full replication")
    print("-" * 72)
    measure("etcd", clients=256)
    measure("fabric", clients=2000)
    print()
    print("The database processes an order of magnitude more updates —")
    print("the taxonomy in repro.core explains exactly which design")
    print("choices that gap decomposes into (replication model, failure")
    print("model, concurrency, storage).")


if __name__ == "__main__":
    main()
