#!/usr/bin/env python3
"""Quickstart: build two transactional systems and measure them.

Builds the paper's fastest database (etcd) and fastest blockchain
(Hyperledger Fabric) at the default 5-node full-replication setup, runs
the YCSB uniform update workload against both, and prints the
throughput/latency dichotomy the paper opens with.

Run:  python examples/quickstart.py
"""

from repro.core import build_system
from repro.sim import Environment
from repro.systems import SystemConfig
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop


def measure(name: str, clients: int) -> None:
    env = Environment()
    system = build_system(env, name, SystemConfig(num_nodes=5))
    workload = YcsbWorkload(YcsbConfig(record_count=10_000,
                                       record_size=1000))
    system.load(workload.initial_records())
    result = run_closed_loop(
        env, system, workload.next_update,
        DriverConfig(clients=clients, warmup_txns=200, measure_txns=1500))
    print(f"{name:8s}  {result.tps:10,.0f} tps   "
          f"mean latency {result.mean_latency * 1000:8.1f} ms   "
          f"aborts {result.abort_rate:6.2%}")


def main() -> None:
    print("YCSB uniform update, 1 kB records, 5 nodes, full replication")
    print("-" * 72)
    measure("etcd", clients=256)
    measure("fabric", clients=2000)
    print()
    print("The database processes an order of magnitude more updates —")
    print("the taxonomy in repro.core explains exactly which design")
    print("choices that gap decomposes into (replication model, failure")
    print("model, concurrency, storage).")


if __name__ == "__main__":
    main()
