#!/usr/bin/env python3
"""Security-side demo: tamper evidence on ledgers and state.

1. Runs a short Fabric workload, then audits the ledger: every hash
   pointer is recomputed; a forged transaction is then injected and the
   audit catches it.
2. Builds a Merkle Patricia Trie over the same records and produces an
   access-path integrity proof for one key — verifiable against the root
   digest alone, as a light client would (Section 3.3.2).
3. Contrasts the MPT's storage price with the Merkle Bucket Tree's.

Run:  python examples/ledger_audit.py
"""

import hashlib

from repro.adt import MerkleBucketTree, MerklePatriciaTrie, verify_proof
from repro.sim import Environment
from repro.systems import FabricSystem, SystemConfig
from repro.txn import Transaction
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop


def audit_fabric_ledger() -> None:
    env = Environment()
    system = FabricSystem(env, SystemConfig(num_nodes=3))
    workload = YcsbWorkload(YcsbConfig(record_count=1_000, record_size=128))
    system.load(workload.initial_records())
    run_closed_loop(env, system, workload.next_update,
                    DriverConfig(clients=64, warmup_txns=20,
                                 measure_txns=300, max_sim_time=60))
    ledger = system.peers[0].ledger
    print(f"Fabric run: {ledger.height} blocks, "
          f"{ledger.total_txns()} transactions, "
          f"{ledger.total_bytes() / 1024:.0f} KiB of block storage")
    print(f"  audit of untampered ledger: "
          f"{'PASS' if ledger.verify() else 'FAIL'}")
    # Forge a transaction into the middle of history.
    ledger.blocks[len(ledger.blocks) // 2].txns.append(
        Transaction.write("stolen-funds", b"1000000"))
    print(f"  audit after forging a transaction: "
          f"{'PASS' if ledger.verify() else 'FAIL (tamper detected)'}")


def mpt_proof_demo() -> None:
    trie = MerklePatriciaTrie()
    for i in range(2_000):
        key = hashlib.md5(f"user{i}".encode()).digest()
        trie.put(key, f"balance={i * 10}".encode())
    target = hashlib.md5(b"user42").digest()
    proof = trie.prove(target)
    ok = verify_proof(trie.root, target, b"balance=420", proof)
    forged = verify_proof(trie.root, target, b"balance=999999", proof)
    print(f"\nMPT over 2000 records: root {trie.root.hex()[:16]}…")
    print(f"  proof for user42 ({len(proof)} nodes): "
          f"{'verified' if ok else 'FAILED'}")
    print(f"  forged value against the same proof: "
          f"{'ACCEPTED (bug!)' if forged else 'rejected'}")


def storage_price_comparison() -> None:
    records = 5_000
    mpt = MerklePatriciaTrie()
    mbt = MerkleBucketTree(num_buckets=1000, fanout=4)
    for i in range(records):
        key = hashlib.md5(f"rec{i}".encode()).digest()
        mpt.put(key, b"x" * 100)
        mbt.put(key, b"x" * 100)
    mbt.commit()
    mpt_overhead = (mpt.store.total_bytes() - records * 100) / records
    mbt_overhead = mbt.overhead_per_record(100)
    print(f"\nTamper-evidence storage price per 100 B record (Fig. 13):")
    print(f"  Merkle Patricia Trie: {mpt_overhead:8.0f} B/record")
    print(f"  Merkle Bucket Tree:   {mbt_overhead:8.0f} B/record "
          f"(depth {mbt.depth})")


def main() -> None:
    audit_fabric_ledger()
    mpt_proof_demo()
    storage_price_comparison()


if __name__ == "__main__":
    main()
