#!/usr/bin/env python3
"""Forecast vs reality for the six hybrid blockchain-database systems.

For each hybrid the paper analyzes (BlockchainDB, Veritas, FalconDB,
BigchainDB, BRD, ChainifyDB): print the Figure 15 forecast band, the
throughput its own paper reports, and the throughput of our composed
simulation — three independent views that should agree on ordering.

Run:  python examples/hybrid_forecast.py
"""

from repro.core import (REPORTED_THROUGHPUT, TABLE2, build_system,
                        forecast, rank)
from repro.sim import Environment
from repro.systems import SystemConfig
from repro.workloads import DriverConfig, YcsbConfig, YcsbWorkload, run_closed_loop


def simulate(name: str) -> float:
    env = Environment()
    system = build_system(env, name, SystemConfig(num_nodes=4))
    workload = YcsbWorkload(YcsbConfig(record_count=5_000,
                                       record_size=1000))
    system.load(workload.initial_records())
    clients = 2048 if name == "blockchaindb" else 256
    measure = 300 if name == "blockchaindb" else 1500
    result = run_closed_loop(
        env, system, workload.next_update,
        DriverConfig(clients=clients, warmup_txns=100,
                     measure_txns=measure, max_sim_time=120))
    return result.tps


def main() -> None:
    names = list(REPORTED_THROUGHPUT)
    ranking = rank([TABLE2[n] for n in names])
    print(f"{'system':>13} {'band':>7} {'score':>6} "
          f"{'reported tps':>13} {'simulated tps':>14}")
    print("-" * 60)
    for entry in ranking:
        name = entry.system
        simulated = simulate(name)
        print(f"{name:>13} {entry.band.value:>7} {entry.score:>6.1f} "
              f"{REPORTED_THROUGHPUT[name]:>13,.0f} {simulated:>14,.0f}")
    print()
    for entry in ranking:
        print(" *", entry.explain())


if __name__ == "__main__":
    main()
