"""Figure 7: Quorum throughput with Raft (CFT) vs IBFT (BFT) as the number
of tolerated failures f grows (N = 2f+1 for Raft, 3f+1 for IBFT).

Paper: both protocols sit at a similar, roughly constant throughput
(~230-380 tps at 1 kB records) because consensus is not the bottleneck —
serial execution is; IBFT shows larger variance at high f.
"""

import statistics

from repro.bench.experiments import fig7_cft_vs_bft

from conftest import BENCH_SCALE, run_once


def test_fig7_cft_vs_bft(benchmark):
    scale = BENCH_SCALE.derive(measure_txns=600)
    result = run_once(benchmark, fig7_cft_vs_bft, scale=scale,
                      failures=(1, 2, 3), seeds=(0, 1))
    raft = result["measured"]["raft"]
    ibft = result["measured"]["ibft"]
    print("\n=== Fig 7: Quorum Raft vs IBFT ===")
    for f in raft:
        print(f"  f={f}: raft {raft[f]['mean']:7.0f} ±{raft[f]['std']:5.0f}"
              f"   ibft {ibft[f]['mean']:7.0f} ±{ibft[f]['std']:5.0f}")

    raft_means = [raft[f]["mean"] for f in raft]
    ibft_means = [ibft[f]["mean"] for f in ibft]
    # Shape claim 1: throughput roughly constant as f grows (within 2x),
    # for both protocols — the consensus is not the bottleneck.
    assert max(raft_means) < 2.0 * min(raft_means)
    assert max(ibft_means) < 2.0 * min(ibft_means)
    # Shape claim 2: CFT and BFT peak throughputs are similar (within 2x).
    overall_raft = statistics.mean(raft_means)
    overall_ibft = statistics.mean(ibft_means)
    assert 0.5 < overall_raft / overall_ibft < 2.0
    # Shape claim 3: both land in the paper's few-hundred-tps regime.
    assert 80 < overall_raft < 1500
