"""Figure 4: peak YCSB throughput — update (4a) and query (4b), log scale.

Paper values (tps): update — Fabric 1294, Quorum 245, TiDB 5159,
etcd 16781, TiKV 13507; query — Fabric 23809, Quorum 19166, TiDB 87933,
etcd 282192, TiKV 94050.
"""

from repro.bench.experiments import fig4_peak_throughput

from conftest import BENCH_SCALE, print_dict, run_once


def test_fig4_peak_throughput(benchmark):
    result = run_once(benchmark, fig4_peak_throughput, scale=BENCH_SCALE)
    update = result["measured"]["update"]
    query = result["measured"]["query"]
    print_dict("Fig 4a update tps", update, result["paper"]["update"])
    print_dict("Fig 4b query tps", query, result["paper"]["query"])

    # Shape claim 1: update ordering etcd > TiKV > TiDB > Fabric > Quorum.
    assert update["etcd"] > update["tikv"] > update["tidb"] \
        > update["fabric"] > update["quorum"]
    # Shape claim 2: the blockchain-database gap exists but is ~4x between
    # TiDB and Fabric (not the 120x of BLOCKBENCH) — allow 2x-10x.
    ratio = update["tidb"] / update["fabric"]
    assert 2.0 < ratio < 10.0
    # Shape claim 3: key-value stores beat the SQL layer on updates.
    assert update["etcd"] > 2 * update["tidb"]
    # Shape claim 4: queries are far faster than updates everywhere, and
    # etcd leads the query chart.
    for system in update:
        assert query[system] > 5 * update[system]
    assert query["etcd"] == max(query.values())
