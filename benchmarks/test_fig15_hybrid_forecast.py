"""Figure 15: the hybrid-system throughput forecast framework.

The framework predicts throughput bands from the replication model and
failure model.  Validation is threefold: (1) the predicted ordering
matches the throughputs the hybrid systems' own papers report (e.g.
Veritas 29k over ChainifyDB 6.1k); (2) simulating the six hybrids with
our composed models lands each inside its predicted band; (3) the
measured ordering matches the forecast ordering.
"""

from repro.bench.experiments import fig15_hybrid_forecast
from repro.core import BAND_RANGES, ThroughputBand

from conftest import BENCH_SCALE, run_once


def test_fig15_hybrid_forecast(benchmark):
    result = run_once(benchmark, fig15_hybrid_forecast,
                      scale=BENCH_SCALE, simulate=True)
    forecasts = result["forecast"]
    reported = result["reported"]
    simulated = result["simulated"]
    print("\n=== Fig 15: hybrid forecast vs reported vs simulated ===")
    for name in result["ranking"]:
        f = forecasts[name]
        print(f"  {name:13s} band={f['band']:6s} score={f['score']:4.1f}"
              f"  reported ~{reported[name]:>8,.0f}"
              f"  simulated {simulated[name]:>9,.0f}")

    # Claim 1: prediction ordering vs reported ordering (strict where the
    # scores differ).
    ranking = result["ranking"]
    for i in range(len(ranking) - 1):
        hi, lo = ranking[i], ranking[i + 1]
        if forecasts[hi]["score"] > forecasts[lo]["score"]:
            assert reported[hi] >= reported[lo], (hi, lo)
    # Claim 2: each simulated hybrid lands inside its predicted band.
    for name, f in forecasts.items():
        lo, hi = f["range"]
        assert lo <= simulated[name] <= hi, \
            f"{name}: {simulated[name]} outside {f['band']} band"
    # Claim 3: simulated ordering follows the score ordering.
    for i in range(len(ranking) - 1):
        hi, lo = ranking[i], ranking[i + 1]
        if forecasts[hi]["score"] > forecasts[lo]["score"]:
            assert simulated[hi] > simulated[lo], (hi, lo)
    # Claim 4: the headline Section 5.6 comparison — the storage-based
    # CFT shared-log hybrid beats the transaction-based one (29k vs 6.1k).
    assert simulated["veritas"] > 2 * simulated["chainifydb"]
    # Claim 5: bands are anchored to our measured Fig. 4 world.
    assert BAND_RANGES[ThroughputBand.HIGH][0] == 10_000.0
