"""Figure 5: YCSB latency when the systems are unsaturated.

Paper: update latency Fabric ~3500 ms (paper also shows ~1.4-2 s as the
sum of Fig. 8a phases), Quorum ~500 ms, databases < 100 ms; query latency
Fabric ~9 ms, Quorum ~4 ms, databases ~1 ms.
"""

from repro.bench.experiments import fig5_latency

from conftest import BENCH_SCALE, print_dict, run_once


def test_fig5_latency(benchmark):
    result = run_once(benchmark, fig5_latency, scale=BENCH_SCALE)
    update = result["measured_ms"]["update"]
    query = result["measured_ms"]["query"]
    print_dict("Fig 5a update latency (ms)", update,
               result["paper_ms"]["update"])
    print_dict("Fig 5b query latency (ms)", query,
               result["paper_ms"]["query"])

    # Clear separation between blockchains and databases on updates:
    for blockchain in ("fabric", "quorum"):
        for database in ("tidb", "etcd", "tikv"):
            assert update[blockchain] > 3 * update[database]
    # Fabric's update latency is dominated by block cutting (hundreds of
    # ms at least); databases stay well under 100 ms.
    assert update["fabric"] > 500
    assert update["etcd"] < 100 and update["tidb"] < 100
    # Queries: blockchains still slower (weaker read guarantees
    # notwithstanding), Fabric ~ up to 6x Quorum's ~4 ms, databases ~1 ms.
    assert query["fabric"] > query["quorum"] > query["etcd"]
    assert 2.0 < query["fabric"] < 20.0
    assert query["etcd"] < 2.0
