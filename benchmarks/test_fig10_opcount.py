"""Figure 10: throughput and abort rate as operations per transaction grow
(total transaction payload fixed at 1000 bytes).

Paper: Fabric, TiDB and etcd throughput drops with more ops (TiDB at 10
ops reaches only 32% of its 1-op throughput); abort rates climb to 87%
(Fabric) and 26.9% (TiDB); Fabric aborts split ~14% inconsistent reads /
~86% read-write conflicts; Quorum is unaffected (serial, no cross-shard).
"""

from repro.bench.experiments import fig10_opcount

from conftest import CONFLICT_SCALE, run_once


def test_fig10_opcount(benchmark):
    op_counts = (1, 4, 10)
    result = run_once(benchmark, fig10_opcount, scale=CONFLICT_SCALE,
                      op_counts=op_counts)
    measured = result["measured"]
    print("\n=== Fig 10: ops/txn sweep (tps / abort%) ===")
    for system in measured:
        line = f"  {system:8s}"
        for ops in op_counts:
            tps = measured[system]["tps"][ops]
            ab = measured[system]["abort_rate"][ops]
            line += f"   ops={ops}: {tps:7.0f} ({ab:5.1%})"
        print(line)
    print("  fabric abort reasons at 10 ops:",
          measured["fabric"]["abort_reasons"][10])

    tidb = measured["tidb"]
    fabric = measured["fabric"]
    # Shape claim 1: TiDB throughput at 10 ops is a small fraction of its
    # 1-op throughput (paper: 32%).
    assert tidb["tps"][10] < 0.6 * tidb["tps"][1]
    # Shape claim 2: Fabric's abort rate grows steeply with op count.
    assert fabric["abort_rate"][10] > fabric["abort_rate"][1] + 0.2
    assert fabric["abort_rate"][10] > 0.4
    # Shape claim 3: Fabric aborts include both categories, and
    # read-write conflicts dominate (paper: 86% vs 14%).
    reasons = measured["fabric"]["abort_reasons"][10]
    rw = reasons.get("read-write conflict", 0)
    inconsistent = reasons.get("inconsistent read", 0)
    assert rw > 0
    assert rw > inconsistent
    # Shape claim 4: TiDB also aborts more with more ops (ww conflicts).
    assert tidb["abort_rate"][10] > tidb["abort_rate"][1]
