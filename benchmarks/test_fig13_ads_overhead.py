"""Figure 13: storage overhead to achieve tamper evidence — Merkle Bucket
Tree (Fabric v0.6) vs Merkle Patricia Trie (Quorum/Ethereum), real
structures, real SHA-256, 10K records with 16-byte keys.

Paper: MBT adds ~24 B per 10 B record (fixed scale: 1000 buckets,
fan-out 4, depth 5) while MPT adds over 1 kB per record (deep trie +
content-addressed node versions).
"""

from repro.bench.experiments import fig13_ads_overhead

from conftest import print_dict, run_once


def test_fig13_ads_overhead(benchmark):
    result = run_once(benchmark, fig13_ads_overhead,
                      record_sizes=(10, 100, 1000), records=5_000)
    measured = result["measured"]
    print_dict("Fig 13 MBT overhead bytes/record", measured["mbt"],
               result["paper"]["mbt"])
    print_dict("Fig 13 MPT overhead bytes/record", measured["mpt"],
               result["paper"]["mpt"])

    for size in (10, 100, 1000):
        mbt = measured["mbt"][size]
        mpt = measured["mpt"][size]
        # Shape claim 1: MBT overhead stays tens of bytes.
        assert mbt < 150
        # Shape claim 2: MPT overhead is > 1 kB per record.
        assert mpt > 800
        # Shape claim 3: the gap is at least an order of magnitude.
        assert mpt > 10 * mbt
    # Shape claim 4: MBT depth is the paper's ceil(log4 1000) = 5.
    assert result["measured"]["mbt_depth"] == 5
    # Shape claim 5: MBT overhead is near-constant across record sizes.
    mbt_values = list(measured["mbt"].values())
    assert max(mbt_values) - min(mbt_values) < 60
