"""Table 4: throughput vs number of nodes under full replication.

Paper (tps):            3      7     11     15     19
    Fabric           1560   1288   1031    749    528
    Quorum            237    236    229    217    219
    TiDB             5697   7884   7544   6239   5526
    etcd            19282  16453  11243   7801   6076
"""

from repro.bench.experiments import tab4_scaling

from conftest import BENCH_SCALE, run_once


def test_tab4_scaling(benchmark):
    node_counts = (3, 7, 11, 19)
    result = run_once(benchmark, tab4_scaling, scale=BENCH_SCALE,
                      node_counts=node_counts)
    measured = result["measured"]
    paper = result["paper"]
    print("\n=== Table 4: tps vs nodes ===")
    header = "  system   " + "".join(f"{n:>9}" for n in node_counts)
    print(header)
    for system in measured:
        row = f"  {system:8s} " + "".join(
            f"{measured[system][n]:>9.0f}" for n in node_counts)
        row += "   (paper: " + "/".join(
            str(paper[system][n]) for n in node_counts) + ")"
        print(row)

    # Shape claim 1: Fabric declines steadily (~3x from 3 to 19 nodes),
    # because validation verifies one endorsement per peer.
    fab = measured["fabric"]
    assert fab[3] > fab[7] > fab[11] > fab[19]
    assert 2.0 < fab[3] / fab[19] < 6.0
    # Shape claim 2: Quorum is flat (serial execution dominates).
    quorum_vals = list(measured["quorum"].values())
    assert max(quorum_vals) < 1.5 * min(quorum_vals)
    # Shape claim 3: etcd declines ~3x (leader egress grows with N).
    etcd = measured["etcd"]
    assert etcd[3] > etcd[7] > etcd[11] > etcd[19]
    assert 2.0 < etcd[3] / etcd[19] < 6.0
    # Shape claim 4: TiDB peaks at an intermediate size (not at 3, per
    # the storage/SQL interplay) and never collapses.
    tidb = measured["tidb"]
    assert max(tidb.values()) >= tidb[3]
    assert min(tidb.values()) > 0.4 * max(tidb.values())
