"""Figure 6: Smallbank throughput under skew (Zipf theta = 1).

Paper: Fabric 835, Quorum 655, TiDB 1031 tps — the astonishing result
that the blockchain-database gap nearly closes under a constrained,
skewed OLTP workload.  Quorum improves ~2.5x over its 1 kB-record YCSB
number because Smallbank records are small.
"""

from repro.bench.experiments import fig6_smallbank

from conftest import BENCH_SCALE, print_dict, run_once


def test_fig6_smallbank(benchmark):
    result = run_once(benchmark, fig6_smallbank, scale=BENCH_SCALE,
                      num_accounts=100_000)
    measured = result["measured"]
    print_dict("Fig 6 Smallbank tps (theta=1)", measured, result["paper"])

    # Shape claim 1: the gap between TiDB and the blockchains is small
    # (same order of magnitude; paper ratio TiDB/Quorum ~ 1.6).
    assert measured["tidb"] < 8 * measured["quorum"]
    assert measured["tidb"] < 8 * measured["fabric"]
    # Shape claim 2: Quorum's Smallbank throughput beats its own 1 kB YCSB
    # number (~245 tps) thanks to small records.
    assert measured["quorum"] > 400
    # Shape claim 3: everything sits in the hundreds-to-low-thousands
    # band the paper reports.
    for system, tps in measured.items():
        assert 100 < tps < 10_000, (system, tps)
