"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one design choice the
taxonomy identifies and measures its standalone performance effect, using
the same harness as the figure reproductions.
"""

from repro.bench.harness import run_point
from repro.sim.costs import DEFAULT_COSTS
from repro.systems import SystemConfig

from conftest import BENCH_SCALE


def test_ablation_consensus_batching(benchmark):
    """Raft entry batching is the dominant lever on etcd-style peak
    throughput: tiny batches collapse throughput by saturating the
    leader egress with per-message overheads."""

    def sweep():
        from repro.sim.kernel import Environment
        from repro.systems import EtcdSystem
        from repro.workloads import (DriverConfig, YcsbConfig, YcsbWorkload,
                                     run_closed_loop)
        out = {}
        for max_batch in (1, 8, 64):
            env = Environment()
            costs = DEFAULT_COSTS.derive(raft_max_batch=max_batch)
            system = EtcdSystem(env, SystemConfig(num_nodes=5, costs=costs))
            wl = YcsbWorkload(YcsbConfig(record_count=5_000,
                                         record_size=1000))
            system.load(wl.initial_records())
            res = run_closed_loop(
                env, system, wl.next_update,
                DriverConfig(clients=256, warmup_txns=100,
                             measure_txns=1200, max_sim_time=120))
            out[max_batch] = res.tps
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== ablation: raft max_batch -> etcd tps ===")
    for batch, tps in result.items():
        print(f"  batch={batch:3d}: {tps:10,.0f} tps")
    assert result[64] > 2 * result[1]
    assert result[8] > result[1]


def test_ablation_fabric_serial_vs_concurrent_validation(benchmark):
    """The paper notes serial validation is Fabric's implementation
    choice.  Flipping it to concurrent validation lifts the throughput
    ceiling — quantifying the price of deterministic serial commit."""

    def sweep():
        out = {}
        for serial in (True, False):
            res = run_point("fabric", scale=BENCH_SCALE, num_nodes=5,
                            clients=5000,
                            system_kwargs={"serial_validation": serial})
            out["serial" if serial else "concurrent"] = res.tps
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== ablation: Fabric validation mode ===")
    for mode, tps in result.items():
        print(f"  {mode:10s}: {tps:10,.0f} tps")
    assert result["concurrent"] > 1.3 * result["serial"]


def test_ablation_endorsement_policy(benchmark):
    """Table 4's Fabric decline is driven by the endorse-at-all-peers
    policy: with a fixed small policy the decline disappears."""

    def sweep():
        out = {}
        for peers, policy in ((11, 11), (11, 3)):
            res = run_point(
                "fabric", scale=BENCH_SCALE.derive(measure_txns=800),
                num_nodes=peers,
                system_kwargs={"endorsement_policy": policy})
            out[f"{policy}-of-{peers}"] = res.tps
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== ablation: endorsement policy at 11 peers ===")
    for policy, tps in result.items():
        print(f"  {policy:10s}: {tps:10,.0f} tps")
    assert result["3-of-11"] > 1.5 * result["11-of-11"]


def test_ablation_authenticated_index_cost(benchmark):
    """Isolate the Fig. 11/13 mechanism: the same order-execute pipeline
    with MPT costs vs without (plain state) at large records."""

    def sweep():
        from repro.sim.kernel import Environment
        from repro.systems import QuorumSystem
        from repro.workloads import (DriverConfig, YcsbConfig, YcsbWorkload,
                                     run_closed_loop)
        out = {}
        for label, mpt_base, mpt_per_byte in (
                ("mpt", None, None),          # calibrated default
                ("no-ads", 0.0, 0.0)):        # authenticated index removed
            env = Environment()
            costs = DEFAULT_COSTS if mpt_base is None else \
                DEFAULT_COSTS.derive(mpt_update_base=mpt_base,
                                     mpt_update_per_byte=mpt_per_byte)
            system = QuorumSystem(env, SystemConfig(num_nodes=5,
                                                    costs=costs))
            wl = YcsbWorkload(YcsbConfig(record_count=5_000,
                                         record_size=5000))
            system.load(wl.initial_records())
            res = run_closed_loop(
                env, system, wl.next_update,
                DriverConfig(clients=400, warmup_txns=50,
                             measure_txns=500, max_sim_time=150))
            out[label] = res.tps
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== ablation: Quorum with/without MPT at 5000 B records ===")
    for label, tps in result.items():
        print(f"  {label:8s}: {tps:10,.0f} tps")
    assert result["no-ads"] > 1.2 * result["mpt"]


def test_ablation_concurrency_control_under_skew(benchmark):
    """Generalize Fig. 9/14: OCC-style abort-fast (TiDB) vs pessimistic
    lock-waiting (Spanner) on the same skewed workload."""

    def sweep():
        out = {}
        res = run_point("tidb", scale=BENCH_SCALE.derive(measure_txns=800),
                        num_nodes=3, theta=1.0, ops_per_txn=2, mode="rmw",
                        system_kwargs={"tidb_servers": 3, "tikv_nodes": 3,
                                       "instant_abort": True})
        out["abort-fast (tidb)"] = res.tps
        res = run_point("spanner", scale=BENCH_SCALE.derive(measure_txns=800),
                        num_nodes=3, theta=1.0, ops_per_txn=2, mode="rmw")
        out["lock-wait (spanner)"] = res.tps
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== ablation: concurrency control under skew (theta=1) ===")
    for label, tps in result.items():
        print(f"  {label:20s}: {tps:10,.0f} tps")
    assert result["abort-fast (tidb)"] > 0.6 * result["lock-wait (spanner)"]
