"""Figure 14: throughput of sharded systems under a skewed workload
(Zipf theta=1, two records per transaction, shards of 3 nodes).

Paper (log scale): TiDB > Spanner >> AHL; AHL with periodic shard
reconfiguration trades ~30% throughput vs fixed membership; the gap
between the sharded blockchain and the databases is 1-2 orders of
magnitude (PBFT + shard-formation security costs).
"""

from repro.bench.experiments import fig14_sharding

from conftest import BENCH_SCALE, run_once


def test_fig14_sharding(benchmark):
    node_counts = (3, 12, 24)
    result = run_once(benchmark, fig14_sharding,
                      scale=BENCH_SCALE.derive(measure_txns=800),
                      node_counts=node_counts)
    measured = result["measured"]
    print("\n=== Fig 14: sharded throughput (tps) ===")
    for system in measured:
        line = f"  {system:13s}"
        for n in node_counts:
            line += f"   {n}n: {measured[system][n]:8.0f}"
        print(line)

    for n in node_counts:
        tidb = measured["tidb"][n]
        spanner = measured["spanner"][n]
        ahl_fixed = measured["ahl_fixed"][n]
        # Shape claim 1: TiDB >= Spanner (abort-fast beats lock-waiting
        # under contention).
        assert tidb > 0.8 * spanner, n
        # Shape claim 2: the databases beat the sharded blockchain
        # (the paper's log-scale gap).  Our Spanner model is hot-key bound
        # at this key-space size, so its margin thins as shards grow and
        # is sensitive to which shard the scrambled hot keys land on —
        # TiDB carries the order-of-magnitude claim at every size.
        assert spanner > (1.5 if n <= 12 else 1.05) * ahl_fixed, n
        assert tidb > 5 * ahl_fixed, n
    # Shape claim 3: reconfiguration costs AHL throughput (paper ~30%).
    big = node_counts[-1]
    assert measured["ahl_reconfig"][big] < 0.95 * measured["ahl_fixed"][big]
    assert measured["ahl_reconfig"][big] > 0.4 * measured["ahl_fixed"][big]
    # Shape claim 4: adding shards scales AHL throughput.
    assert measured["ahl_fixed"][24] > 2 * measured["ahl_fixed"][3]
