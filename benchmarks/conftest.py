"""Shared helpers for the figure/table benchmark suite.

Each benchmark file regenerates one paper artifact via
:mod:`repro.bench.experiments`, prints the measured-vs-paper comparison,
and asserts the *shape* claims (orderings, trends, crossovers) the paper
makes.  Absolute numbers are calibration-dependent and are not asserted
except as loose ratios.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BENCH, SMOKE, Scale

# The default fidelity for the bench suite: large enough for stable
# rankings, small enough that the whole suite finishes in minutes.
BENCH_SCALE = Scale("bench-suite", record_count=10_000, warmup_txns=200,
                    measure_txns=1200, max_sim_time=150.0)

# Conflict experiments need a bigger key space so conflict probabilities
# are not inflated relative to the paper's 100K records.
CONFLICT_SCALE = BENCH_SCALE.derive(record_count=50_000)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def print_dict(title: str, measured: dict, paper: dict | None = None) -> None:
    print(f"\n=== {title} ===")
    keys = list(measured)
    for key in keys:
        line = f"  {key!s:>10}: measured {measured[key]:>12,.1f}"
        if paper and key in paper:
            line += f"   paper {paper[key]:>12,.1f}"
        print(line)
