"""Figure 8: latency breakdown.

8a — Fabric update phases (execute / order / validate), unsaturated vs
saturated: unsaturated order and validate ~700 ms each, execute below
500 ms; when saturated, validation becomes the bottleneck and total
latency explodes (blocks pile up before the serial validator).

8b — query breakdown: Fabric spends most of its ~4.8 ms in client
authentication (4294 us) vs TiDB's parse 16 us / compile 15 us /
storage-get 275 us.
"""

from repro.bench.experiments import fig8_latency_breakdown

from conftest import BENCH_SCALE, print_dict, run_once


def test_fig8_latency_breakdown(benchmark):
    result = run_once(benchmark, fig8_latency_breakdown, scale=BENCH_SCALE)
    unsat = result["fabric_unsaturated_ms"]
    sat = result["fabric_saturated_ms"]
    print_dict("Fig 8a Fabric unsaturated (ms)", unsat,
               result["paper"]["fabric_unsaturated_ms"])
    print_dict("Fig 8a Fabric saturated (ms)", sat)
    print_dict("Fig 8b Fabric query (us)", result["fabric_query_us"],
               result["paper"]["fabric_query_us"])
    print_dict("Fig 8b TiDB query (us)", result["tidb_query_us"],
               result["paper"]["tidb_query_us"])

    # 8a shape: order phase is the block-cut timeout (~700 ms) when
    # unsaturated; saturation inflates the validate phase most.
    assert 300 < unsat["order"] < 1200
    assert sat["validate"] > 3 * unsat["validate"]
    assert sat["validate"] > sat["execute"]
    # 8b shape: authentication dominates the Fabric query; the TiDB query
    # is dominated by storage-get and is ~10x cheaper overall.
    fq = result["fabric_query_us"]
    tq = result["tidb_query_us"]
    assert fq["authentication"] > 5 * (fq["simulation"] + fq["endorsement"])
    assert tq["storage-get"] > tq["sql-parse"] + tq["sql-compile"]
    assert sum(fq.values()) > 5 * sum(tq.values())
