"""Figure 11: performance under the uniform update workload as the record
size grows (10 B to 5000 B), plus the Quorum/Fabric phase breakdown.

Paper: Quorum collapses from 1547 tps (10 B) to 58 tps (5000 B) — EVM
execution and MPT reconstruction are paid twice per transaction; Fabric
stays roughly flat to 1000 B and halves at 5000 B; databases degrade only
moderately.  Quorum's proposal-phase delay grows at the same rate as its
commit-phase delay (double execution).
"""

from repro.bench.experiments import fig11_record_size

from conftest import BENCH_SCALE, run_once


def test_fig11_record_size(benchmark):
    sizes = (10, 1000, 5000)
    result = run_once(benchmark, fig11_record_size, scale=BENCH_SCALE,
                      record_sizes=sizes)
    measured = result["measured"]
    print("\n=== Fig 11a: tps vs record size ===")
    for system in measured:
        line = f"  {system:8s}"
        for size in sizes:
            line += f"   {size}B: {measured[system]['tps'][size]:8.0f}"
        print(line)
    print("  paper quorum: 1547 / 245 / 58;  paper fabric: ~1400 / 1294 / ~700")

    quorum = measured["quorum"]["tps"]
    fabric = measured["fabric"]["tps"]
    etcd = measured["etcd"]["tps"]
    # Shape claim 1: Quorum collapses by >10x from 10 B to 5000 B
    # (paper: 26x).
    assert quorum[10] / quorum[5000] > 10
    # Shape claim 2: Fabric is much less sensitive: < 4x over the sweep.
    assert fabric[10] / fabric[5000] < 4
    # Shape claim 3: crossover — Fabric loses to Quorum at tiny records
    # or is comparable, but wins clearly at 1000+ B (paper: 1294 vs 245).
    assert fabric[1000] > 2 * quorum[1000]
    assert fabric[5000] > 5 * quorum[5000]
    # Shape claim 4: databases degrade moderately (< 6x).
    assert etcd[10] / etcd[5000] < 6
    # Shape claim 5 (Fig 11b): Quorum proposal delay grows with record
    # size at a rate comparable to its commit delay (double execution).
    phases_small = measured["quorum"]["phases_ms"][10]
    phases_large = measured["quorum"]["phases_ms"][5000]
    proposal_growth = phases_large["proposal"] / max(phases_small["proposal"], 1e-9)
    commit_growth = phases_large["commit"] / max(phases_small["commit"], 1e-9)
    assert proposal_growth > 3
    assert commit_growth > 3
