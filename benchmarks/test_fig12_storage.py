"""Figure 12: storage bytes per record — Fabric state + block vs TiDB.

Paper: for a 5000 B record Fabric's block storage consumes 21725 B per
record (the envelope carries the value multiple times plus certificates
and signatures) while its state storage is ~the record itself; TiDB
stores just the record plus negligible metadata (no history).
"""

from repro.bench.experiments import fig12_storage

from conftest import print_dict, run_once


def test_fig12_storage(benchmark):
    result = run_once(benchmark, fig12_storage)
    measured = result["measured"]
    paper = result["paper"]
    print_dict("Fig 12 Fabric block bytes/record", measured["fabric_block"],
               paper["fabric_block"])
    print_dict("Fig 12 TiDB bytes/record", measured["tidb"], paper["tidb"])

    for size in (10, 100, 1000, 5000):
        block = measured["fabric_block"][size]
        tidb = measured["tidb"][size]
        # Shape claim 1: ledger amplification — block storage is several
        # times the raw record, with a ~6-7 kB floor at small records.
        assert block > 3 * size
        assert block > 4000
        # Shape claim 2: TiDB storage is close to the record itself.
        assert tidb < size + 200
        # Shape claim 3: blockchains pay much more than databases.
        assert block > 4 * tidb
    # Shape claim 4: the block overhead grows ~3 bytes per record byte
    # (value embedded in proposal, rw-set, and response).
    slope = (measured["fabric_block"][5000] - measured["fabric_block"][10]) \
        / (5000 - 10)
    assert 2.0 < slope < 4.0
    # Magnitude check against the paper's end points (within 2x).
    assert 0.5 < measured["fabric_block"][5000] / paper["fabric_block"][5000] < 2.0
    assert 0.5 < measured["fabric_block"][10] / paper["fabric_block"][10] < 2.0
