"""Figure 9: throughput and abort rate under Zipfian skew (single-record
read-modify-write transactions).

Paper: TiDB collapses from 5461 to 173 tps as theta goes 0 -> 1 while
only ~30% of its transactions abort (the latch-contention effect);
Fabric loses ~31% throughput with ~44% aborts at theta=1; etcd and
Quorum are unaffected (serial execution, no concurrency control).
"""

from repro.bench.experiments import fig9_skew

from conftest import CONFLICT_SCALE, run_once


def test_fig9_skew(benchmark):
    thetas = (0.0, 0.6, 1.0)
    result = run_once(benchmark, fig9_skew, scale=CONFLICT_SCALE,
                      thetas=thetas)
    measured = result["measured"]
    print("\n=== Fig 9: skew sweep (tps / abort%) ===")
    for system in measured:
        line = f"  {system:8s}"
        for theta in thetas:
            tps = measured[system]["tps"][theta]
            ab = measured[system]["abort_rate"][theta]
            line += f"   θ={theta}: {tps:7.0f} ({ab:5.1%})"
        print(line)

    tidb = measured["tidb"]
    fabric = measured["fabric"]
    # Shape claim 1: TiDB's collapse is drastic and disproportionate to
    # its abort rate (paper: -97% tps at 30% aborts; we accept >= 4x drop
    # with abort rate well below the throughput loss).
    drop = tidb["tps"][0.0] / max(tidb["tps"][1.0], 1.0)
    assert drop > 4.0
    assert tidb["abort_rate"][1.0] < 0.6
    assert (1 - tidb["tps"][1.0] / tidb["tps"][0.0]) \
        > 2 * tidb["abort_rate"][1.0]
    # Shape claim 2: Fabric's abort rate rises steeply with skew
    # (optimistic validation) while its throughput drop stays moderate.
    assert fabric["abort_rate"][1.0] > 0.25
    assert fabric["abort_rate"][1.0] > fabric["abort_rate"][0.0] + 0.15
    assert fabric["tps"][1.0] > 0.3 * fabric["tps"][0.0]
    # Shape claim 3: serial-execution systems are insensitive to skew.
    for system in ("etcd", "quorum"):
        tps = measured[system]["tps"]
        assert min(tps.values()) > 0.8 * max(tps.values()), system
        assert all(rate < 0.02
                   for rate in measured[system]["abort_rate"].values())
