"""Smoke-scale perf-regression gate (run explicitly: pytest benchmarks/perf).

Budgets are deliberately loose (~10x the measured dev-box numbers) so the
gate catches order-of-magnitude regressions — a reintroduced polling loop,
an accidentally quadratic commit — without flaking on slow CI runners.
"""

from __future__ import annotations

from repro.bench.harness import SMOKE
from repro.bench.perf import (bench_driver, bench_kernel, bench_mpt,
                              bench_zipf)


def test_kernel_events_per_sec_budget():
    result = bench_kernel(events=50_000)
    assert result["events_per_s"] > 50_000, result


def test_mpt_batched_faster_and_equivalent():
    result = bench_mpt(writes=5_000, block=100)
    # root equality is asserted inside bench_mpt; here: batching must
    # actually reduce hash work on prefix-shared keys.
    assert result["batched"]["hashes"] < result["per_write"]["hashes"] / 2
    assert result["batched"]["wall_s"] < result["per_write"]["wall_s"]


def test_zipf_draw_rate_budget():
    result = bench_zipf(draws=50_000, n=10_000, theta=0.99)
    assert result["draws_per_s"] > 20_000, result


def test_driver_smoke_wall_budget():
    result = bench_driver(scale=SMOKE, seed=7)
    # The seed code spent >1s of wall on a smoke point; post-overhaul a
    # dev box does it in <0.1s.  Allow 10x headroom for CI.
    assert result["wall_s"] < 1.5, result


# The full smoke suite (run_perf) is exercised — with its own wall budget —
# by the ``--perf --scale smoke --budget 120`` CI step and by the tier-1
# CLI test; re-running it here would double the job's runtime.


def test_fabric_smoke_wall_budget():
    from repro.bench.perf import bench_fabric
    result = bench_fabric(scale=SMOKE, seed=7)
    # Measured ~0.7s on a dev box (endorsement fan-out dominated); 10x
    # headroom for CI — catches a reintroduced polling loop or a
    # quadratic validation pipeline.
    assert result["wall_s"] < 7.0, result


def test_scale_10k_clients_smoke_wall_budget():
    from repro.bench.perf import bench_scale
    result = bench_scale(scale=SMOKE, seed=7)
    # 10k multiplexed clients on the smoke fabric point: ~0.5s on a dev
    # box, 10x headroom for CI.  Guards the cohort multiplexer — a
    # reintroduced process-per-client driver blows this budget (the
    # BENCH-scale <5 s wall target is tracked in the trajectory files).
    assert result["clients"] == 10_000
    assert result["wall_s"] < 5.0, result


def test_db_smoke_wall_budget():
    from repro.bench.perf import bench_db
    etcd, tidb = bench_db(scale=SMOKE, seed=7)
    # DB-side chain paths: ~0.1s (etcd) / ~0.2s (tidb) on a dev box with
    # the flat per-transaction chains; 10x headroom for CI.  Guards the
    # chain objects — a reintroduced Process-per-transaction (or per 2PC
    # participant) update path blows these budgets.
    assert etcd["wall_s"] < 1.5, etcd
    assert tidb["wall_s"] < 2.5, tidb


def test_chaos_smoke_wall_budget_and_determinism():
    from repro.bench.perf import bench_chaos
    first = bench_chaos(seed=11)
    # One seeded fault-schedule run (partition + gray node + crash-restart
    # with WAL replay under the continuous invariant checker): ~1s on a
    # dev box; generous headroom for CI.  Guards the injector timers and
    # the invariant checker — a polling checker or an unpaced chaos
    # closed loop blows this budget.
    assert first["wall_s"] < 8.0, first
    assert first["checks"] > 0
    # The digest is a seeded fingerprint over the injection log, the
    # measured floats, and the invariant verdicts: a same-seed rerun must
    # be byte-identical or fault semantics drifted.
    second = bench_chaos(seed=11)
    assert first["digest"] == second["digest"], (first, second)


def test_storage_ablation_smoke_budget_and_direction():
    from repro.bench.perf import bench_storage
    mpt, lsm = bench_storage(scale=SMOKE, seed=7)
    # Wall budget: both quorum points run in ~0.2s each on a dev box;
    # 10x headroom for CI.  Guards the engine layer — a per-write (vs
    # per-block) trie commit or an accidentally quadratic engine mirror
    # blows this budget.
    assert mpt["wall_s"] + lsm["wall_s"] < 4.0, (mpt, lsm)
    # Direction (Fig. 12): the authenticated MPT point must be slower in
    # *simulated* terms than plain LSM, and the gap must come from real
    # measured hash work, not calibration constants.
    assert mpt["sim_tps"] < lsm["sim_tps"], (mpt, lsm)
    assert mpt["hashes_charged"] > 0
    assert lsm["hashes_charged"] == 0


def test_isolation_ab_smoke_budget_and_direction():
    from repro.bench.perf import bench_isolation
    result = bench_isolation(scale=SMOKE, seed=7)
    # Two quorum SmallBank points (~0.2s each on a dev box); 10x headroom
    # for CI.  Guards the isolation schedulers — a per-transaction (vs
    # per-block) scheduler pass or a quadratic MVSG build blows this.
    assert result["wall_s"] < 4.0, result
    # Direction: dropping first-committer-wins must buy throughput on the
    # hot-account workload, and the anomaly detector must certify the
    # trade is real — lost updates under read-committed, a clean
    # serializable history.
    rc = result["levels"]["read_committed"]
    ser = result["levels"]["serializable"]
    assert rc["sim_tps"] > ser["sim_tps"], result
    assert rc["anomalies"]["lost_update"] > 0, result
    assert ser["serializable_history"] is True, result
    assert all(v == 0 for v in ser["anomalies"].values()), result


def test_shards_smoke_budget_and_determinism():
    import os

    from repro.bench.perf import bench_shards
    first = bench_shards(scale=SMOKE, seed=11, shards=64)
    # One interleaved serial/parallel A/B pair at 64 shards: ~0.5s on a
    # dev box; generous headroom for CI (spawned worker pool included).
    # Guards the barrier protocol — a reintroduced per-window process
    # spawn or a per-message pickle path blows this budget.
    assert first["wall_s"] < 20.0, first
    # Equivalence is the hard gate: bench_shards itself raises on a
    # fingerprint mismatch, and the report must say so.
    assert first["byte_identical"] is True
    assert 0.0 <= first["barrier_wait_fraction"] <= 1.0
    assert first["kernel"]["barriers"] > 0
    # Speedup over the single heap is only a claim on real parallel
    # hardware; a 1-2 core CI runner legitimately loses to the heap.
    if (os.cpu_count() or 1) >= 8:
        assert first["speedup"] > 1.0, first
    second = bench_shards(scale=SMOKE, seed=11, shards=64)
    assert first["digest"] == second["digest"], (first, second)


def test_openloop_smoke_budget_and_determinism():
    from repro.bench.perf import bench_openloop
    first = bench_openloop(scale=SMOKE, seed=11)
    # A 1M-user Poisson stream at the etcd path's nominal capacity:
    # ~1.5s on a dev box (wall tracks the arrival count, not the user
    # population); generous headroom for CI.  Guards the timing-wheel
    # slot pool — a reintroduced per-request Process blows this budget.
    assert first["users"] == 1_000_000
    assert first["wall_s"] < 15.0, first
    assert first["committed"] > 0
    assert "wall_hit" not in first, first
    # CO-safe percentiles are measured from intended arrival and must be
    # ordered; the digest is the seeded byte-identity fingerprint.
    assert first["p50"] <= first["p99"] <= first["p999"]
    second = bench_openloop(scale=SMOKE, seed=11)
    assert first["digest"] == second["digest"], (first, second)
