"""Table 5: TiDB throughput varying TiDB servers x TiKV nodes independently.

Paper: with 3 TiDB servers, adding TiKV nodes first helps (5697 -> 9116
at 11 nodes) then slightly hurts (8690 at 19: consensus overhead
outweighs hot-spot alleviation); with TiKV fixed, adding TiDB servers
beyond the storage capacity lowers throughput (5697 -> 4198 down the
first column).
"""

from repro.bench.experiments import tab5_tidb_matrix

from conftest import BENCH_SCALE, run_once


def test_tab5_tidb_matrix(benchmark):
    tidb_counts = (3, 11, 19)
    tikv_counts = (3, 11, 19)
    result = run_once(benchmark, tab5_tidb_matrix,
                      scale=BENCH_SCALE.derive(measure_txns=1500),
                      tidb_counts=tidb_counts, tikv_counts=tikv_counts)
    measured = result["measured"]
    print("\n=== Table 5: TiDB servers x TiKV nodes (tps) ===")
    print("  tidb\\tikv " + "".join(f"{n:>9}" for n in tikv_counts))
    for tidb_n in tidb_counts:
        print(f"  {tidb_n:9d} " + "".join(
            f"{measured[tidb_n][n]:>9.0f}" for n in tikv_counts))
    print("  paper row tidb=3: 5697 / 9116 / 8690")

    # Shape claim 1: along the TiKV axis at 3 TiDB servers, more storage
    # nodes help at first (percolator work spreads over more leaders).
    row3 = measured[3]
    assert row3[11] > row3[3]
    # Shape claim 2: the surface is bounded — no configuration collapses
    # or explodes (paper range is 4198..9116, ~2.2x).
    values = [v for row in measured.values() for v in row.values()]
    assert max(values) < 4 * min(values)
    # Shape claim 3: the diagonal matches Table 4's TiDB row shape
    # (peak not at the smallest cluster).
    diag = {n: measured[n][n] for n in tidb_counts}
    assert max(diag.values()) >= diag[3]
