"""Tests for the taxonomy, forecast framework, and system builder."""

import pytest

from repro.core import (Category, ConcurrencyModel, FailureModelChoice,
                        IndexKind, LedgerAbstraction, REPORTED_THROUGHPUT,
                        ReplicationApproach, ReplicationModel, SystemProfile,
                        TABLE2, ThroughputBand, build_system, forecast,
                        in_band, ordering_consistent, profile, rank)
from repro.core.taxonomy import ShardingSupport
from repro.sim import Environment
from repro.systems import (EtcdSystem, FabricSystem, HybridSystem,
                           QuorumSystem, SystemConfig, TiDBSystem)


# -- taxonomy ----------------------------------------------------------------

def test_table2_contains_all_twenty_systems():
    assert len(TABLE2) == 20


def test_profile_lookup_case_insensitive():
    assert profile("Fabric").name == "fabric"
    with pytest.raises(KeyError):
        profile("nonexistent-system")


def test_benchmarked_systems_flagged():
    benchmarked = {name for name, p in TABLE2.items() if p.benchmarked}
    assert benchmarked == {"quorum", "fabric", "tidb", "etcd"}


def test_blockchains_use_txn_replication_databases_storage():
    """Table 1's headline dichotomy holds across Table 2."""
    for p in TABLE2.values():
        if p.category in (Category.PERMISSIONLESS_BLOCKCHAIN,
                          Category.PERMISSIONED_BLOCKCHAIN,
                          Category.OUT_OF_DB_BLOCKCHAIN):
            assert p.replication_model is ReplicationModel.TRANSACTION, p.name
        if p.category in (Category.NEWSQL, Category.NOSQL,
                          Category.OUT_OF_BLOCKCHAIN_DB):
            assert p.replication_model is ReplicationModel.STORAGE, p.name


def test_blockchains_have_ledgers_databases_dont():
    for p in TABLE2.values():
        if p.category in (Category.NEWSQL, Category.NOSQL):
            assert p.ledger is LedgerAbstraction.NONE, p.name
        if "blockchain" in p.category.value or \
                p.category is Category.OUT_OF_BLOCKCHAIN_DB:
            assert p.ledger is LedgerAbstraction.APPEND_ONLY, p.name


def test_databases_are_cft():
    for name in ("tidb", "etcd", "spanner", "cassandra", "cockroachdb",
                 "dynamodb", "h-store"):
        assert TABLE2[name].failure_model is FailureModelChoice.CFT, name


def test_security_vs_performance_choice_classification():
    quorum = profile("quorum")
    assert "transaction-based replication" in quorum.security_oriented_choices()
    assert "authenticated index" in quorum.security_oriented_choices()
    etcd = profile("etcd")
    perf = etcd.performance_oriented_choices()
    assert "storage-based replication" in perf
    assert "crash fault tolerance" in perf


def test_fabric_profile_matches_table2_row():
    fabric = profile("fabric")
    assert fabric.replication_approach is ReplicationApproach.SHARED_LOG
    assert fabric.concurrency is \
        ConcurrencyModel.CONCURRENT_EXECUTION_SERIAL_COMMIT
    assert fabric.index is IndexKind.LSM  # v1+ dropped the MBT
    assert profile("fabric-v0.6").index is IndexKind.LSM_MBT


def test_eth2_is_the_only_sharded_blockchain_row():
    sharded = {name for name, p in TABLE2.items()
               if p.sharding is ShardingSupport.TWO_PC_BFT}
    assert "eth2" in sharded


# -- forecast -------------------------------------------------------------------

def test_forecast_bands_for_known_hybrids():
    assert forecast(profile("veritas")).band is ThroughputBand.HIGH
    assert forecast(profile("chainifydb")).band is ThroughputBand.MEDIUM
    assert forecast(profile("bigchaindb")).band is ThroughputBand.LOW
    assert forecast(profile("blockchaindb")).band is ThroughputBand.LOW


def test_forecast_ordering_matches_reported():
    assert ordering_consistent()


def test_rank_highest_first():
    names = list(REPORTED_THROUGHPUT)
    ranked = rank([TABLE2[n] for n in names])
    assert ranked[0].system == "veritas"
    scores = [f.score for f in ranked]
    assert scores == sorted(scores, reverse=True)


def test_forecast_explains_factors():
    text = forecast(profile("veritas")).explain()
    assert "storage-based replication" in text
    assert "HIGH" in text


def test_pow_penalty_puts_blockchaindb_low():
    f = forecast(profile("blockchaindb"))
    assert f.score <= 0
    assert any("PoW" in factor for factor in f.factors)


def test_in_band_check():
    assert in_band("veritas", 25_000)
    assert not in_band("veritas", 100)


def test_forecast_of_benchmarked_systems_matches_fig4_order():
    """etcd (HIGH) > tidb (MEDIUM+) > quorum (LOW-ish band)."""
    etcd_f = forecast(profile("etcd"))
    quorum_f = forecast(profile("quorum"))
    assert etcd_f.score > quorum_f.score


# -- builder ---------------------------------------------------------------------

def test_builder_dedicated_models():
    env = Environment()
    assert isinstance(build_system(env, "etcd"), EtcdSystem)
    env = Environment()
    assert isinstance(build_system(env, "fabric"), FabricSystem)
    env = Environment()
    assert isinstance(build_system(env, "quorum"), QuorumSystem)
    env = Environment()
    assert isinstance(build_system(env, "tidb"), TiDBSystem)


def test_builder_hybrids_from_table2():
    env = Environment()
    system = build_system(env, "veritas", SystemConfig(num_nodes=4))
    assert isinstance(system, HybridSystem)
    assert system.profile.name == "veritas"


def test_builder_kwargs_forwarded():
    env = Environment()
    system = build_system(env, "quorum", SystemConfig(num_nodes=4),
                          consensus="ibft")
    assert system.consensus == "ibft"


def test_builder_custom_profile():
    custom = SystemProfile(
        name="my-hybrid",
        category=Category.OUT_OF_BLOCKCHAIN_DB,
        replication_model=ReplicationModel.STORAGE,
        replication_approach=ReplicationApproach.CONSENSUS,
        failure_model=FailureModelChoice.CFT,
        consensus="Raft",
        concurrency=ConcurrencyModel.CONCURRENT,
        ledger=LedgerAbstraction.APPEND_ONLY,
        index=IndexKind.LSM_MBT,
        sharding=ShardingSupport.NONE,
    )
    env = Environment()
    system = build_system(env, custom, SystemConfig(num_nodes=3))
    assert isinstance(system, HybridSystem)
    assert system.name == "my-hybrid"
    # and the forecast framework accepts it too
    assert forecast(custom).band in ThroughputBand
