"""Tests for the Sec. 6 batched-validation ablation: simulated MPT
crypto cost driven by the real trie's ``hashes_computed`` deltas."""

from __future__ import annotations

import pytest

from repro.bench.harness import SMOKE, run_point
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.kernel import Environment
from repro.systems.quorum import QuorumSystem


def test_batched_validation_requires_real_state():
    with pytest.raises(ValueError):
        QuorumSystem(Environment(), batched_validation=True)


def test_mpt_commit_time_scales_with_hash_count():
    one = DEFAULT_COSTS.mpt_commit_time(1)
    assert one == DEFAULT_COSTS.hash_time(DEFAULT_COSTS.mpt_node_hash_bytes)
    assert DEFAULT_COSTS.mpt_commit_time(100) == pytest.approx(100 * one)
    assert DEFAULT_COSTS.mpt_commit_time(0) == 0.0


def test_ablation_charges_measured_hashes_and_commits():
    result = run_point(
        "quorum", scale=SMOKE, seed=3,
        system_kwargs={"real_state": True, "batched_validation": True})
    system = result.extras["system"]
    assert result.measured == SMOKE.measure_txns
    assert result.stats.aborted == 0
    # the charged hash count is the real trie's delta, and it is far
    # below one full path-rebuild per write (shared prefixes hash once)
    assert system.mpt_hashes_charged > 0
    assert system.state_trie.hashes_computed >= system.mpt_hashes_charged
    assert system.ledger.verify()
    # every sealed block carries a real state root
    assert all(b.header.state_root != b"\x00" * 32
               for b in system.ledger.blocks)
    # followers validate under the same batched crypto model: the leader
    # published one measured delta per block to every follower, and the
    # followers kept pace (no unbounded delta backlog)
    assert len(system._delta_streams) == len(system.servers) - 1
    for stream in system._delta_streams.values():
        assert len(stream) <= system.blocks_minted


def test_ablation_vs_per_record_fit_is_cheaper_per_block():
    """Batched validation must charge less simulated crypto time than the
    per-record Fig. 11b fit for the same workload (the ablation's point:
    shared-prefix batches hash each touched node once)."""
    fitted = run_point("quorum", scale=SMOKE, seed=3,
                       system_kwargs={"real_state": True})
    batched = run_point("quorum", scale=SMOKE, seed=3,
                        system_kwargs={"real_state": True,
                                       "batched_validation": True})
    f_sys = fitted.extras["system"]
    b_sys = batched.extras["system"]
    # identical work ordered through consensus
    assert f_sys.ledger.height > 0
    assert b_sys.ledger.height > 0
    costs = b_sys.costs
    committed = sum(len(b.txns) for b in b_sys.ledger.blocks)
    # simulated MPT crypto actually charged per committed txn
    charged = costs.mpt_commit_time(b_sys.mpt_hashes_charged) / committed
    # what the per-record fit would have charged for the same records
    per_record = costs.mpt_update_time(1000)
    assert charged < per_record
    assert batched.tps >= fitted.tps
