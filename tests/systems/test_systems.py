"""Functional tests for the system models at small scale.

These check *correctness* (commits land in state, aborts carry reasons,
ledgers verify) rather than calibration; the shape/calibration checks
live in the benchmark suite.
"""

import pytest

from repro.sim import Environment
from repro.systems import (AhlSystem, EtcdSystem, FabricSystem,
                           QuorumSystem, SpannerSystem, SystemConfig,
                           TiDBSystem, TikvSystem, build_hybrid)
from repro.txn import Transaction, TxnStatus
from repro.workloads import (DriverConfig, YcsbConfig, YcsbWorkload,
                             run_closed_loop)

SMALL = SystemConfig(num_nodes=3)
TINY_DRIVER = DriverConfig(clients=16, warmup_txns=10, measure_txns=120,
                           max_sim_time=90.0)


def run_small(system_cls, mode="update", config=SMALL, **kwargs):
    env = Environment()
    system = system_cls(env, config, **kwargs)
    wl = YcsbWorkload(YcsbConfig(record_count=500, record_size=128))
    system.load(wl.initial_records())
    maker = {"update": wl.next_update, "query": wl.next_query,
             "rmw": wl.next_rmw}[mode]
    cfg = DriverConfig(**{**TINY_DRIVER.__dict__,
                          "query_mode": mode == "query"})
    result = run_closed_loop(env, system, maker, cfg)
    return system, result


# -- etcd ------------------------------------------------------------------------

def test_etcd_commits_updates():
    system, result = run_small(EtcdSystem)
    assert result.measured == 120
    assert result.abort_rate == 0.0
    assert result.tps > 0


def test_etcd_state_reflects_writes():
    env = Environment()
    system = EtcdSystem(env, SMALL)
    txn = Transaction.write("user1", b"hello")
    done = system.submit(txn)
    env.run(until=5)
    assert done.triggered and txn.status is TxnStatus.COMMITTED
    value, _version = system.state.get("user1")
    assert value == b"hello"
    assert system.btree.get(b"user1") == b"hello"


def test_etcd_serves_queries():
    _system, result = run_small(EtcdSystem, mode="query")
    assert result.measured == 120
    assert result.mean_latency < 0.01  # sub-10ms reads (Fig. 5b)


# -- TiKV -------------------------------------------------------------------------

def test_tikv_commits_and_replicates():
    system, result = run_small(TikvSystem)
    assert result.abort_rate == 0.0
    assert result.tps > 0
    # every group made progress proportional to its key share
    commits = sum(g.replicas[system.cluster.nodes[i].name].commit_index
                  for i, g in enumerate(system.cluster.groups))
    assert commits >= 120


def test_tikv_read_returns_latest():
    env = Environment()
    system = TikvSystem(env, SMALL)

    def scenario(env):
        yield system.cluster.kv_write("k", b"v1")
        yield system.cluster.kv_write("k", b"v2")
        value, _ver = yield system.cluster.kv_read("k")
        return value

    proc = env.process(scenario(env))
    env.run(until=5)
    assert proc.value == b"v2"


# -- TiDB --------------------------------------------------------------------------

def test_tidb_commits_rmw():
    system, result = run_small(TiDBSystem, mode="rmw")
    assert result.measured == 120
    assert result.tps > 0


def test_tidb_snapshot_isolation_aborts_on_conflict():
    env = Environment()
    system = TiDBSystem(env, SMALL, retry_limit=0)
    system.load({"hot": b"0"})
    txns = [Transaction.update("hot", f"{i}".encode()) for i in range(30)]
    events = [system.submit(t) for t in txns]
    env.run(until=30)
    statuses = {t.status for t in txns}
    assert all(ev.triggered for ev in events)
    committed = [t for t in txns if t.status is TxnStatus.COMMITTED]
    aborted = [t for t in txns if t.status is TxnStatus.ABORTED]
    assert committed, "some transactions must win"
    assert aborted, "concurrent writers to one key must conflict"
    # committed versions are strictly increasing in the store
    assert system.cluster.state.version("hot") > 0


def test_tidb_logic_abort_not_retried():
    env = Environment()
    system = TiDBSystem(env, SMALL)
    system.load({"acct": (5).to_bytes(8, "big")})

    def overdraw(reads):
        return None  # constraint violation

    txn = Transaction(ops=[Transaction.update("acct", b"").ops[0]],
                      logic=overdraw)
    system.submit(txn)
    env.run(until=10)
    assert txn.status is TxnStatus.ABORTED
    assert system.retries == 0


def test_tidb_server_and_tikv_counts_configurable():
    env = Environment()
    system = TiDBSystem(env, SystemConfig(num_nodes=3),
                        tidb_servers=2, tikv_nodes=4)
    assert len(system.servers) == 2
    assert len(system.cluster.nodes) == 4


# -- Fabric ------------------------------------------------------------------------

def test_fabric_commits_and_ledger_verifies():
    system, result = run_small(FabricSystem)
    assert result.measured == 120
    for peer in system.peers:
        assert peer.ledger.verify()
        assert peer.ledger.total_txns() >= 120
    # all peers reach the same height eventually
    heights = {p.ledger.height for p in system.peers}
    assert len(heights) == 1


def test_fabric_records_phase_latencies():
    _system, result = run_small(FabricSystem)
    phases = result.phase_means()
    assert {"execute", "order", "validate"} <= set(phases)
    assert phases["order"] > 0


def test_fabric_endorsement_policy_subset():
    env = Environment()
    system = FabricSystem(env, SMALL, endorsement_policy=2)
    wl = YcsbWorkload(YcsbConfig(record_count=200, record_size=64))
    system.load(wl.initial_records())
    result = run_closed_loop(env, system, wl.next_update, TINY_DRIVER)
    assert result.measured == 120


def test_fabric_rmw_conflicts_abort_with_reason():
    env = Environment()
    system = FabricSystem(env, SMALL)
    system.load({"hot": b"0"})
    txns = [Transaction.update("hot", f"{i}".encode()) for i in range(20)]
    for t in txns:
        system.submit(t)
    env.run(until=30)
    committed = [t for t in txns if t.status is TxnStatus.COMMITTED]
    aborted = [t for t in txns if t.status is TxnStatus.ABORTED]
    assert len(committed) >= 1
    assert len(aborted) >= 1
    assert all(t.abort_reason is not None for t in aborted)


def test_fabric_query_phases_match_fig8b():
    _system, result = run_small(FabricSystem, mode="query")
    phases = result.phase_means()
    assert phases["authentication"] == pytest.approx(4294e-6, rel=0.05)
    assert phases["simulation"] == pytest.approx(406e-6, rel=0.05)
    assert phases["endorsement"] == pytest.approx(59e-6, rel=0.1)


def test_fabric_block_bytes_accounting():
    system, _result = run_small(FabricSystem)
    per_txn = system.block_bytes_per_txn()
    assert per_txn > 2000  # envelopes dominate the 128 B records


# -- Quorum ------------------------------------------------------------------------

def test_quorum_commits_serially():
    system, result = run_small(QuorumSystem)
    assert result.measured == 120
    assert system.blocks_minted > 0
    assert system.ledger.verify()


def test_quorum_phases_recorded():
    _system, result = run_small(QuorumSystem)
    phases = result.phase_means()
    assert {"proposal", "consensus", "commit"} <= set(phases)


def test_quorum_ibft_mode():
    env = Environment()
    system = QuorumSystem(env, SystemConfig(num_nodes=4), consensus="ibft")
    wl = YcsbWorkload(YcsbConfig(record_count=200, record_size=64))
    system.load(wl.initial_records())
    result = run_closed_loop(env, system, wl.next_update, TINY_DRIVER)
    assert result.measured == 120


def test_quorum_rejects_unknown_consensus():
    env = Environment()
    with pytest.raises(ValueError):
        QuorumSystem(env, SMALL, consensus="pow")


def test_quorum_smallbank_logic_aborts_counted():
    from repro.workloads import SmallbankConfig, SmallbankWorkload
    env = Environment()
    system = QuorumSystem(env, SMALL)
    wl = SmallbankWorkload(SmallbankConfig(num_accounts=20, theta=0.0,
                                           seed=3))
    system.load(wl.initial_records())
    result = run_closed_loop(env, system, wl.next_transaction, TINY_DRIVER)
    assert result.measured == 120
    # with only 20 accounts, some send_payments overdraw eventually
    assert result.stats.committed > 0


# -- Spanner & AHL (Fig. 14 models) ---------------------------------------------------

def test_spanner_commits_and_uses_locks():
    system, result = run_small(SpannerSystem, mode="rmw")
    assert result.measured == 120
    assert result.tps > 0


def test_spanner_requires_multiple_of_three():
    env = Environment()
    with pytest.raises(ValueError):
        SpannerSystem(env, SystemConfig(num_nodes=4))


def test_spanner_cross_shard_txn_commits():
    env = Environment()
    system = SpannerSystem(env, SystemConfig(num_nodes=6))
    system.load({f"k{i}": b"0" for i in range(50)})
    # find two keys on different shards
    keys = [f"k{i}" for i in range(50)]
    a = keys[0]
    b = next(k for k in keys if system._shard_of(k) != system._shard_of(a))
    from repro.txn import Op, OpType
    txn = Transaction(ops=[Op(OpType.UPDATE, a, b"1"),
                           Op(OpType.UPDATE, b, b"2")])
    system.submit(txn)
    env.run(until=10)
    assert txn.status is TxnStatus.COMMITTED
    assert system.state.get(a)[0] == b"1"


def test_ahl_reconfiguration_costs_throughput():
    # Short epochs so several reconfiguration pauses land inside the
    # measurement window.
    from repro.sim.costs import DEFAULT_COSTS
    costs = DEFAULT_COSTS.derive(ahl_reconfig_period=1.0,
                                 ahl_reconfig_pause=0.3)
    config = SystemConfig(num_nodes=6, costs=costs)
    driver = DriverConfig(clients=64, warmup_txns=20, measure_txns=600,
                          max_sim_time=120)
    env = Environment()
    fixed = AhlSystem(env, config, periodic_reconfig=False)
    wl = YcsbWorkload(YcsbConfig(record_count=300, record_size=64, seed=9))
    fixed.load(wl.initial_records())
    r_fixed = run_closed_loop(env, fixed, wl.next_update, driver)
    env2 = Environment()
    reconfig = AhlSystem(env2, config, periodic_reconfig=True)
    wl2 = YcsbWorkload(YcsbConfig(record_count=300, record_size=64, seed=9))
    reconfig.load(wl2.initial_records())
    r_reconfig = run_closed_loop(env2, reconfig, wl2.next_update, driver)
    assert r_reconfig.tps < 0.9 * r_fixed.tps  # ~30% loss in the paper
    assert r_reconfig.tps > 0.4 * r_fixed.tps


def test_ahl_cross_shard_uses_bft_2pc():
    env = Environment()
    system = AhlSystem(env, SystemConfig(num_nodes=6),
                       periodic_reconfig=False)
    system.load({f"k{i}": b"0" for i in range(50)})
    keys = [f"k{i}" for i in range(50)]
    a = keys[0]
    b = next(k for k in keys
             if system.partitioner.shard_of(k)
             != system.partitioner.shard_of(a))
    from repro.txn import Op, OpType
    txn = Transaction(ops=[Op(OpType.WRITE, a, b"1"),
                           Op(OpType.WRITE, b, b"2")])
    system.submit(txn)
    env.run(until=30)
    assert txn.status is TxnStatus.COMMITTED
    assert system.cross_shard_txns == 1
    assert system.coordinator.consensus_rounds >= 2


# -- hybrids -----------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["veritas", "chainifydb", "brd",
                                  "bigchaindb", "falcondb"])
def test_hybrid_commits_updates(name):
    env = Environment()
    system = build_hybrid(env, name, SystemConfig(num_nodes=4))
    wl = YcsbWorkload(YcsbConfig(record_count=300, record_size=64))
    system.load(wl.initial_records())
    result = run_closed_loop(env, system, wl.next_update,
                             DriverConfig(clients=32, warmup_txns=10,
                                          measure_txns=100,
                                          max_sim_time=120))
    assert result.measured == 100
    assert result.tps > 0


def test_blockchaindb_pow_is_slow_but_commits():
    env = Environment()
    system = build_hybrid(env, "blockchaindb", SystemConfig(num_nodes=4),
                          spec={"block_interval": 0.5})
    system.load({"k": b"0"})
    txn = Transaction.write("k", b"1")
    system.submit(txn)
    env.run(until=60)
    assert txn.status is TxnStatus.COMMITTED


def test_hybrid_occ_mode_aborts_on_conflict():
    env = Environment()
    system = build_hybrid(env, "veritas", SystemConfig(num_nodes=4))
    system.load({"hot": b"0"})
    txns = [Transaction.update("hot", f"{i}".encode()) for i in range(20)]
    for t in txns:
        system.submit(t)
    env.run(until=30)
    aborted = [t for t in txns if t.status is TxnStatus.ABORTED]
    committed = [t for t in txns if t.status is TxnStatus.COMMITTED]
    assert committed and aborted  # OCC serial-commit kills stale reads
